"""Linear-time hash indexes for constant-time tuple lookup (Section 2.3).

The paper's cost model assumes a structure "built in linear time to
support tuple lookups in constant time"; in practice this is hashing.
:class:`HashIndex` maps the projection of a tuple onto an attribute
subset to the list of matching tuple positions.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.data.relation import Relation


class HashIndex:
    """Hash index of a relation on a subset of its columns.

    ``index[key]`` returns the (possibly empty) list of tuple positions
    whose projection onto ``columns`` equals ``key``.  Keys are tuples,
    even for single columns, so composite equi-joins are uniform.
    """

    __slots__ = ("relation", "columns", "_buckets")

    def __init__(self, relation: Relation, columns: Sequence[int]):
        self.relation = relation
        self.columns = tuple(columns)
        buckets: dict[tuple, list[int]] = {}
        cols = self.columns
        for position, values in enumerate(relation.tuples):
            key = tuple(values[c] for c in cols)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [position]
            else:
                bucket.append(position)
        self._buckets = buckets

    def lookup(self, key: tuple) -> list[int]:
        """Positions of tuples matching ``key`` (empty list if none)."""
        return self._buckets.get(key, [])

    def __getitem__(self, key: tuple) -> list[int]:
        return self.lookup(key)

    def __contains__(self, key: tuple) -> bool:
        return key in self._buckets

    def keys(self) -> Iterable[tuple]:
        """All distinct join keys present in the relation."""
        return self._buckets.keys()

    def items(self) -> Iterable[tuple[tuple, list[int]]]:
        """``(key, positions)`` pairs — e.g. for degree statistics."""
        return self._buckets.items()

    def __len__(self) -> int:
        return len(self._buckets)

    def max_bucket(self) -> int:
        """Size of the largest bucket (degree statistics for heavy/light)."""
        return max(map(len, self._buckets.values()), default=0)


class IndexCache:
    """Memoised :class:`HashIndex` builds, keyed by relation content.

    The cache key is ``(relation name, columns)``; each entry is stamped
    with ``(id(relation), len(relation), relation.version)`` at build
    time and is rebuilt transparently when the stamp no longer matches:
    ``version``/``len`` catch :meth:`Relation.add`, and the object
    identity catches replacing a relation with a fresh same-name,
    same-cardinality one.  (The cached :class:`HashIndex` holds a
    reference to the stamped relation, so its ``id`` cannot be recycled
    while the entry lives.)  One instance lives on each
    :class:`~repro.engine.engine.Engine`, letting repeated preparations
    share the linear-time index builds of Section 2.3.
    """

    __slots__ = ("_indexes", "_degrees", "hits", "misses", "pushdowns")

    def __init__(self):
        self._indexes: dict[tuple, tuple[tuple, HashIndex]] = {}
        #: Memoised backend degree statistics, stamped like _indexes.
        self._degrees: dict[tuple, tuple[tuple, dict[tuple, int]]] = {}
        self.hits = 0
        self.misses = 0
        #: Degree-statistics requests answered server-side by a backend.
        self.pushdowns = 0

    def get(self, relation: Relation, columns: Sequence[int]) -> HashIndex:
        """The index of ``relation`` on ``columns`` (built at most once)."""
        columns = tuple(columns)
        key = (relation.name, columns)
        stamp = (id(relation), len(relation), relation.version)
        entry = self._indexes.get(key)
        if entry is not None and entry[0] == stamp:
            self.hits += 1
            return entry[1]
        index = HashIndex(relation, columns)
        self._indexes[key] = (stamp, index)
        self.misses += 1
        return index

    def degrees(self, relation: Relation, columns: Sequence[int]) -> dict[tuple, int]:
        """Occurrence count per distinct key of ``relation`` on ``columns``.

        This is the degree information behind the heavy/light threshold
        of the cycle decomposition (Section 5.2).  For a backend-stored,
        not-yet-materialised relation the counts are computed *server
        side* (SQL ``GROUP BY`` for SQLite) so asking for statistics
        does not force the relation into memory; otherwise they are
        derived from the (cached) hash index.
        """
        columns = tuple(columns)
        backend = relation.backend
        if backend is not None and not relation.is_materialized:
            key = (relation.name, columns)
            stamp = (id(relation), relation.version)
            entry = self._degrees.get(key)
            if entry is not None and entry[0] == stamp:
                self.hits += 1
                return entry[1]
            self.pushdowns += 1
            counts = backend.degree_statistics(relation.table, columns)
            self._degrees[key] = (stamp, counts)
            return counts
        index = self.get(relation, columns)
        return {key: len(positions) for key, positions in index.items()}

    def clear(self) -> None:
        self._indexes.clear()
        self._degrees.clear()

    def __len__(self) -> int:
        return len(self._indexes)
