"""Linear-time hash indexes for constant-time tuple lookup (Section 2.3).

The paper's cost model assumes a structure "built in linear time to
support tuple lookups in constant time"; in practice this is hashing.
:class:`HashIndex` maps the projection of a tuple onto an attribute
subset to the list of matching tuple positions.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.data.relation import Relation


class HashIndex:
    """Hash index of a relation on a subset of its columns.

    ``index[key]`` returns the (possibly empty) list of tuple positions
    whose projection onto ``columns`` equals ``key``.  Keys are tuples,
    even for single columns, so composite equi-joins are uniform.
    """

    __slots__ = ("relation", "columns", "_buckets")

    def __init__(self, relation: Relation, columns: Sequence[int]):
        self.relation = relation
        self.columns = tuple(columns)
        buckets: dict[tuple, list[int]] = {}
        cols = self.columns
        for position, values in enumerate(relation.tuples):
            key = tuple(values[c] for c in cols)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [position]
            else:
                bucket.append(position)
        self._buckets = buckets

    def lookup(self, key: tuple) -> list[int]:
        """Positions of tuples matching ``key`` (empty list if none)."""
        return self._buckets.get(key, [])

    def __getitem__(self, key: tuple) -> list[int]:
        return self.lookup(key)

    def __contains__(self, key: tuple) -> bool:
        return key in self._buckets

    def keys(self) -> Iterable[tuple]:
        """All distinct join keys present in the relation."""
        return self._buckets.keys()

    def __len__(self) -> int:
        return len(self._buckets)

    def max_bucket(self) -> int:
        """Size of the largest bucket (degree statistics for heavy/light)."""
        return max(map(len, self._buckets.values()), default=0)
