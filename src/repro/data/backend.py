"""Pluggable storage backends: where relation tuples physically live.

The any-k algorithms only need sequential access to ``(tuple, weight)``
rows plus cheap cardinality/degree statistics (Section 2.3's linear-time
preprocessing assumes nothing more); they are agnostic to *where* the
rows are stored.  This module makes that boundary explicit:

* :class:`StorageBackend` is the protocol every backend implements —
  create/drop/append/extend for writes, lazy (optionally weight-sorted)
  row iteration for reads, and server-side degree statistics for the
  heavy/light partitioning of the cycle decomposition.
* :class:`MemoryBackend` is the original in-memory implementation
  (Python lists inside :class:`~repro.data.relation.Relation`) extracted
  behind the protocol.
* :class:`SQLiteBackend` persists relations to a ``.db`` file via the
  stdlib ``sqlite3`` module, using the paper's Appendix-B schema
  (columns ``a1..a_arity`` plus a weight column ``w``).  Relations
  loaded from it materialise lazily, so a prepared query can bind
  against a persistent dataset without an up-front full scan, and a
  second process gets a *cross-process warm start*: it reopens the
  ``.db`` file and skips CSV ingestion entirely.

Backends store scalar values (int / float / str / bytes / None).
Richer weight domains (e.g. the lexicographic tuple weights) stay
in-memory only.

Every mutation through a backend bumps a per-relation *version
counter* that is persisted (SQLite) or delegated to the stored relation
(memory).  :class:`~repro.data.relation.Relation` objects constructed
from a backend consult that counter, so the engine's prepared-query
invalidation (and the :class:`~repro.data.index.IndexCache` stamps)
stay sound even when several ``Relation`` views — including
``rename``-aliased copies — share one table.  Mutations through a
*different* backend instance (another process) are picked up on the
next open; within one process, route writes through one backend.
"""

from __future__ import annotations

import itertools
import re
import sqlite3
import threading
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.util import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.data.database import Database
    from repro.data.relation import Relation

#: Lazily built shared retrier for transient SQLite errors.  Imported
#: on first use because ``repro.serve`` (where the Retrier lives) pulls
#: in the engine, which pulls in this module — a cycle at import time
#: but not at call time.
_SQLITE_RETRIER = None


def _sqlite_retrier():
    global _SQLITE_RETRIER
    if _SQLITE_RETRIER is None:
        from repro.serve import resilience

        _SQLITE_RETRIER = resilience.Retrier(
            attempts=4,
            base_delay=0.005,
            max_delay=0.1,
            retryable=resilience.transient_sqlite,
            label="sqlite",
        )
    return _SQLITE_RETRIER

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
#: Table names a backend may never hand to user data.
_RESERVED_PREFIXES = ("sqlite_", "repro_")


def validate_identifier(name: str) -> str:
    """Return ``name`` if it is a safe SQL identifier, else raise.

    Relation names end up inside ``CREATE TABLE`` / ``INSERT`` /
    ``CREATE INDEX`` statements, where placeholders cannot be used;
    restricting them to ``[A-Za-z_][A-Za-z0-9_]*`` (minus reserved
    prefixes) closes the injection hole instead of trusting callers.
    """
    if not isinstance(name, str) or not _IDENTIFIER.match(name):
        raise ValueError(
            f"unsafe relation name {name!r}: must match "
            "[A-Za-z_][A-Za-z0-9_]*"
        )
    lowered = name.lower()
    if lowered.startswith(_RESERVED_PREFIXES):
        raise ValueError(
            f"relation name {name!r} uses a reserved prefix "
            f"{_RESERVED_PREFIXES}"
        )
    return name


def quote_identifier(name: str) -> str:
    """Validate ``name`` and wrap it in SQL double quotes."""
    return f'"{validate_identifier(name)}"'


@runtime_checkable
class StorageBackend(Protocol):
    """What a storage backend must provide to host relations.

    The contract mirrors what the paper's preprocessing phase consumes:
    one sequential pass over each relation (:meth:`iter_rows`), optional
    weight-sorted access (:meth:`sorted_rows`, rank-join style), and
    degree statistics (:meth:`degree_statistics`) for the heavy/light
    threshold of the cycle decomposition — plus enough bookkeeping
    (arity, cardinality, a monotone per-relation version counter) for
    the engine's cache invalidation to observe every mutation.

    Row *position* is identity: the ``i``-th row yielded by
    :meth:`iter_rows` is tuple id ``i`` (witnesses reference it), so
    backends must iterate in stable insertion order and never reorder
    or delete rows in place.
    """

    @property
    def core_path(self) -> str | None:
        """Where compiled enumeration cores persist for this store.

        ``None`` (the default) means the backend has no durable home for
        a ``.core`` sidecar — the engine's ``core_cache="auto"`` mode
        then disables warm-start persistence.  File-backed backends
        return a path *next to* their data file so the core travels
        (and is deleted) with it.
        """
        return None

    def relation_names(self) -> list[str]:
        """Names of all stored relations, in creation order."""
        ...

    def arity(self, name: str) -> int:
        """Number of value columns (excluding the weight) of ``name``."""
        ...

    def cardinality(self, name: str) -> int:
        """Number of stored rows of ``name`` (no materialisation)."""
        ...

    def version(self, name: str) -> int:
        """Monotone mutation counter for ``name`` (cache invalidation)."""
        ...

    def create(self, name: str, arity: int, replace: bool = False) -> None:
        """Create an empty relation (``replace=True`` drops any old one)."""
        ...

    def drop(self, name: str) -> None:
        """Remove the relation called ``name`` (KeyError if absent)."""
        ...

    def append(self, name: str, values: tuple, weight: Any = 0.0) -> None:
        """Append one row; bumps the relation's version counter."""
        ...

    def extend(self, name: str, rows: Iterable[tuple[tuple, Any]]) -> int:
        """Bulk-append ``(tuple, weight)`` rows (streaming; one version
        bump for the whole batch).  Returns the number of rows added."""
        ...

    def iter_rows(self, name: str) -> Iterator[tuple[tuple, Any]]:
        """Lazily yield ``(tuple, weight)`` rows in insertion order."""
        ...

    def sorted_rows(
        self, name: str, descending: bool = False
    ) -> Iterator[tuple[tuple, Any]]:
        """Yield rows ordered by weight (ties in insertion order)."""
        ...

    def fetch_tuple(self, name: str, position: int) -> tuple[tuple, Any]:
        """The single row at insertion position ``position``."""
        ...

    def fetch_rows(
        self, name: str, start: int | None = None, stop: int | None = None
    ) -> list[tuple]:
        """Bulk-materialise raw rows ``start .. stop-1`` (whole relation
        when unbounded), each as one flat tuple with the weight in the
        trailing position.

        This is the fragment-scan primitive of the parallel execution
        layer (:mod:`repro.parallel`): a contiguous *position range* maps
        to a rowid range in SQLite, so a fragment build reads exactly its
        slice of the anchor relation, and the single ``fetchall`` keeps
        the per-row Python overhead out of the preprocessing hot loop.
        """
        ...

    def degree_statistics(
        self, name: str, columns: Sequence[int]
    ) -> dict[tuple, int]:
        """Occurrence count per distinct projection onto ``columns``.

        Computed server-side where possible (SQL ``GROUP BY``), so the
        heavy/light split of the cycle decomposition does not force a
        client-side pass over the relation.
        """
        ...

    def ingest(self, relation: "Relation", name: str | None = None) -> str:
        """Copy ``relation``'s rows in (replacing ``name``); returns name."""
        ...

    def relation(self, name: str) -> "Relation":
        """A :class:`Relation` view of the stored relation ``name``."""
        ...

    def database(self) -> "Database":
        """A :class:`Database` over every stored relation."""
        ...

    def close(self) -> None:
        """Release any held resources (idempotent)."""
        ...


class MemoryBackend:
    """The in-memory storage the library started with, behind the protocol.

    Rows live in Python lists inside :class:`Relation` objects;
    :meth:`relation` hands out the stored object itself (zero-copy), so
    version counters are exactly the relation's own and the fast paths
    of the algorithms are untouched.
    """

    def __init__(self, relations: Iterable["Relation"] | None = None):
        self._relations: dict[str, Relation] = {}
        for relation in relations or ():
            self.ingest(relation)

    # -- protocol --------------------------------------------------------------

    @property
    def core_path(self) -> str | None:
        return None

    def relation_names(self) -> list[str]:
        return list(self._relations)

    def _get(self, name: str) -> "Relation":
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r} in backend") from None

    def arity(self, name: str) -> int:
        return self._get(name).arity

    def cardinality(self, name: str) -> int:
        return len(self._get(name))

    def version(self, name: str) -> int:
        return self._get(name).version

    def create(self, name: str, arity: int, replace: bool = False) -> None:
        from repro.data.relation import Relation

        validate_identifier(name)
        existing = self._relations.get(name)
        if existing is not None:
            if not replace:
                raise ValueError(f"relation {name!r} already exists")
            # Replace *in place* so Database views holding this object
            # observe the swap, compensating the version counter for the
            # dropped cardinality (the engine's invalidation stamp sums
            # len + version and must stay strictly monotone) — the same
            # contract SQLiteBackend.create upholds.
            existing._version += len(existing._tuples) + 1
            existing._tuples = []
            existing._weights = []
            existing._cardinality = None
            existing.arity = arity
            return
        self._relations[name] = Relation(name, arity)

    def drop(self, name: str) -> None:
        self._get(name)
        del self._relations[name]

    def append(self, name: str, values: tuple, weight: Any = 0.0) -> None:
        self._get(name).add(values, weight)

    def extend(self, name: str, rows: Iterable[tuple[tuple, Any]]) -> int:
        relation = self._get(name)
        arity = relation.arity
        # Stage the whole batch before touching the relation: a row
        # source failing mid-stream must not leave a partial append
        # (same all-or-nothing contract as SQLiteBackend.extend).
        staged: list[tuple[tuple, Any]] = []
        for values, weight in rows:
            values = tuple(values)
            if len(values) != arity:
                raise ValueError(
                    f"tuple {values!r} does not match arity {arity} of {name}"
                )
            staged.append((values, weight))
        for values, weight in staged:
            relation.add(values, weight)
        return len(staged)

    def iter_rows(self, name: str) -> Iterator[tuple[tuple, Any]]:
        return iter(list(self._get(name).rows()))

    def sorted_rows(
        self, name: str, descending: bool = False
    ) -> Iterator[tuple[tuple, Any]]:
        relation = self._get(name)
        rows = sorted(relation.rows(), key=lambda row: row[1], reverse=descending)
        return iter(rows)

    def fetch_tuple(self, name: str, position: int) -> tuple[tuple, Any]:
        relation = self._get(name)
        return relation.tuples[position], relation.weights[position]

    def fetch_rows(
        self, name: str, start: int | None = None, stop: int | None = None
    ) -> list[tuple]:
        relation = self._get(name)
        tuples = relation.tuples
        weights = relation.weights
        if start is not None or stop is not None:
            tuples = tuples[start:stop]
            weights = weights[start:stop]
        return [t + (w,) for t, w in zip(tuples, weights)]

    def degree_statistics(
        self, name: str, columns: Sequence[int]
    ) -> dict[tuple, int]:
        cols = tuple(columns)
        counts: dict[tuple, int] = {}
        for values in self._get(name).tuples:
            key = tuple(values[c] for c in cols)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def ingest(self, relation: "Relation", name: str | None = None) -> str:
        name = name or relation.name
        self.create(name, relation.arity, replace=True)
        stored = self._relations[name]
        for values, weight in relation.rows():
            stored._tuples.append(values)
            stored._weights.append(weight)
        stored._version += 1
        return name

    def relation(self, name: str) -> "Relation":
        return self._get(name)

    def database(self) -> "Database":
        from repro.data.database import Database

        return Database.from_backend(self)

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"MemoryBackend({len(self._relations)} relations)"


class SQLiteBackend:
    """Relations persisted in one SQLite file (or ``:memory:``).

    Each relation is a table ``"name"(a1, .., a_arity, w)`` — the
    paper's Appendix-B schema.  Value columns are declared without a
    type, giving them BLOB affinity so ints, floats, and strings round
    trip unchanged.  Insertion order is identity: rows are only ever
    appended, so ``rowid == position + 1`` and witnesses resolve with a
    point lookup instead of a scan.

    A catalog table ``repro_relations`` records each relation's arity
    and a monotone version counter; the counter is mirrored in memory so
    the engine's per-execution version checks cost a dict lookup, not a
    query.  Reopening the file in another process reads the persisted
    counters back — the basis of cross-process warm starts.

    **Concurrency.**  A file-backed backend hands each thread its own
    connection (created on first use, WAL journal so concurrent readers
    never block the writer), which is what lets many serving sessions
    stream lazily from one ``.db`` at once — sqlite3 connections must
    not be stepped from two threads simultaneously, but one connection
    per thread side-steps that entirely.  ``:memory:`` databases exist
    per-connection, so they keep a single shared connection
    (``check_same_thread=False``; the sqlite library serialises access
    internally).  Catalog/metadata mutations are guarded by a lock in
    both modes.
    """

    CATALOG = "repro_relations"

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._closed = False
        self._lock = threading.RLock()
        self._local = threading.local()
        #: Open connections with their owning thread (None = shared),
        #: so dead threads' connections are reclaimed (see connection)
        #: and close() can shut every one down.
        self._connections: list[
            tuple[threading.Thread | None, sqlite3.Connection]
        ] = []
        #: Single shared connection for ":memory:" (per-thread
        #: connections would each see a distinct empty database).
        self._shared: sqlite3.Connection | None = None
        if path == ":memory:":
            self._shared = sqlite3.connect(path, check_same_thread=False)
            self._connections.append((None, self._shared))
        conn = self.connection
        conn.execute(
            f"CREATE TABLE IF NOT EXISTS {self.CATALOG} "
            "(name TEXT PRIMARY KEY, arity INTEGER NOT NULL, "
            "version INTEGER NOT NULL DEFAULT 0)"
        )
        conn.commit()
        #: In-memory mirror of the catalog: name -> [arity, version].
        self._meta: dict[str, list[int]] = {
            row[0]: [row[1], row[2]]
            for row in conn.execute(
                f"SELECT name, arity, version FROM {self.CATALOG} ORDER BY rowid"
            )
        }

    @property
    def core_path(self) -> str | None:
        """``<db-file>.core`` for file-backed stores, ``None`` in memory."""
        return None if self.path == ":memory:" else self.path + ".core"

    # -- internals -------------------------------------------------------------

    @property
    def connection(self) -> sqlite3.Connection:
        """The calling thread's connection (raises after :meth:`close`).

        File-backed: one connection per thread, opened lazily.  Memory:
        the single shared connection.
        """
        if self._closed:
            raise RuntimeError(f"SQLiteBackend({self.path!r}) is closed")
        if self._shared is not None:
            return self._shared
        conn = getattr(self._local, "conn", None)
        if conn is None:
            # check_same_thread=False so close() (from whichever thread
            # owns the backend) may close connections opened by others;
            # each connection is still *used* by its opening thread only.
            conn = sqlite3.connect(self.path, check_same_thread=False)
            conn.execute("PRAGMA busy_timeout = 10000")
            conn.execute("PRAGMA journal_mode = WAL")
            with self._lock:
                if self._closed:
                    conn.close()
                    raise RuntimeError(
                        f"SQLiteBackend({self.path!r}) is closed"
                    )
                # Reclaim connections whose owning thread exited (a
                # serve process sees steady thread churn; without this
                # the handle count grows until EMFILE).
                dead = [
                    entry
                    for entry in self._connections
                    if entry[0] is not None and not entry[0].is_alive()
                ]
                for entry in dead:
                    self._connections.remove(entry)
                self._connections.append((threading.current_thread(), conn))
            for _owner, stale in dead:
                stale.close()
            self._local.conn = conn
        return conn

    def _execute(self, sql: str, params: Sequence | None = None) -> sqlite3.Cursor:
        """Run one statement, retrying transient locked/busy errors.

        The ``sqlite.execute`` fault site sits *inside* the retried
        callable, so an injected ``database is locked`` storm exercises
        the same recovery path real WAL contention does.
        """
        conn = self.connection

        def attempt() -> sqlite3.Cursor:
            faults.hit("sqlite.execute")
            if params is None:
                return conn.execute(sql)
            return conn.execute(sql, params)

        return _sqlite_retrier().call(attempt)

    def _executemany(self, sql: str, rows: Iterable[tuple]) -> sqlite3.Cursor:
        # No retry here: the row source may be a one-shot generator, so a
        # second attempt would silently insert a shorter batch.  Callers
        # roll back on failure instead.  Distinct fault site on purpose —
        # a ``sqlite.execute`` storm must only land on retried statements.
        faults.hit("sqlite.executemany")
        return self.connection.executemany(sql, rows)

    def _meta_of(self, name: str) -> list[int]:
        try:
            return self._meta[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r} in backend") from None

    def _bump(self, name: str, by: int = 1) -> None:
        meta = self._meta_of(name)
        meta[1] += by
        self._execute(
            f"UPDATE {self.CATALOG} SET version = ? WHERE name = ?",
            (meta[1], name),
        )

    @staticmethod
    def _columns(arity: int) -> list[str]:
        return [f"a{i + 1}" for i in range(arity)]

    # -- protocol --------------------------------------------------------------

    def relation_names(self) -> list[str]:
        return list(self._meta)

    def arity(self, name: str) -> int:
        return self._meta_of(name)[0]

    def cardinality(self, name: str) -> int:
        table = quote_identifier(name)
        self._meta_of(name)
        (count,) = self._execute(f"SELECT COUNT(*) FROM {table}").fetchone()
        return count

    def version(self, name: str) -> int:
        return self._meta_of(name)[1]

    def create(self, name: str, arity: int, replace: bool = False) -> None:
        if arity < 1:
            raise ValueError("relation arity must be at least 1")
        with self._lock:
            self._create_locked(name, arity, replace)

    def _create_locked(self, name: str, arity: int, replace: bool) -> None:
        table = quote_identifier(name)
        conn = self.connection
        if name in self._meta:
            if not replace:
                raise ValueError(f"relation {name!r} already exists")
            # Replacement may shrink the cardinality; compensate in the
            # version counter so the (len + version) stamp the engine
            # sums for invalidation stays strictly monotone.
            (old_count,) = self._execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()
            old_version = self._meta[name][1] + old_count
            self._execute(f"DROP TABLE {table}")
            self._execute(
                f"DELETE FROM {self.CATALOG} WHERE name = ?", (name,)
            )
        else:
            old_version = -1
        columns = ", ".join(self._columns(arity) + ["w"])
        self._execute(f"CREATE TABLE {table} ({columns})")
        self._execute(
            f"INSERT INTO {self.CATALOG} (name, arity, version) VALUES (?, ?, ?)",
            (name, arity, old_version + 1),
        )
        conn.commit()
        self._meta[name] = [arity, old_version + 1]

    def drop(self, name: str) -> None:
        with self._lock:
            table = quote_identifier(name)
            self._meta_of(name)
            self._execute(f"DROP TABLE {table}")
            self._execute(f"DELETE FROM {self.CATALOG} WHERE name = ?", (name,))
            self.connection.commit()
            del self._meta[name]

    def append(self, name: str, values: tuple, weight: Any = 0.0) -> None:
        with self._lock:
            arity = self.arity(name)
            if len(values) != arity:
                raise ValueError(
                    f"tuple {values!r} does not match arity {arity} of {name}"
                )
            table = quote_identifier(name)
            placeholders = ", ".join("?" for _ in range(arity + 1))
            self._execute(
                f"INSERT INTO {table} VALUES ({placeholders})",
                tuple(values) + (weight,),
            )
            self._bump(name)
            self.connection.commit()

    def extend(self, name: str, rows: Iterable[tuple[tuple, Any]]) -> int:
        with self._lock:
            arity = self.arity(name)
            table = quote_identifier(name)
            placeholders = ", ".join("?" for _ in range(arity + 1))
            counter = itertools.count(1)
            count = 0

            def flat() -> Iterator[tuple]:
                nonlocal count
                for values, weight in rows:
                    if len(values) != arity:
                        raise ValueError(
                            f"tuple {values!r} does not match arity {arity} "
                            f"of {name}"
                        )
                    count = next(counter)
                    yield tuple(values) + (weight,)

            # executemany consumes the generator lazily: ingestion streams
            # through SQLite without materialising the batch in Python.
            try:
                self._executemany(
                    f"INSERT INTO {table} VALUES ({placeholders})", flat()
                )
            except BaseException:
                # A failing row source must not leave a partial batch in
                # the open transaction (the next unrelated commit would
                # persist it without any version bump).
                self.connection.rollback()
                raise
            if count:
                self._bump(name)
            self.connection.commit()
            return count

    def iter_rows(self, name: str) -> Iterator[tuple[tuple, Any]]:
        table = quote_identifier(name)
        self._meta_of(name)
        cursor = self._execute(f"SELECT * FROM {table} ORDER BY rowid")
        return ((tuple(row[:-1]), row[-1]) for row in cursor)

    def sorted_rows(
        self, name: str, descending: bool = False
    ) -> Iterator[tuple[tuple, Any]]:
        table = quote_identifier(name)
        self._meta_of(name)
        order = "DESC" if descending else "ASC"
        cursor = self._execute(
            f"SELECT * FROM {table} ORDER BY w {order}, rowid ASC"
        )
        return ((tuple(row[:-1]), row[-1]) for row in cursor)

    def fetch_tuple(self, name: str, position: int) -> tuple[tuple, Any]:
        table = quote_identifier(name)
        self._meta_of(name)
        # Append-only tables keep rowid == insertion position + 1, so
        # witness recovery is a point lookup, not an OFFSET scan.
        row = self._execute(
            f"SELECT * FROM {table} WHERE rowid = ?", (position + 1,)
        ).fetchone()
        if row is None:
            raise IndexError(f"{name}: no tuple at position {position}")
        return tuple(row[:-1]), row[-1]

    def fetch_rows(
        self, name: str, start: int | None = None, stop: int | None = None
    ) -> list[tuple]:
        table = quote_identifier(name)
        self._meta_of(name)
        # Append-only tables keep rowid == position + 1, so a position
        # range is a rowid range scan; ORDER BY rowid pins the insertion
        # order the T-DP state identity relies on.
        if start is None and stop is None:
            cursor = self._execute(f"SELECT * FROM {table} ORDER BY rowid")
        else:
            lo = 0 if start is None else start
            hi = 2**63 - 1 if stop is None else stop
            cursor = self._execute(
                f"SELECT * FROM {table} WHERE rowid > ? AND rowid <= ? "
                "ORDER BY rowid",
                (lo, hi),
            )
        return cursor.fetchall()

    def degree_statistics(
        self, name: str, columns: Sequence[int]
    ) -> dict[tuple, int]:
        arity = self.arity(name)
        cols = tuple(columns)
        if not cols or any(c < 0 or c >= arity for c in cols):
            raise ValueError(f"bad column subset {cols!r} for arity {arity}")
        table = quote_identifier(name)
        select = ", ".join(f"a{c + 1}" for c in cols)
        cursor = self._execute(
            f"SELECT {select}, COUNT(*) FROM {table} GROUP BY {select}"
        )
        return {tuple(row[:-1]): row[-1] for row in cursor}

    def create_index(self, name: str, columns: Sequence[int]) -> str:
        """A persistent b-tree access path on ``columns`` (idempotent)."""
        arity = self.arity(name)
        cols = tuple(columns)
        if not cols or any(c < 0 or c >= arity for c in cols):
            raise ValueError(f"bad column subset {cols!r} for arity {arity}")
        table = quote_identifier(name)
        suffix = "_".join(f"a{c + 1}" for c in cols)
        index_name = quote_identifier(f"idx_{name}_{suffix}")
        with self._lock:
            self._execute(
                f"CREATE INDEX IF NOT EXISTS {index_name} ON {table} "
                f"({', '.join(f'a{c + 1}' for c in cols)})"
            )
            self.connection.commit()
        return f"idx_{name}_{suffix}"

    def ingest(self, relation: "Relation", name: str | None = None) -> str:
        name = name or relation.name
        self.create(name, relation.arity, replace=True)
        self.extend(name, relation.rows())
        return name

    def relation(self, name: str) -> "Relation":
        from repro.data.relation import Relation

        return Relation.from_backend(self, name)

    def database(self) -> "Database":
        from repro.data.database import Database

        return Database.from_backend(self)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections, self._connections = self._connections, []
            self._shared = None
        for _owner, conn in connections:
            conn.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self._meta)} relations"
        return f"SQLiteBackend({self.path!r}, {state})"
