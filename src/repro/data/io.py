"""CSV import/export for relations, databases, and storage backends.

A relation is stored as one CSV file: one row per tuple, the weight in
a trailing column named ``w`` (written by :func:`write_relation_csv`,
optional on read).  Values are parsed as ``int`` where possible, then
``float``, else kept as strings — adequate for the graph and synthetic
workloads this library targets (note the inference is lossy: a *string*
that looks numeric, like ``"007"``, reads back as the number).

Reading can target either an in-memory :class:`Relation`
(:func:`read_relation_csv`) or any
:class:`~repro.data.backend.StorageBackend` (:func:`ingest_csv`), and
ingestion streams row-by-row through the backend's bulk ``extend`` —
a CSV larger than memory loads into a SQLite backend without ever being
held as a Python list.
"""

from __future__ import annotations

import csv
import itertools
import os
from typing import TYPE_CHECKING, Any, Iterator

from repro.data.database import Database
from repro.data.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.backend import StorageBackend


def _parse_value(token: str) -> Any:
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


class CsvRows:
    """A re-iterable stream of ``(tuple, weight)`` rows from one CSV file.

    Shared by :func:`read_relation_csv` (materialising) and
    :func:`ingest_csv` (streaming into a backend).  Each iteration
    reopens the file, so the stream can be consumed more than once.
    ``weight_column`` selects the weight column by index (negative
    indexes count from the right); ``None`` means weight-less rows
    (weights become 0.0).  With ``has_header`` the first row is
    skipped; a trailing header column literally named ``w`` marks the
    weight column regardless of ``weight_column``.
    """

    def __init__(
        self,
        path: str,
        weight_column: int | None = -1,
        has_header: bool = False,
        delimiter: str = ",",
    ):
        self.path = path
        self.has_header = has_header
        self.delimiter = delimiter
        self.header: list[str] | None = None
        self.weight_column = weight_column
        if has_header:
            with open(path, newline="") as handle:
                self.header = next(
                    csv.reader(handle, delimiter=delimiter), None
                )
            if self.header and self.header[-1].strip().lower() == "w":
                self.weight_column = -1

    def header_arity(self) -> int | None:
        """Arity implied by the header row (None without a header)."""
        if not self.header:
            return None
        if self.weight_column is None:
            return len(self.header)
        return len(self.header) - 1

    def __iter__(self) -> Iterator[tuple[tuple, Any]]:
        with open(self.path, newline="") as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            rows = iter(reader)
            if self.has_header:
                next(rows, None)
            weight_column = self.weight_column
            for row in rows:
                if not row or all(not cell.strip() for cell in row):
                    continue
                values = [_parse_value(cell.strip()) for cell in row]
                if weight_column is None:
                    weight = 0.0
                else:
                    weight = float(values.pop(weight_column))
                yield tuple(values), weight


def read_relation_csv(
    path: str,
    name: str | None = None,
    weight_column: int | None = -1,
    has_header: bool = False,
    delimiter: str = ",",
) -> Relation:
    """Load a relation from CSV (see :class:`CsvRows` for the format).

    A file with a header but no data rows loads as an *empty* relation
    whose arity comes from the header; a file with neither is an error.
    """
    if name is None:
        name = os.path.splitext(os.path.basename(path))[0]
    stream = CsvRows(
        path,
        weight_column=weight_column,
        has_header=has_header,
        delimiter=delimiter,
    )
    tuples: list[tuple] = []
    weights: list[Any] = []
    for values, weight in stream:
        tuples.append(values)
        weights.append(weight)
    if not tuples:
        arity = stream.header_arity()
        if not arity:
            raise ValueError(f"{path}: no tuples found")
        return Relation(name, arity)
    arity = len(tuples[0])
    if any(len(t) != arity for t in tuples):
        raise ValueError(f"{path}: rows have inconsistent arity")
    return Relation(name, arity, tuples, weights)


def ingest_csv(
    backend: "StorageBackend",
    path: str,
    name: str | None = None,
    weight_column: int | None = -1,
    has_header: bool = False,
    delimiter: str = ",",
) -> str:
    """Bulk-load one CSV file into ``backend`` (replacing ``name``).

    Rows stream through :meth:`StorageBackend.extend` without being
    materialised in Python; returns the relation name.
    """
    if name is None:
        name = os.path.splitext(os.path.basename(path))[0]
    stream = CsvRows(
        path,
        weight_column=weight_column,
        has_header=has_header,
        delimiter=delimiter,
    )
    rows = iter(stream)
    first = next(rows, None)
    if first is None:
        arity = stream.header_arity()
        if not arity:
            raise ValueError(f"{path}: no tuples found")
        backend.create(name, arity, replace=True)
        return name
    arity = len(first[0])

    def checked() -> Iterator[tuple[tuple, Any]]:
        for values, weight in itertools.chain([first], rows):
            if len(values) != arity:
                raise ValueError(f"{path}: rows have inconsistent arity")
            yield values, weight

    backend.create(name, arity, replace=True)
    try:
        backend.extend(name, checked())
    except BaseException:
        # Any mid-stream failure (ragged row, csv/decode error, storage
        # error) must not leave a half-ingested relation behind.
        backend.drop(name)
        raise
    return name


def write_relation_csv(
    relation: Relation,
    path: str,
    include_header: bool = True,
    delimiter: str = ",",
) -> None:
    """Write a relation as CSV with a trailing weight column ``w``.

    Works for any storage backend: rows stream via ``Relation.rows()``
    (lazy for backend-stored relations).
    """
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if include_header:
            writer.writerow(
                [f"a{i + 1}" for i in range(relation.arity)] + ["w"]
            )
        for values, weight in relation.rows():
            writer.writerow(list(values) + [weight])


def _sniff_header(path: str, delimiter: str) -> bool:
    """Heuristic from :func:`save_database`'s output: a non-numeric
    first cell means the first row is a header."""
    with open(path, newline="") as handle:
        first = handle.readline()
    return bool(first) and not first.split(delimiter)[0].strip().lstrip(
        "-"
    ).replace(".", "", 1).isdigit()


def load_database(
    directory: str,
    delimiter: str = ",",
    backend: "StorageBackend | None" = None,
) -> Database:
    """Load every ``*.csv`` in ``directory`` as a relation named by file.

    Files are assumed to carry the header written by
    :func:`write_relation_csv` (detected by a trailing ``w`` column).
    Without ``backend`` the relations are materialised in memory (the
    historical behaviour); with one, each file is bulk-ingested into the
    backend and the returned database reads (lazily) from it.  Backend
    ingestion is all-or-nothing per directory: if any file fails to
    parse, the relations this call already ingested are dropped again,
    so a half-loaded ``.db`` file is never mistaken for a complete
    dataset on the next (warm-start) open.
    """
    paths = [
        os.path.join(directory, entry)
        for entry in sorted(os.listdir(directory))
        if entry.endswith(".csv")
    ]
    if not paths:
        raise ValueError(f"no CSV relations found in {directory!r}")
    if backend is not None:
        ingested: list[str] = []
        try:
            for path in paths:
                ingested.append(
                    ingest_csv(
                        backend,
                        path,
                        has_header=_sniff_header(path, delimiter),
                        delimiter=delimiter,
                    )
                )
        except BaseException:
            for name in ingested:
                if name in backend.relation_names():
                    backend.drop(name)
            raise
        return backend.database()
    database = Database()
    for path in paths:
        database.add(
            read_relation_csv(
                path,
                has_header=_sniff_header(path, delimiter),
                delimiter=delimiter,
            )
        )
    return database


def save_database(database: Database, directory: str) -> None:
    """Write every relation of ``database`` into ``directory``."""
    os.makedirs(directory, exist_ok=True)
    for relation in database:
        write_relation_csv(
            relation, os.path.join(directory, f"{relation.name}.csv")
        )
