"""CSV import/export for relations and databases.

A relation is stored as one CSV file: one row per tuple, the weight in
a trailing column named ``w`` (written by :func:`write_relation_csv`,
optional on read).  Values are parsed as ``int`` where possible, then
``float``, else kept as strings — adequate for the graph and synthetic
workloads this library targets.
"""

from __future__ import annotations

import csv
import os
from typing import Any

from repro.data.database import Database
from repro.data.relation import Relation


def _parse_value(token: str) -> Any:
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def read_relation_csv(
    path: str,
    name: str | None = None,
    weight_column: int | None = -1,
    has_header: bool = False,
    delimiter: str = ",",
) -> Relation:
    """Load a relation from CSV.

    ``weight_column`` selects the weight column by index (negative
    indexes count from the right; default: last column); pass ``None``
    for weight-less files (weights become 0.0).  With ``has_header`` the
    first row is skipped; a trailing header column literally named
    ``w`` marks the weight column regardless of ``weight_column``.
    """
    if name is None:
        name = os.path.splitext(os.path.basename(path))[0]
    tuples: list[tuple] = []
    weights: list[Any] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = iter(reader)
        if has_header:
            header = next(rows, None)
            if header and header[-1].strip().lower() == "w":
                weight_column = -1
        for row in rows:
            if not row or all(not cell.strip() for cell in row):
                continue
            values = [_parse_value(cell.strip()) for cell in row]
            if weight_column is None:
                weight = 0.0
            else:
                weight = float(values.pop(weight_column))
            tuples.append(tuple(values))
            weights.append(weight)
    if not tuples:
        raise ValueError(f"{path}: no tuples found")
    arity = len(tuples[0])
    if any(len(t) != arity for t in tuples):
        raise ValueError(f"{path}: rows have inconsistent arity")
    return Relation(name, arity, tuples, weights)


def write_relation_csv(
    relation: Relation,
    path: str,
    include_header: bool = True,
    delimiter: str = ",",
) -> None:
    """Write a relation as CSV with a trailing weight column ``w``."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if include_header:
            writer.writerow(
                [f"a{i + 1}" for i in range(relation.arity)] + ["w"]
            )
        for values, weight in relation.rows():
            writer.writerow(list(values) + [weight])


def load_database(directory: str, delimiter: str = ",") -> Database:
    """Load every ``*.csv`` in ``directory`` as a relation named by file.

    Files are assumed to carry the header written by
    :func:`write_relation_csv` (detected by a trailing ``w`` column).
    """
    database = Database()
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".csv"):
            continue
        path = os.path.join(directory, entry)
        with open(path, newline="") as handle:
            first = handle.readline()
        has_header = bool(first) and not first.split(delimiter)[0].strip().lstrip(
            "-"
        ).replace(".", "", 1).isdigit()
        database.add(
            read_relation_csv(path, has_header=has_header, delimiter=delimiter)
        )
    if not len(database):
        raise ValueError(f"no CSV relations found in {directory!r}")
    return database


def save_database(database: Database, directory: str) -> None:
    """Write every relation of ``database`` into ``directory``."""
    os.makedirs(directory, exist_ok=True)
    for relation in database:
        write_relation_csv(
            relation, os.path.join(directory, f"{relation.name}.csv")
        )
