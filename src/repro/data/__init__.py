"""Relational substrate: relations, databases, storage, and workload data.

The paper assumes (Section 2.3) the standard RAM model plus hash-based
tuple lookup structures that can be built in linear time; this package
provides exactly that: relations with per-tuple weights over pluggable
storage backends (in-memory lists or a persistent SQLite file),
constant-time hash indexes on attribute subsets, and the synthetic /
graph workload generators used by the experiments.
"""

from repro.data.backend import (
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    quote_identifier,
    validate_identifier,
)
from repro.data.database import Database
from repro.data.index import HashIndex, IndexCache
from repro.data.relation import Relation

__all__ = [
    "Relation",
    "Database",
    "HashIndex",
    "IndexCache",
    "StorageBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "validate_identifier",
    "quote_identifier",
]
