"""Relational substrate: relations, databases, indexes, and workload data.

The paper assumes (Section 2.3) the standard RAM model plus hash-based
tuple lookup structures that can be built in linear time; this package
provides exactly that: in-memory relations with per-tuple weights,
constant-time hash indexes on attribute subsets, and the synthetic /
graph workload generators used by the experiments.
"""

from repro.data.database import Database
from repro.data.index import HashIndex, IndexCache
from repro.data.relation import Relation

__all__ = ["Relation", "Database", "HashIndex", "IndexCache"]
