"""A database is a name-indexed collection of relations."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.data.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.backend import StorageBackend


class Database:
    """Named relations plus the derived statistics the algorithms need.

    ``n`` in the paper's cost model is the maximum cardinality of any
    relation referenced by the query; :meth:`max_cardinality` provides it.

    A database may be a plain in-memory collection (the default) or a
    view over a :class:`~repro.data.backend.StorageBackend`
    (:meth:`from_backend`), in which case its relations read lazily from
    the backing store and :attr:`version` still observes every mutation
    made through any view of the store.
    """

    def __init__(self, relations: Mapping[str, Relation] | Iterable[Relation] | None = None):
        self.relations: dict[str, Relation] = {}
        #: The storage backend this database was opened from (if any).
        self.backend: StorageBackend | None = None
        self._structure_version = 0
        if relations is None:
            return
        if isinstance(relations, Mapping):
            for name, relation in relations.items():
                if name != relation.name:
                    relation = relation.rename(name)
                self.relations[name] = relation
        else:
            for relation in relations:
                self.add(relation)

    @classmethod
    def from_backend(cls, backend: "StorageBackend") -> "Database":
        """Open every relation stored in ``backend`` as one database.

        Relations come back as the backend's views (lazy for SQLite,
        the stored objects themselves for the memory backend), so no
        tuples are read until an execution needs them — opening a large
        persistent ``.db`` file is O(#relations), not O(data).
        """
        database = cls(
            [backend.relation(name) for name in backend.relation_names()]
        )
        database.backend = backend
        return database

    def close(self) -> None:
        """Close the owning backend, if any (idempotent)."""
        if self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def version(self) -> int:
        """Monotone mutation counter covering the whole database.

        Bumped by structural changes (:meth:`add`, :meth:`remove`) and by
        tuple insertions on any contained relation.  The sum includes
        each relation's *cardinality* as well as its mutation counter, so
        insertions are observed even through an aliased :meth:`Relation.rename`
        copy that shares tuple storage (as ``Database({"E": rel})``
        creates).  The engine stamps prepared queries with this value, so
        any mutation soundly invalidates cached plans, T-DPs, and indexes
        on the next execution.
        """
        return self._structure_version + sum(
            len(relation) + relation.version
            for relation in self.relations.values()
        )

    def touch(self) -> None:
        """Force a version bump (for out-of-band mutation of relations)."""
        self._structure_version += 1

    def add(self, relation: Relation) -> None:
        """Register ``relation`` under its own name (replacing any old one)."""
        old = self.relations.get(relation.name)
        self.relations[relation.name] = relation
        # Replacing a relation may *lower* the summed (len + version)
        # contribution; compensate so the total stays strictly monotone.
        self._structure_version += 1 + (
            len(old) + old.version if old is not None else 0
        )

    def remove(self, name: str) -> None:
        """Drop the relation called ``name`` (KeyError if absent)."""
        relation = self[name]
        del self.relations[name]
        self._structure_version += 1 + len(relation) + relation.version

    def __getitem__(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r} in database") from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def max_cardinality(self, names: Iterable[str] | None = None) -> int:
        """The paper's ``n``: the largest referenced relation."""
        if names is None:
            names = self.relations.keys()
        sizes = [len(self.relations[name]) for name in names]
        return max(sizes, default=0)

    def total_tuples(self) -> int:
        """Total number of stored tuples across all relations."""
        return sum(len(r) for r in self.relations.values())

    def __repr__(self) -> str:
        def size(relation: Relation) -> object:
            try:
                return len(relation)
            except Exception:  # e.g. the owning backend was closed
                return "?"

        inner = ", ".join(
            f"{name}[{size(rel)}]" for name, rel in self.relations.items()
        )
        return f"Database({inner})"
