"""A database is a name-indexed collection of relations."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.data.relation import Relation


class Database:
    """Named relations plus the derived statistics the algorithms need.

    ``n`` in the paper's cost model is the maximum cardinality of any
    relation referenced by the query; :meth:`max_cardinality` provides it.
    """

    def __init__(self, relations: Mapping[str, Relation] | Iterable[Relation] | None = None):
        self.relations: dict[str, Relation] = {}
        if relations is None:
            return
        if isinstance(relations, Mapping):
            for name, relation in relations.items():
                if name != relation.name:
                    relation = relation.rename(name)
                self.relations[name] = relation
        else:
            for relation in relations:
                self.add(relation)

    def add(self, relation: Relation) -> None:
        """Register ``relation`` under its own name (replacing any old one)."""
        self.relations[relation.name] = relation

    def __getitem__(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r} in database") from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def max_cardinality(self, names: Iterable[str] | None = None) -> int:
        """The paper's ``n``: the largest referenced relation."""
        if names is None:
            names = self.relations.keys()
        sizes = [len(self.relations[name]) for name in names]
        return max(sizes, default=0)

    def total_tuples(self) -> int:
        """Total number of stored tuples across all relations."""
        return sum(len(r) for r in self.relations.values())

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}[{len(rel)}]" for name, rel in self.relations.items()
        )
        return f"Database({inner})"
