"""Synthetic workload generators for every experiment in the paper.

Section 7's synthetic data:

* *path/star data*: binary relations whose values are sampled uniformly
  from ``{1, ..., n/10}``, so each tuple joins with ~10 tuples of the
  next relation; tuple weights uniform in ``[0, 10000]``.
* *cycle data*: the worst-case-output construction of Ngo et al.: each
  relation holds ``n/2`` tuples ``(0, i)`` and ``n/2`` tuples ``(i, 0)``.

Section 9.1's adversarial instances:

* :func:`nprr_hard_instance` — database ``I1`` (Fig 16) on which NPRR
  needs quadratic time before the top-ranked 4-cycle, while the any-k
  decomposition needs only linear time.
* :func:`rank_join_hard_instance` — database ``I2`` (Fig 19) that forces
  Rank-Join/J* to consider ``(n-1)^(l-1)`` combinations before the top
  result (under max-plus ranking).
* :func:`fdb_lex_instance` — the Fig 18 two-relation instance where a
  lexicographic order that disagrees with the factorization order makes
  factorized databases pay a quadratic restructuring.
* :func:`recursive_worst_case` — the Fig 6 Cartesian-product instance of
  Proposition 13 where Recursive's TT(n) is asymptotically worse than
  anyK-part's.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.ranking.weights import random_weights


def relation_names(count: int) -> list[str]:
    """Canonical relation names ``R1 .. Rcount`` used by the query builders."""
    return [f"R{i}" for i in range(1, count + 1)]


def uniform_database(
    num_relations: int,
    n: int,
    domain_size: int | None = None,
    seed: int = 0,
    weight_high: float = 10_000.0,
) -> Database:
    """Uniform synthetic data for path and star queries (Section 7).

    Each of the ``num_relations`` binary relations holds ``n`` tuples with
    both attributes drawn uniformly from ``{1, ..., domain_size}``
    (default ``max(1, n // 10)``, the paper's choice yielding ~10 join
    partners per tuple) and weights uniform in ``[0, weight_high]``.
    """
    rng = random.Random(seed)
    if domain_size is None:
        domain_size = max(1, n // 10)
    db = Database()
    for name in relation_names(num_relations):
        tuples = [
            (rng.randint(1, domain_size), rng.randint(1, domain_size))
            for _ in range(n)
        ]
        db.add(Relation(name, 2, tuples, random_weights(n, rng, 0.0, weight_high)))
    return db


def worst_case_cycle_database(
    num_relations: int,
    n: int,
    seed: int = 0,
    weight_high: float = 10_000.0,
) -> Database:
    """Worst-case-output cycle data (Section 7, following Ngo et al.).

    Every relation consists of ``n/2`` tuples ``(0, i)`` and ``n/2``
    tuples ``(i, 0)`` with ``i`` ranging over ``{1, ..., n/2}``; an
    l-cycle over these relations has output size ``Θ((n/2)^(l/2))``-ish
    while the value ``0`` is the only heavy join value.
    """
    rng = random.Random(seed)
    half = max(1, n // 2)
    db = Database()
    for name in relation_names(num_relations):
        tuples = [(0, i) for i in range(1, half + 1)]
        tuples += [(i, 0) for i in range(1, half + 1)]
        db.add(
            Relation(
                name, 2, tuples, random_weights(len(tuples), rng, 0.0, weight_high)
            )
        )
    return db


def nprr_hard_instance(n: int, seed: int = 0) -> Database:
    """Database ``I1`` of Fig 16: NPRR needs Θ(n²) before the top 4-cycle.

    Four binary relations ``R1(A1,A2), R2(A2,A3), R3(A3,A4), R4(A4,A1)``;
    each holds ``n`` tuples incident to a single hub value ``0`` on one
    side and ``n`` tuples incident to hub ``0`` on the other side, giving
    ``Θ(n²)`` 4-cycles overall while every column has exactly one heavy
    value — so the cycle decomposition materialises only ``O(n)`` bag
    tuples and any-k returns the top cycle in linear time.
    """
    rng = random.Random(seed)
    db = Database()
    for name in relation_names(4):
        tuples = [(i, 0) for i in range(1, n + 1)]
        tuples += [(0, i) for i in range(1, n + 1)]
        db.add(
            Relation(name, 2, tuples, random_weights(len(tuples), rng, 0.0, 10_000.0))
        )
    return db


def rank_join_hard_instance(n: int) -> Database:
    """Database ``I2`` of Fig 19 (generalised from the paper's n=10).

    Under *max-plus* ranking the top result combines the **lightest**
    tuples of ``R`` and ``S`` with the **heaviest** tuple of ``T``;
    weight-descending Rank-Join therefore enumerates all ``(n-1)²``
    R-S combinations before it can emit the top answer, while any-k finds
    it after linear preprocessing.

    Relations: ``R(A,B)``, ``S(B,C)``, ``T(C)``.
    """
    big = 1000.0 * n
    r = Relation("R", 2)
    s = Relation("S", 2)
    t = Relation("T", 1)
    for i in range(1, n):
        r.add((i, 1), float(n + 1 - i))
        s.add((1, i), 10.0 * (n + 1 - i))
        t.add((i,), 1.0)
    r.add((0, 0), 1.0)
    s.add((0, 0), 10.0)
    t.add((0,), big)
    return Database([r, s, t])


def fdb_lex_instance(n: int) -> Database:
    """The Fig 18 instance: ``R = {(i,1)}``, ``S = {(1,j)}``.

    Ordering the 2-path result lexicographically by ``A -> C -> B``
    disagrees with any factorization order, forcing factorized
    representations into Ω(n²) size, while any-k enumerates after linear
    preprocessing.  Weights are the attribute values themselves so that
    lexicographic ranking is meaningful.
    """
    r = Relation("R", 2)
    s = Relation("S", 2)
    for i in range(1, n + 1):
        r.add((i, 1), float(i))
        s.add((1, i), float(i))
    return Database([r, s])


def cartesian_database(
    columns: Sequence[Sequence[float]],
    weight_scale: Sequence[float] | None = None,
) -> Database:
    """Unary relations forming a Cartesian product (Example 6 setting).

    ``columns[i]`` lists the values of relation ``R(i+1)``; the weight of
    each tuple equals its value (Example 6 sets weight = label) unless a
    per-relation ``weight_scale`` is given.
    """
    db = Database()
    for idx, values in enumerate(columns):
        scale = weight_scale[idx] if weight_scale else 1.0
        rel = Relation(f"R{idx + 1}", 1)
        for value in values:
            rel.add((value,), float(value) * scale)
        db.add(rel)
    return db


def example6_database() -> Database:
    """The paper's running example: R1={1,2,3}, R2={10,20,30}, R3={100..300}."""
    return cartesian_database(
        [
            [1, 2, 3],
            [10, 20, 30],
            [100, 200, 300],
        ]
    )


def recursive_worst_case(n: int, num_relations: int = 3) -> Database:
    """The Fig 6 / Proposition 13 instance: Recursive's tight worst case.

    A Cartesian product of ``num_relations`` unary relations where stage
    ``i`` (in serialization order) has weights ``{10^(l-i) * j}``; the
    first ``n`` results then each use a *different* tuple of the last
    stage, so every ``next`` call triggers a full chain of priority-queue
    operations on Θ(n)-sized queues.
    """
    columns = []
    for i in range(num_relations):
        scale = 10.0 ** (num_relations - 1 - i)
        columns.append([scale * j for j in range(1, n + 1)])
    return cartesian_database(columns)


def path_of_matchings_database(
    num_relations: int, n: int, seed: int = 0
) -> Database:
    """Binary relations forming perfect matchings: output size exactly n.

    Useful for tests that need a predictable, linear-size output: tuple
    ``(i, i)`` in every relation, so an l-path has exactly ``n`` results
    (one per chain of equal values).
    """
    rng = random.Random(seed)
    db = Database()
    for name in relation_names(num_relations):
        tuples = [(i, i) for i in range(n)]
        db.add(Relation(name, 2, tuples, random_weights(n, rng, 0.0, 100.0)))
    return db
