"""In-memory relations with per-tuple weights.

A :class:`Relation` is an ordered multiset of fixed-arity tuples, each
carrying a weight from the ranking domain (Definition 4 assigns result
weights by aggregating input-tuple weights).  Tuples are plain Python
tuples of hashable values; weights default to ``0.0`` (the tropical
``one``) when not given.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence


class Relation:
    """A named relation: fixed arity, list of tuples, parallel weight list.

    The tuple order is meaningful only as an identity (tuple index ``i``
    is the stable id used by witnesses); the relation itself is a
    multiset, so duplicate tuples are allowed and keep distinct weights.
    """

    __slots__ = ("name", "arity", "tuples", "weights", "_version")

    def __init__(
        self,
        name: str,
        arity: int,
        tuples: Sequence[tuple] | None = None,
        weights: Sequence[Any] | None = None,
    ):
        if arity < 1:
            raise ValueError("relation arity must be at least 1")
        self.name = name
        self.arity = arity
        self.tuples: list[tuple] = [tuple(t) for t in (tuples or [])]
        for t in self.tuples:
            if len(t) != arity:
                raise ValueError(
                    f"tuple {t!r} does not match arity {arity} of {name}"
                )
        if weights is None:
            self.weights: list[Any] = [0.0] * len(self.tuples)
        else:
            self.weights = list(weights)
        if len(self.weights) != len(self.tuples):
            raise ValueError(
                f"{name}: {len(self.tuples)} tuples but "
                f"{len(self.weights)} weights"
            )
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter: bumped by :meth:`add`.

        Together with ``len(self)`` this stamps the relation's content
        for cache invalidation (engine plan cache, index cache).
        """
        return self._version

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        name: str,
        pairs: Iterable[tuple],
        weights: Sequence[Any] | None = None,
    ) -> "Relation":
        """Build a binary relation (the common case for graph edges)."""
        tuples = [tuple(p) for p in pairs]
        return cls(name, 2, tuples, weights)

    def add(self, values: tuple, weight: Any = 0.0) -> None:
        """Append one tuple with its weight."""
        values = tuple(values)
        if len(values) != self.arity:
            raise ValueError(
                f"tuple {values!r} does not match arity {self.arity}"
            )
        self.tuples.append(values)
        self.weights.append(weight)
        self._version += 1

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def rows(self) -> Iterator[tuple[tuple, Any]]:
        """Iterate ``(tuple, weight)`` pairs."""
        return zip(self.tuples, self.weights)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, n={len(self)})"

    # -- relational operations -------------------------------------------------

    def rename(self, name: str) -> "Relation":
        """A shallow copy under a different name (for self-joins).

        The copy shares tuple/weight storage; mutate through exactly one
        of the two objects so version stamps stay meaningful.
        """
        copy = Relation(name, self.arity)
        copy.tuples = self.tuples
        copy.weights = self.weights
        copy._version = self._version
        return copy

    def filter(self, predicate: Callable[[tuple], bool], name: str | None = None) -> "Relation":
        """Selection: keep tuples satisfying ``predicate``."""
        out = Relation(name or self.name, self.arity)
        for values, weight in self.rows():
            if predicate(values):
                out.tuples.append(values)
                out.weights.append(weight)
        return out

    def project(
        self,
        columns: Sequence[int],
        name: str | None = None,
        distinct: bool = True,
        default_weight: Any = 0.0,
    ) -> "Relation":
        """Projection onto ``columns``.

        Projected relations are structural (e.g. the extra atoms a
        free-connex join tree introduces, Example 19), so by default the
        result is duplicate-free and all weights are ``default_weight`` —
        weights must not be double counted across atoms.
        """
        out = Relation(name or f"{self.name}_proj", len(columns))
        seen: set[tuple] = set()
        for values in self.tuples:
            projected = tuple(values[c] for c in columns)
            if distinct:
                if projected in seen:
                    continue
                seen.add(projected)
            out.tuples.append(projected)
            out.weights.append(default_weight)
        return out

    def column_values(self, column: int) -> set:
        """Distinct values appearing in ``column``."""
        return {values[column] for values in self.tuples}

    def sorted_by_weight(self, key: Callable[[Any], Any] | None = None) -> "Relation":
        """Copy with tuples ordered by weight (rank-join style sorted access)."""
        order = sorted(
            range(len(self.tuples)),
            key=(lambda i: key(self.weights[i])) if key else (lambda i: self.weights[i]),
        )
        out = Relation(self.name, self.arity)
        out.tuples = [self.tuples[i] for i in order]
        out.weights = [self.weights[i] for i in order]
        return out
