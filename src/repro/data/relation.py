"""Relations with per-tuple weights, over pluggable storage.

A :class:`Relation` is an ordered multiset of fixed-arity tuples, each
carrying a weight from the ranking domain (Definition 4 assigns result
weights by aggregating input-tuple weights).  Tuples are plain Python
tuples of hashable values; weights default to ``0.0`` (the tropical
``one``) when not given.

Tuples either live directly in Python lists (the default, and the
in-memory fast path the algorithms were written against) or in a
:class:`~repro.data.backend.StorageBackend` (e.g. a SQLite file), in
which case the relation is a *lazy view*: ``rows()`` streams from the
backend without materialising, while ``tuples``/``weights`` materialise
on first access and transparently refresh when the backend-side version
counter shows the table changed underneath them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.backend import StorageBackend


class Relation:
    """A named relation: fixed arity, list of tuples, parallel weight list.

    The tuple order is meaningful only as an identity (tuple index ``i``
    is the stable id used by witnesses); the relation itself is a
    multiset, so duplicate tuples are allowed and keep distinct weights.
    """

    __slots__ = (
        "name", "arity", "backend", "_table", "_tuples", "_weights",
        "_version", "_cardinality",
    )

    def __init__(
        self,
        name: str,
        arity: int,
        tuples: Sequence[tuple] | None = None,
        weights: Sequence[Any] | None = None,
    ):
        if arity < 1:
            raise ValueError("relation arity must be at least 1")
        self.name = name
        self.arity = arity
        #: Storage backend this relation is a view of (None = plain lists).
        self.backend: StorageBackend | None = None
        #: Backend-side table name (may differ from ``name`` after
        #: :meth:`rename`, which aliases the same stored table).
        self._table = name
        self._cardinality: tuple[int, int] | None = None
        self._tuples: list[tuple] | None = [tuple(t) for t in (tuples or [])]
        for t in self._tuples:
            if len(t) != arity:
                raise ValueError(
                    f"tuple {t!r} does not match arity {arity} of {name}"
                )
        if weights is None:
            self._weights: list[Any] | None = [0.0] * len(self._tuples)
        else:
            self._weights = list(weights)
        if len(self._weights) != len(self._tuples):
            raise ValueError(
                f"{name}: {len(self._tuples)} tuples but "
                f"{len(self._weights)} weights"
            )
        self._version = 0

    # -- backend plumbing ------------------------------------------------------

    @classmethod
    def from_backend(
        cls, backend: "StorageBackend", name: str, table: str | None = None
    ) -> "Relation":
        """A lazy view of the stored relation ``table`` (default: ``name``).

        Nothing is read up front beyond the arity; tuples materialise on
        first ``tuples``/``weights`` access, and ``rows()`` streams
        without materialising at all.
        """
        table = table or name
        relation = cls(name, backend.arity(table))
        relation.backend = backend
        relation._table = table
        relation._tuples = None
        relation._weights = None
        relation._version = backend.version(table)
        return relation

    @property
    def table(self) -> str:
        """The backend-side table this relation reads (== name unless aliased)."""
        return self._table

    @property
    def is_materialized(self) -> bool:
        """Whether the tuples currently live in local Python lists."""
        return self._tuples is not None

    def _refresh(self) -> None:
        """(Re)materialise from the backend when absent or stale."""
        current = self.backend.version(self._table)
        if self._tuples is not None and self._version == current:
            return
        self.arity = self.backend.arity(self._table)
        tuples: list[tuple] = []
        weights: list[Any] = []
        for values, weight in self.backend.iter_rows(self._table):
            tuples.append(values)
            weights.append(weight)
        self._tuples = tuples
        self._weights = weights
        self._version = current
        self._cardinality = None

    @property
    def tuples(self) -> list[tuple]:
        if self.backend is not None:
            self._refresh()
        return self._tuples

    @tuples.setter
    def tuples(self, value: list[tuple]) -> None:
        self._tuples = value
        self._cardinality = None

    @property
    def weights(self) -> list[Any]:
        if self.backend is not None:
            self._refresh()
        return self._weights

    @weights.setter
    def weights(self, value: list[Any]) -> None:
        self._weights = value

    @property
    def version(self) -> int:
        """Mutation counter: bumped by :meth:`add`.

        Together with ``len(self)`` this stamps the relation's content
        for cache invalidation (engine plan cache, index cache).  For a
        backend-stored relation the counter is the *backend's*, so
        mutations through any view of the same table — including
        ``rename``-aliased copies — are observed by every view.
        """
        if self.backend is not None:
            return self.backend.version(self._table)
        return self._version

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        name: str,
        pairs: Iterable[tuple],
        weights: Sequence[Any] | None = None,
    ) -> "Relation":
        """Build a binary relation (the common case for graph edges)."""
        tuples = [tuple(p) for p in pairs]
        return cls(name, 2, tuples, weights)

    def add(self, values: tuple, weight: Any = 0.0) -> None:
        """Append one tuple with its weight (write-through when backed)."""
        values = tuple(values)
        if len(values) != self.arity:
            raise ValueError(
                f"tuple {values!r} does not match arity {self.arity}"
            )
        if self.backend is not None:
            before = self.backend.version(self._table)
            self.backend.append(self._table, values, weight)
            if self._tuples is not None:
                if self._version == before:
                    # Local copy was current: extend it in place and
                    # stamp it valid for the new backend version.
                    self._tuples.append(values)
                    self._weights.append(weight)
                    self._version = self.backend.version(self._table)
                else:
                    # An aliased view mutated the table since we
                    # materialised; drop the stale copy instead of
                    # appending to it.
                    self._tuples = None
                    self._weights = None
            self._cardinality = None
            return
        self._tuples.append(values)
        self._weights.append(weight)
        self._version += 1

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        if self.backend is None:
            return len(self._tuples)
        if self._tuples is not None:
            # Materialised view: refresh if another view of the same
            # table mutated it (no-op when the version still matches).
            self._refresh()
            return len(self._tuples)
        # Unmaterialised: COUNT(*) on the backend, cached per version.
        current = self.backend.version(self._table)
        if self._cardinality is None or self._cardinality[0] != current:
            self._cardinality = (
                current, self.backend.cardinality(self._table)
            )
        return self._cardinality[1]

    def __iter__(self) -> Iterator[tuple]:
        if self._tuples is None:
            return (values for values, _weight in self.rows())
        return iter(self.tuples)

    def rows(self) -> Iterator[tuple[tuple, Any]]:
        """Iterate ``(tuple, weight)`` pairs.

        For an unmaterialised backend relation this streams straight
        from storage — the single pass the T-DP bottom-up build needs —
        without pulling the relation into memory.
        """
        if self._tuples is None:
            return self.backend.iter_rows(self._table)
        if self.backend is not None:
            self._refresh()
        return zip(self._tuples, self._weights)

    def tuple_at(self, position: int) -> tuple:
        """The tuple with id ``position`` (point lookup when backed)."""
        if self.backend is not None:
            if self._tuples is None:
                return self.backend.fetch_tuple(self._table, position)[0]
            self._refresh()
        return self._tuples[position]

    def __repr__(self) -> str:
        where = "" if self.backend is None else f", backend={self.backend!r}"
        try:
            n: object = len(self)
        except Exception:  # e.g. the owning backend was closed
            n = "?"
        return f"Relation({self.name!r}, arity={self.arity}, n={n}{where})"

    # -- relational operations -------------------------------------------------

    def rename(self, name: str) -> "Relation":
        """A shallow copy under a different name (for self-joins).

        The copy shares storage: the tuple/weight lists in memory, or
        the backend table for a backend-stored relation (where version
        counters keep every alias coherent — see :attr:`version`).
        """
        copy = Relation(name, self.arity)
        copy.backend = self.backend
        copy._table = self._table
        copy._tuples = self._tuples
        copy._weights = self._weights
        copy._version = self._version
        return copy

    def filter(self, predicate: Callable[[tuple], bool], name: str | None = None) -> "Relation":
        """Selection: keep tuples satisfying ``predicate`` (materialised)."""
        out = Relation(name or self.name, self.arity)
        for values, weight in self.rows():
            if predicate(values):
                out._tuples.append(values)
                out._weights.append(weight)
        return out

    def project(
        self,
        columns: Sequence[int],
        name: str | None = None,
        distinct: bool = True,
        default_weight: Any = 0.0,
    ) -> "Relation":
        """Projection onto ``columns``.

        Projected relations are structural (e.g. the extra atoms a
        free-connex join tree introduces, Example 19), so by default the
        result is duplicate-free and all weights are ``default_weight`` —
        weights must not be double counted across atoms.
        """
        out = Relation(name or f"{self.name}_proj", len(columns))
        seen: set[tuple] = set()
        for values in self:
            projected = tuple(values[c] for c in columns)
            if distinct:
                if projected in seen:
                    continue
                seen.add(projected)
            out._tuples.append(projected)
            out._weights.append(default_weight)
        return out

    def column_values(self, column: int) -> set:
        """Distinct values appearing in ``column``."""
        return {values[column] for values in self}

    def sorted_by_weight(self, key: Callable[[Any], Any] | None = None) -> "Relation":
        """Copy with tuples ordered by weight (rank-join style sorted access).

        A backend-stored relation delegates the natural-order sort to
        the backend (``ORDER BY w`` in SQLite) instead of sorting
        client-side; a custom ``key`` always sorts locally.
        """
        out = Relation(self.name, self.arity)
        if key is None and self.backend is not None and self._tuples is None:
            for values, weight in self.backend.sorted_rows(self._table):
                out._tuples.append(values)
                out._weights.append(weight)
            return out
        tuples = self.tuples
        weights = self.weights
        order = sorted(
            range(len(tuples)),
            key=(lambda i: key(weights[i])) if key else (lambda i: weights[i]),
        )
        out._tuples = [tuples[i] for i in order]
        out._weights = [weights[i] for i in order]
        return out
