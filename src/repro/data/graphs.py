"""Graph-dataset substitutes for the paper's real networks (Fig 9).

The paper evaluates on Bitcoin OTC (a signed trust network with provided
edge weights) and two Twitter follower samples whose edge weights are the
sum of the endpoints' PageRanks.  Neither dataset is available offline,
so this module generates *synthetic stand-ins with matched structure*:

* directed graphs grown by preferential attachment, reproducing the
  heavy-tailed in-degree skew (hub users) that drives join fan-out;
* Bitcoin-like integer trust weights in [-10, 10];
* Twitter-like weights computed by an own power-iteration PageRank,
  edge weight = PR(u) + PR(v), exactly as the paper constructs them.

The experiments only interact with the data through joins on node ids
and through weight comparisons, so matching size, degree skew, and the
weight construction preserves the behaviour being measured (see
DESIGN.md, substitution table).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.data.relation import Relation


def preferential_attachment_digraph(
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    attachment_bias: float = 0.75,
) -> list[tuple[int, int]]:
    """Directed graph with heavy-tailed in-degrees.

    Nodes are added one at a time; each new edge points from a uniformly
    random source to a target chosen, with probability
    ``attachment_bias``, proportionally to current in-degree (otherwise
    uniformly).  Self-loops are skipped and parallel duplicates are
    dropped, mirroring simple follower/trust graphs.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    # Seed with a small ring so the degree urn is non-empty.
    targets_urn: list[int] = []
    for v in range(min(8, num_nodes)):
        u = (v + 1) % min(8, num_nodes)
        if (v, u) not in edges and v != u:
            edges.add((v, u))
            targets_urn.append(u)
    attempts = 0
    max_attempts = num_edges * 20
    while len(edges) < num_edges and attempts < max_attempts:
        attempts += 1
        src = rng.randrange(num_nodes)
        if targets_urn and rng.random() < attachment_bias:
            dst = targets_urn[rng.randrange(len(targets_urn))]
        else:
            dst = rng.randrange(num_nodes)
        if src == dst or (src, dst) in edges:
            continue
        edges.add((src, dst))
        targets_urn.append(dst)
    return sorted(edges)


def pagerank(
    num_nodes: int,
    edges: Sequence[tuple[int, int]],
    damping: float = 0.85,
    iterations: int = 30,
) -> list[float]:
    """Power-iteration PageRank (the paper uses PageRank edge weights)."""
    out_degree = [0] * num_nodes
    for src, _dst in edges:
        out_degree[src] += 1
    rank = [1.0 / num_nodes] * num_nodes
    base = (1.0 - damping) / num_nodes
    for _ in range(iterations):
        contribution = [0.0] * num_nodes
        for src, dst in edges:
            contribution[dst] += rank[src] / out_degree[src]
        dangling = sum(
            rank[v] for v in range(num_nodes) if out_degree[v] == 0
        )
        dangling_share = damping * dangling / num_nodes
        rank = [
            base + dangling_share + damping * contribution[v]
            for v in range(num_nodes)
        ]
    return rank


def edge_relation(
    name: str,
    edges: Sequence[tuple[int, int]],
    weights: Sequence[float],
) -> Relation:
    """Package an edge list as a binary relation (source, target)."""
    return Relation(name, 2, list(edges), list(weights))


def bitcoin_otc_like(
    num_nodes: int = 5_881,
    num_edges: int = 35_592,
    seed: int = 7,
) -> Relation:
    """Synthetic stand-in for the Bitcoin OTC trust network.

    Matches the published node/edge counts by default and assigns integer
    trust ratings in ``[-10, 10]`` (never 0), skewed towards small
    positive values like the real data.  Pass smaller sizes for the
    scaled-down benchmark variants.
    """
    rng = random.Random(seed)
    edges = preferential_attachment_digraph(num_nodes, num_edges, seed=seed)
    weights = []
    for _ in edges:
        if rng.random() < 0.85:
            rating = rng.randint(1, 10)
        else:
            rating = -rng.randint(1, 10)
        weights.append(float(rating))
    return edge_relation("E", edges, weights)


def twitter_like(
    num_nodes: int = 8_000,
    num_edges: int = 87_687,
    seed: int = 11,
) -> Relation:
    """Synthetic stand-in for the Twitter follower samples.

    Edge weight = PageRank(src) + PageRank(dst), scaled by the node count
    so weights are O(1), exactly mirroring the paper's construction.
    Defaults match TwitterS; pass (80_000, 2_250_298) for TwitterL or
    smaller values for bench-scale data.
    """
    edges = preferential_attachment_digraph(num_nodes, num_edges, seed=seed)
    ranks = pagerank(num_nodes, edges)
    scale = float(num_nodes)
    weights = [scale * (ranks[u] + ranks[v]) for u, v in edges]
    return edge_relation("E", edges, weights)


def graph_statistics(relation: Relation) -> dict[str, float]:
    """Node/edge/degree statistics in the shape of the paper's Fig 9 table."""
    nodes: set = set()
    out_degree: dict = {}
    in_degree: dict = {}
    for src, dst in relation.tuples:
        nodes.add(src)
        nodes.add(dst)
        out_degree[src] = out_degree.get(src, 0) + 1
        in_degree[dst] = in_degree.get(dst, 0) + 1
    num_edges = len(relation)
    degrees = [
        out_degree.get(v, 0) + in_degree.get(v, 0) for v in nodes
    ]
    return {
        "nodes": len(nodes),
        "edges": num_edges,
        "max_degree": max(degrees, default=0),
        "avg_degree": (sum(degrees) / len(nodes)) if nodes else 0.0,
    }
