"""Direct construction of (T-)DP problems — the paper's abstract view.

Sections 3–5 define ranked enumeration over multi-stage DP problems
*independently of queries*: stages hold states, decisions connect
adjacent stages, and solutions are one-state-per-stage trees.  This
module exposes that interface directly, so the library doubles as a
k-shortest-path / k-best-solutions toolkit over serial and tree-shaped
dynamic programs (the problems the any-k framework unifies: k-shortest
paths, k-best assignments, graph-pattern scoring, ...).

Example — Fig 1's three-stage problem::

    dp = DPProblem()
    s1 = dp.add_stage()           # serial: each stage's parent is the
    s2 = dp.add_stage()           # previous one by default
    s3 = dp.add_stage()
    a = dp.add_state(s1, weight=1.0, label="1")
    b = dp.add_state(s2, weight=10.0, label="10")
    ...
    dp.add_decision(a, b)
    tdp = dp.compile()
    for result in make_enumerator(tdp, "take2"):
        print(result.weight, [dp.label(s, i) for s, i in enumerate(result.states)])

Decision weights live on the *target* state (as in the query encoding);
a classic edge-weighted formulation converts by pushing each edge's
weight onto its head node, which is exactly what the paper's Fig 1 does.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.dp.graph import ChoiceSet, TDP
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import TROPICAL, SelectiveDioid


class DPProblem:
    """Builder for serial or tree-shaped DP problems.

    * :meth:`add_stage` — append a stage; ``parent`` defaults to the
      previously added stage (serial DP); pass an explicit stage id for
      trees or ``None`` for a new root (forests/Cartesian structure).
    * :meth:`add_state` — add a state with its weight (and an optional
      label used in reconstructed solutions).
    * :meth:`add_decision` — allow ``child`` to follow ``parent``.
    * :meth:`compile` — run the bottom-up phase and return a
      :class:`~repro.dp.graph.TDP` ready for any any-k enumerator.
    """

    def __init__(self, dioid: SelectiveDioid = TROPICAL):
        self.dioid = dioid
        self._parents: list[int] = []
        self._weights: list[list[Any]] = []
        self._labels: list[list[Hashable]] = []
        #: decisions[child_stage]: set of (parent_state, child_state)
        self._decisions: list[set[tuple[int, int]]] = []

    # -- construction ------------------------------------------------------------

    def add_stage(self, parent: int | str | None = "previous") -> int:
        """Append a stage and return its id.

        ``parent="previous"`` (default) chains stages serially;
        ``parent=None`` starts a new root; an integer attaches the stage
        below an existing one (tree-based DP).
        """
        if parent == "previous":
            parent_id = len(self._parents) - 1 if self._parents else None
        else:
            parent_id = parent
        if parent_id is not None:
            if not 0 <= parent_id < len(self._parents):
                raise ValueError(f"unknown parent stage {parent_id}")
        self._parents.append(-1 if parent_id is None else parent_id)
        self._weights.append([])
        self._labels.append([])
        self._decisions.append(set())
        return len(self._parents) - 1

    def add_state(
        self, stage: int, weight: Any, label: Hashable | None = None
    ) -> tuple[int, int]:
        """Add a state; returns its ``(stage, index)`` handle."""
        self._check_stage(stage)
        self._weights[stage].append(weight)
        self._labels[stage].append(
            label if label is not None else len(self._weights[stage]) - 1
        )
        return (stage, len(self._weights[stage]) - 1)

    def add_decision(
        self, parent: tuple[int, int], child: tuple[int, int]
    ) -> None:
        """Allow solution step ``parent -> child`` (adjacent stages only)."""
        parent_stage, parent_state = parent
        child_stage, child_state = child
        self._check_stage(parent_stage)
        self._check_stage(child_stage)
        if self._parents[child_stage] != parent_stage:
            raise ValueError(
                f"stage {child_stage} is not a child of stage {parent_stage}"
            )
        self._check_state(parent)
        self._check_state(child)
        self._decisions[child_stage].add((parent_state, child_state))

    def _check_stage(self, stage: int) -> None:
        if not 0 <= stage < len(self._parents):
            raise ValueError(f"unknown stage {stage}")

    def _check_state(self, handle: tuple[int, int]) -> None:
        stage, state = handle
        if not 0 <= state < len(self._weights[stage]):
            raise ValueError(f"unknown state {handle}")

    def label(self, stage: int, alive_state: int, tdp: TDP) -> Hashable:
        """Label of an alive state in a compiled TDP's numbering."""
        return tdp.tuples[stage][alive_state][0]

    # -- compilation ---------------------------------------------------------------

    def compile(self) -> TDP:
        """Bottom-up phase (Eq. 7) over the explicit decision sets.

        States with an empty choice set in some child branch are pruned;
        per-parent private connectors realise arbitrary decision sets
        (no equi-join structure is assumed).
        """
        num_stages = len(self._parents)
        if num_stages == 0:
            raise ValueError("the DP problem has no stages")
        dioid = self.dioid
        times = dioid.times
        key_of = dioid.key
        atoms = [Atom(f"Stage{i}", (f"s{i}",)) for i in range(num_stages)]
        query = ConjunctiveQuery(head=None, atoms=atoms, name="DP")
        tdp = TDP(
            dioid,
            atom_of_stage=list(range(num_stages)),
            parent_stage=list(self._parents),
            query=query,
        )
        next_uid = 0
        # alive_index[stage]: original state -> alive index (or absent).
        alive_index: list[dict[int, int]] = [dict() for _ in range(num_stages)]
        # Serialised order = insertion order need not be parents-first in
        # general; require it (add_stage can only attach to existing
        # stages, so insertion order *is* parents-first).
        for stage in reversed(range(num_stages)):
            children = tdp.children_stages[stage]
            weights = self._weights[stage]
            labels = self._labels[stage]
            for state, weight in enumerate(weights):
                conns: list[ChoiceSet] = []
                dead = False
                for child in children:
                    entries = []
                    child_alive = alive_index[child]
                    for p_state, c_state in self._decisions[child]:
                        if p_state != state:
                            continue
                        alive = child_alive.get(c_state)
                        if alive is None:
                            continue
                        value = times(
                            tdp.values[child][alive], tdp.pi1[child][alive]
                        )
                        entries.append((key_of(value), alive, value))
                    if not entries:
                        dead = True
                        break
                    conns.append(ChoiceSet(next_uid, child, entries))
                    next_uid += 1
                if dead:
                    continue
                pi = dioid.one
                for conn in conns:
                    pi = times(pi, conn.min_value)
                alive_index[stage][state] = len(tdp.tuples[stage])
                tdp.tuples[stage].append((labels[state],))
                tdp.tuple_ids[stage].append(state)
                tdp.values[stage].append(weight)
                tdp.pi1[stage].append(pi)
                tdp.child_conns[stage].append(tuple(conns))

        best = dioid.one
        complete = True
        for root in tdp.root_stages:
            entries = [
                (
                    key_of(times(tdp.values[root][s], tdp.pi1[root][s])),
                    s,
                    times(tdp.values[root][s], tdp.pi1[root][s]),
                )
                for s in range(len(tdp.tuples[root]))
            ]
            if not entries:
                complete = False
                break
            conn = ChoiceSet(next_uid, root, entries)
            next_uid += 1
            tdp.root_conn[root] = conn
            best = times(best, conn.min_value)
        tdp.best_weight = best if complete else dioid.zero
        if not complete:
            tdp.root_conn = {}
        tdp.num_connectors = next_uid
        return tdp


def k_lightest_paths(
    stage_nodes: list[list[tuple[Hashable, Any]]],
    edges: list[set[tuple[int, int]]],
    k: int | None = None,
    algorithm: str = "take2",
    dioid: SelectiveDioid = TROPICAL,
) -> list[tuple[Any, list[Hashable]]]:
    """k-lightest source-to-sink paths in a multi-stage DAG.

    ``stage_nodes[i]`` lists stage ``i``'s nodes as ``(label, weight)``;
    ``edges[i]`` connects stage ``i`` to ``i+1`` by node indexes.  Node
    weights play the role of the paper's edge-into-node weights (Fig 1).
    Returns ``(path_weight, [labels])`` in ranked order.
    """
    from repro.anyk.base import make_enumerator

    problem = DPProblem(dioid=dioid)
    handles: list[list[tuple[int, int]]] = []
    for i, nodes in enumerate(stage_nodes):
        stage = problem.add_stage("previous" if i else None)
        handles.append(
            [problem.add_state(stage, weight, label) for label, weight in nodes]
        )
    for i, stage_edges in enumerate(edges):
        for src, dst in stage_edges:
            problem.add_decision(handles[i][src], handles[i + 1][dst])
    tdp = problem.compile()
    results = []
    for result in make_enumerator(tdp, algorithm):
        labels = [
            tdp.tuples[stage][state][0]
            for stage, state in enumerate(result.states)
        ]
        results.append((result.weight, labels))
        if k is not None and len(results) >= k:
            break
    return results
