"""Theta-joins: ranked enumeration beyond equi-joins (Section 2.1).

The paper notes the approach "can be applied to any join query,
including those with theta-join conditions" — only the optimality
guarantees are equi-join specific, because an arbitrary condition
forfeits the Fig 3 connector sharing and reverts to the O(n²)-edge
graph of the generic DP construction.

:func:`build_theta_path` materialises exactly that: a serial multi-stage
DP over a chain of relations where consecutive stages are connected by
arbitrary boolean predicates.  Each parent state gets a *private* choice
set of matching children; everything downstream (Take2/Lazy/Eager/All,
Recursive, Batch) runs unchanged on the resulting
:class:`~repro.dp.graph.TDP`.
"""

from __future__ import annotations

import operator
from typing import Callable, Sequence

from repro.data.relation import Relation
from repro.dp.graph import ChoiceSet, TDP
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import TROPICAL, SelectiveDioid

#: Join predicate between consecutive stages: (left_tuple, right_tuple) -> bool.
ThetaPredicate = Callable[[tuple, tuple], bool]


def band_predicate(
    left_column: int, right_column: int, delta: float
) -> ThetaPredicate:
    """Band join: ``|left[i] - right[j]| <= delta``."""

    def predicate(left: tuple, right: tuple) -> bool:
        return abs(left[left_column] - right[right_column]) <= delta

    return predicate


_OPERATORS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
}


def comparison_predicate(
    left_column: int, op: str, right_column: int
) -> ThetaPredicate:
    """Inequality join: ``left[i] <op> right[j]``."""
    try:
        compare = _OPERATORS[op]
    except KeyError:
        raise ValueError(f"unknown comparison operator {op!r}") from None

    def predicate(left: tuple, right: tuple) -> bool:
        return compare(left[left_column], right[right_column])

    return predicate


def build_theta_path(
    relations: Sequence[Relation],
    predicates: Sequence[ThetaPredicate],
    dioid: SelectiveDioid = TROPICAL,
    lift=None,
) -> TDP:
    """T-DP for ``R1 JOIN_theta1 R2 JOIN_theta2 ... Rl`` (a serial chain).

    ``predicates[i]`` connects ``relations[i]`` to ``relations[i+1]``.
    Construction is O(sum of adjacent-pair products) — the generic DP
    bound; states without any admissible continuation are pruned as
    usual, so enumeration stays output-linear afterwards.
    """
    if len(predicates) != len(relations) - 1:
        raise ValueError("need exactly one predicate per adjacent pair")
    num_stages = len(relations)
    # Synthetic query context: unique variables per stage and column so
    # assignments and witnesses work (atoms may share relation names —
    # stages are identified by index, not name).
    atoms = [
        Atom(
            relation.name,
            tuple(f"s{i}_c{c}" for c in range(relation.arity)),
        )
        for i, relation in enumerate(relations)
    ]
    query = ConjunctiveQuery(head=None, atoms=atoms, name="ThetaChain")
    tdp = TDP(
        dioid,
        atom_of_stage=list(range(num_stages)),
        parent_stage=[-1] + list(range(num_stages - 1)),
        query=query,
    )
    times = dioid.times
    key_of = dioid.key
    next_uid = 0

    # Bottom-up over the chain.
    for stage in reversed(range(num_stages)):
        relation = relations[stage]
        stage_tuples = tdp.tuples[stage]
        stage_ids = tdp.tuple_ids[stage]
        stage_values = tdp.values[stage]
        stage_pi1 = tdp.pi1[stage]
        stage_conns = tdp.child_conns[stage]
        if stage == num_stages - 1:
            for tuple_id, (values, weight) in enumerate(relation.rows()):
                stage_tuples.append(values)
                stage_ids.append(tuple_id)
                stage_values.append(
                    lift(atoms[stage], values, weight) if lift else weight
                )
                stage_pi1.append(dioid.one)
                stage_conns.append(())
            continue
        predicate = predicates[stage]
        child_tuples = tdp.tuples[stage + 1]
        child_values = tdp.values[stage + 1]
        child_pi1 = tdp.pi1[stage + 1]
        # Pre-compute child entry payloads once.
        child_entries = [
            (key_of(times(child_values[s], child_pi1[s])), s,
             times(child_values[s], child_pi1[s]))
            for s in range(len(child_tuples))
        ]
        for tuple_id, (values, weight) in enumerate(relation.rows()):
            entries = [
                entry
                for entry, child in zip(child_entries, child_tuples)
                if predicate(values, child)
            ]
            if not entries:
                continue
            conn = ChoiceSet(next_uid, stage + 1, entries)
            next_uid += 1
            stage_tuples.append(values)
            stage_ids.append(tuple_id)
            stage_values.append(
                lift(atoms[stage], values, weight) if lift else weight
            )
            stage_pi1.append(conn.min_value)
            stage_conns.append((conn,))

    if tdp.tuples[0]:
        entries = [
            (
                key_of(times(tdp.values[0][s], tdp.pi1[0][s])),
                s,
                times(tdp.values[0][s], tdp.pi1[0][s]),
            )
            for s in range(len(tdp.tuples[0]))
        ]
        root = ChoiceSet(next_uid, 0, entries)
        next_uid += 1
        tdp.root_conn[0] = root
        tdp.best_weight = root.min_value
    else:
        tdp.best_weight = dioid.zero
    tdp.num_connectors = next_uid
    return tdp
