"""Zero-copy compiled-core buffers: shared memory, mmap persistence.

A :class:`~repro.dp.flat.CompiledTDP` is, deliberately, a bundle of flat
key-space arrays (see that module's docstring).  This module gives those
arrays a zero-copy lifecycle:

* **Section buffers** — :class:`SectionWriter` packs named typed arrays
  into one contiguous, 8-byte-aligned buffer with a ``{name: (offset,
  count, typecode)}`` manifest; :class:`SectionView` hands back
  ``memoryview.cast`` views over *any* buffer (bytes, ``mmap``, a
  ``SharedMemory`` buffer) without copying.  Indexing a cast view yields
  native Python ``float``/``int`` — never a wrapper type — which is what
  keeps warm-started enumeration bit-identical to a cold rebuild.
* **Shared-memory pools** (:class:`ShmPool`) — the process-pool shard
  build packs phase A's lower-stage pools into one
  ``multiprocessing.shared_memory`` segment; workers attach by *name*
  (the only thing that crosses the pickle boundary) and alias the float
  pools directly.  Cleanup is refcounted through the owning build with a
  ``weakref.finalize`` backstop, and attached workers unregister from
  the ``resource_tracker`` so nothing is double-freed or warned about.
* **mmap persistence** (:class:`CoreFile` / :class:`CoreCache`) — the
  same sections serialize to a ``<db>.core`` file next to the SQLite
  database.  Entries are keyed by the plan fingerprint, the dioid's
  registry name, and the shard spec, and stamped with the
  ``Database.version`` they were built from; a cold process warm-starts
  by ``mmap``-ing the file and skips build+compile entirely, while a
  version mismatch reads as a miss and the rebuild rewrites the entry
  (atomic temp-file + ``os.replace``).

Only dioids that are both ``key_is_value`` and registered in
``NAMED_DIOIDS`` (tropical min-plus, max-plus) are persistable: the
arrays are meaningful only in an additive float key space, and the dioid
must travel by registry name — ``id()`` and pickled instances are not
stable across processes.

This module sits in the ``dp`` layer and must not import
``repro.parallel`` (the parallel builder imports *us*); the mapped
sharded cores therefore reconstruct the fragment aliasing structurally
(shared uid-indexed lists, per-fragment anchor arrays) without
referencing the builder's classes.
"""

from __future__ import annotations

import gc
import io
import mmap
import os
import pickle
import struct
import threading
import weakref
from array import array
from multiprocessing import shared_memory
from typing import Sequence

from repro.dp.flat import CompiledTDP
from repro.dp.graph import TDP
from repro.obs.metrics import Counter
from repro.ranking.dioid import NAMED_DIOIDS, SelectiveDioid
from repro.util import faults

#: Lazily built shared retrier for transient ``.core`` read errors.
#: Imported on first use: ``repro.serve`` pulls in the engine, which
#: pulls in this module — a cycle at import time, not at call time.
_CORE_RETRIER = None


def _core_retrier():
    global _CORE_RETRIER
    if _CORE_RETRIER is None:
        from repro.serve import resilience

        _CORE_RETRIER = resilience.Retrier(
            attempts=3,
            base_delay=0.005,
            max_delay=0.05,
            # A missing file is a plain cache miss, not a transient
            # fault — retrying it would tax every cold start.
            retryable=lambda exc: isinstance(exc, OSError)
            and not isinstance(exc, FileNotFoundError),
            label="core_read",
        )
    return _CORE_RETRIER

#: ``<db>.core`` container magic + format version.  Bump the version on
#: any layout change: readers treat unknown versions as a cache miss.
CORE_MAGIC = b"RPROCORE"
CORE_FORMAT = 1

_ALIGN = 8
_HEADER = struct.Struct("<8sII")  # magic, format, TOC length


def _pad(size: int) -> int:
    return (-size) % _ALIGN


# -- section buffers -----------------------------------------------------------


class SectionWriter:
    """Packs named typed arrays into one aligned buffer + manifest."""

    def __init__(self):
        self._chunks: list[bytes] = []
        self._size = 0
        self.manifest: dict[str, tuple[int, int, str]] = {}

    def add(self, name: str, typecode: str, values) -> None:
        data = values if isinstance(values, array) else array(typecode, values)
        if data.typecode != typecode:
            raise ValueError(f"section {name}: {data.typecode} != {typecode}")
        pad = _pad(self._size)
        if pad:
            self._chunks.append(b"\x00" * pad)
            self._size += pad
        self.manifest[name] = (self._size, len(data), typecode)
        raw = data.tobytes()
        self._chunks.append(raw)
        self._size += len(raw)

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class SectionView:
    """Zero-copy typed views over a section buffer (any buffer protocol)."""

    def __init__(self, buffer, manifest: dict, base: int = 0):
        self._mv = memoryview(buffer)
        self._manifest = manifest
        self._base = base

    def view(self, name: str) -> memoryview:
        offset, count, typecode = self._manifest[name]
        itemsize = array(typecode).itemsize
        start = self._base + offset
        return self._mv[start:start + count * itemsize].cast(typecode)


# -- persistence keys ----------------------------------------------------------


def dioid_core_name(dioid: SelectiveDioid) -> str | None:
    """The registry name a persistable dioid travels under, or ``None``."""
    if not getattr(dioid, "key_is_value", False):
        return None
    for name, registered in NAMED_DIOIDS.items():
        if registered is dioid:
            return name
    return None


def core_key(query, dioid: SelectiveDioid, shard_key: tuple | None) -> str | None:
    """A stable cache key for one (query, dioid, shard spec) plan.

    ``None`` when the plan is not persistable (unregistered or
    non-``key_is_value`` dioid).  The query contributes its canonical
    fingerprint (PYTHONHASHSEED-independent), the shard spec its
    ``cache_key()`` tuple of primitives.
    """
    name = dioid_core_name(dioid)
    if name is None:
        return None
    return repr((query.fingerprint(), name, shard_key))


# -- mapped shells and cores ---------------------------------------------------


class LazyRows:
    """A per-stage row sequence materialised per index from the backend.

    Stands in for the builder's eagerly fetched row lists on warm-start
    and process-assembled fragments: result construction touches only
    the states a run actually emits, so rows are point-fetched (and
    memoized) instead of bulk-loaded.  Rows are the relation's bare
    value tuples — exactly what witness/assignment need.
    """

    __slots__ = ("relation", "ids", "_cache")

    def __init__(self, relation, ids: Sequence[int]):
        self.relation = relation
        self.ids = ids
        self._cache: dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self.ids)

    def __getitem__(self, index: int) -> tuple:
        row = self._cache.get(index)
        if row is None:
            row = self._cache[index] = self.relation.tuple_at(self.ids[index])
        return row


class _NegSeq:
    """Lazily negated read-only view of a key sequence (max-plus values)."""

    __slots__ = ("keys",)

    def __init__(self, keys):
        self.keys = keys

    def __len__(self) -> int:
        return len(self.keys)

    def __getitem__(self, index: int):
        return -self.keys[index]


def _value_sequences(dioid: SelectiveDioid, key_stages: list) -> list:
    """Per-stage dioid-value views over key-space sequences."""
    key = dioid.key
    if all(key(p) == p for p in (1.25, -3.5, 0.0)):
        return list(key_stages)  # key is the value: alias
    if all(key(p) == -p for p in (1.25, -3.5, 0.0)):
        return [_NegSeq(keys) for keys in key_stages]
    vfk = dioid.value_from_key
    return [[vfk(k) for k in keys] for keys in key_stages]


class MappedShell(TDP):
    """A connector-free T-DP shell over mapped (or lazily fetched) data.

    The mapped analogue of the parallel builder's ``FragmentTDP``: it
    carries exactly what result assembly reads — per-stage rows, global
    tuple ids, the query — and no ``ChoiceSet`` graph.  ``_compiled``
    points at the :class:`MappedCompiled`, so ``make_enumerator(shell)``
    transparently runs the flat core.
    """

    def __init__(self, dioid, atom_of_stage, parent_stage, query, join_tree):
        super().__init__(
            dioid, atom_of_stage, parent_stage, query=query, join_tree=join_tree
        )
        self._empty = True

    def is_empty(self) -> bool:
        return self._empty


class MappedCompiled(CompiledTDP):
    """A compiled core whose pools are views over a mapped buffer.

    Assembled directly into the slots (never via ``__init__``); the CSR
    pool arrays are ``memoryview.cast`` views, so nothing is copied
    until an enumerator actually touches a connector —
    :meth:`pairs` then materialises that connector's pair list exactly
    like the eager base class would have.
    """

    __slots__ = ()

    @classmethod
    def assemble(cls, **fields) -> "MappedCompiled":
        self = cls.__new__(cls)
        for name, value in fields.items():
            setattr(self, name, value)
        return self

    def pairs(self, uid: int) -> list[tuple[float, int]]:
        entries = self._pairs[uid]
        if entries is None:
            offsets = self.conn_offsets
            lo, hi = offsets[uid], offsets[uid + 1]
            entries = self._pairs[uid] = list(
                zip(self.entry_key[lo:hi], self.entry_state[lo:hi])
            )
        return entries


# -- export: compiled core -> sections + meta ----------------------------------


def _require_persistable(dioid: SelectiveDioid) -> str:
    name = dioid_core_name(dioid)
    if name is None:
        raise ValueError(f"{dioid!r} is not core-persistable")
    return name


def export_compiled(compiled: CompiledTDP) -> tuple[dict, bytes]:
    """Serialize an unsharded compiled core to ``(meta, sections)``."""
    name = _require_persistable(compiled.dioid)
    tdp = compiled.tdp
    writer = SectionWriter()
    writer.add("entry_key", "d", compiled.entry_key)
    writer.add("entry_state", "q", compiled.entry_state)
    writer.add("conn_offsets", "q", compiled.conn_offsets)
    writer.add("conn_stage", "q", compiled.conn_stage)
    for stage in range(compiled.num_stages):
        writer.add(f"vk{stage}", "d", compiled.values_key[stage])
        writer.add(f"pk{stage}", "d", compiled.pi1_key[stage])
        writer.add(f"cu{stage}", "q", compiled.child_uids[stage])
        writer.add(f"ids{stage}", "q", tdp.tuple_ids[stage])
    meta = {
        "kind": "tdp",
        "dioid": name,
        "num_stages": compiled.num_stages,
        "num_connectors": compiled.num_connectors,
        "order": list(tdp.atom_of_stage),
        "parent_stage": list(compiled.parent_stage),
        "root_uid": dict(compiled.root_uid),
        "best_key": compiled.best_key,
        "empty": compiled.empty,
        "manifest": writer.manifest,
    }
    return meta, writer.getvalue()


def export_fragments(
    fragment_cores: Sequence[CompiledTDP], anchor_stage: int
) -> tuple[dict, bytes]:
    """Serialize a sharded build's fragment cores to ``(meta, sections)``.

    The fragments of one shard plan share a common uid space — shared
    connectors first, then one root connector per fragment — and alias
    one uid-indexed ``_pairs`` list, so fragment 0's view of that list
    already contains every fragment's root entries.  The non-anchor
    stage arrays are likewise shared; only the anchor stage differs per
    fragment.
    """
    first = fragment_cores[0]
    name = _require_persistable(first.dioid)
    num_stages = first.num_stages
    uid_space = first.num_connectors

    writer = SectionWriter()
    # One CSR pool across the whole shared uid space.
    entry_key = array("d")
    entry_state = array("q")
    offsets = array("q", [0])
    conn_stage = array("q")
    total = 0
    pairs = first._pairs
    for uid in range(uid_space):
        entries = pairs[uid] or ()
        for key, state in entries:
            entry_key.append(key)
            entry_state.append(state)
        total += len(entries)
        offsets.append(total)
        conn_stage.append(first.conn_stage[uid] if first.conn_stage[uid] is not None else -1)
    writer.add("entry_key", "d", entry_key)
    writer.add("entry_state", "q", entry_state)
    writer.add("conn_offsets", "q", offsets)
    writer.add("conn_stage", "q", conn_stage)
    for stage in range(num_stages):
        if stage == anchor_stage:
            continue
        writer.add(f"vk{stage}", "d", first.values_key[stage])
        writer.add(f"pk{stage}", "d", first.pi1_key[stage])
        writer.add(f"cu{stage}", "q", first.child_uids[stage])
        writer.add(f"ids{stage}", "q", first.tdp.tuple_ids[stage])
    fragments_meta = []
    for index, core in enumerate(fragment_cores):
        writer.add(f"f{index}.vk", "d", core.values_key[anchor_stage])
        writer.add(f"f{index}.pk", "d", core.pi1_key[anchor_stage])
        writer.add(f"f{index}.cu", "q", core.child_uids[anchor_stage])
        writer.add(f"f{index}.ids", "q", core.tdp.tuple_ids[anchor_stage])
        fragments_meta.append(
            {"best_key": core.best_key, "empty": core.empty}
        )
    meta = {
        "kind": "sharded",
        "dioid": name,
        "num_stages": num_stages,
        "num_connectors": uid_space,
        "order": list(first.tdp.atom_of_stage),
        "parent_stage": list(first.parent_stage),
        "root_uid": {
            stage: uid
            for stage, uid in first.root_uid.items()
            if stage != anchor_stage
        },
        "anchor_stage": anchor_stage,
        "num_fragments": len(fragment_cores),
        "fragments": fragments_meta,
        "manifest": writer.manifest,
    }
    return meta, writer.getvalue()


# -- import: sections + meta -> mapped cores -----------------------------------


def _conn_of_rows(shell: TDP, child_uids: list) -> list:
    """Per non-root stage: the connector uid row indexed by parent state."""
    conn_of: list = [None] * shell.num_stages
    for stage in range(shell.num_stages):
        parent = shell.parent_stage[stage]
        if parent == -1:
            continue
        fanout = len(shell.children_stages[parent])
        branch = shell.branch_index[stage]
        row = child_uids[parent]
        conn_of[stage] = row[branch::fanout] if fanout else []
    return conn_of


def _vfk_of(dioid: SelectiveDioid):
    return (
        None
        if type(dioid).value_from_key is SelectiveDioid.value_from_key
        else dioid.value_from_key
    )


def _assemble_mapped(
    shell: MappedShell,
    dioid: SelectiveDioid,
    meta: dict,
    values_key: list,
    pi1_key: list,
    child_uids: list,
    conn_stage: list,
    sections: SectionView,
    root_uid: dict,
    best_key: float,
    empty: bool,
    pairs: list,
    caches: tuple[list, list, list],
) -> MappedCompiled:
    num_stages = meta["num_stages"]
    uid_space = meta["num_connectors"]
    num_branches = [len(c) for c in shell.children_stages]
    per_stage = [
        (num_branches[s], values_key[s], child_uids[s], s)
        for s in range(num_stages)
    ]
    conn_meta = [
        None if stage < 0 else per_stage[stage] for stage in conn_stage
    ]
    compiled = MappedCompiled.assemble(
        tdp=shell,
        dioid=dioid,
        num_stages=num_stages,
        num_connectors=uid_space,
        parent_stage=list(shell.parent_stage),
        children_stages=shell.children_stages,
        branch_index=shell.branch_index,
        num_branches=num_branches,
        values_key=values_key,
        pi1_key=pi1_key,
        conn_offsets=sections.view("conn_offsets"),
        entry_key=sections.view("entry_key"),
        entry_state=sections.view("entry_state"),
        conn_stage=conn_stage,
        child_uids=child_uids,
        conn_of=_conn_of_rows(shell, child_uids),
        conn_meta=conn_meta,
        root_stages=list(shell.root_stages),
        root_uid=root_uid,
        best_key=best_key,
        empty=empty,
        vfk=_vfk_of(dioid),
        is_chain=all(
            shell.parent_stage[j] == j - 1 for j in range(num_stages)
        ),
        _pairs=pairs,
        _take2_heaps=caches[0],
        _sorted_pairs=caches[1],
        _rea_heaps=caches[2],
    )
    shell._compiled = compiled
    return compiled


def _shell_for(
    meta: dict, dioid: SelectiveDioid, database, query, join_tree
) -> tuple[MappedShell, list]:
    """A mapped shell plus its per-stage relations, rows still unset."""
    order = list(meta["order"])
    shell = MappedShell(dioid, order, list(meta["parent_stage"]), query, join_tree)
    relations = [
        database[query.atoms[atom_index].relation_name] for atom_index in order
    ]
    return shell, relations


def _finish_shell(
    shell: MappedShell,
    dioid: SelectiveDioid,
    values_key: list,
    pi1_key: list,
    uid_space: int,
    best_key: float,
    empty: bool,
) -> None:
    shell.values = _value_sequences(dioid, values_key)
    shell.pi1 = _value_sequences(dioid, pi1_key)
    shell.num_connectors = uid_space
    shell.best_weight = dioid.zero if empty else dioid.value_from_key(best_key)
    shell._empty = empty


def load_compiled(
    meta: dict, buffer, base: int, database, query, join_tree
) -> MappedShell:
    """Rehydrate an unsharded core as a mapped shell (``.core`` hit)."""
    dioid = NAMED_DIOIDS[meta["dioid"]]
    sections = SectionView(buffer, meta["manifest"], base)
    shell, relations = _shell_for(meta, dioid, database, query, join_tree)
    num_stages = meta["num_stages"]
    values_key = [sections.view(f"vk{s}") for s in range(num_stages)]
    pi1_key = [sections.view(f"pk{s}") for s in range(num_stages)]
    child_uids = [sections.view(f"cu{s}") for s in range(num_stages)]
    tuple_ids = [sections.view(f"ids{s}") for s in range(num_stages)]
    shell.tuple_ids = tuple_ids
    shell.tuples = [
        LazyRows(relation, ids) for relation, ids in zip(relations, tuple_ids)
    ]
    uid_space = meta["num_connectors"]
    _finish_shell(
        shell, dioid, values_key, pi1_key, uid_space,
        meta["best_key"], meta["empty"],
    )
    conn_stage = list(sections.view("conn_stage"))
    _assemble_mapped(
        shell, dioid, meta, values_key, pi1_key, child_uids, conn_stage,
        sections, dict(meta["root_uid"]), meta["best_key"], meta["empty"],
        [None] * uid_space,
        ([None] * uid_space, [None] * uid_space, [None] * uid_space),
    )
    return shell


def load_fragments(
    meta: dict, buffer, base: int, database, query, join_tree
) -> list[MappedCompiled]:
    """Rehydrate a sharded core as per-fragment mapped compiled cores.

    Reconstructs the cold build's aliasing exactly: one ``_pairs`` list,
    one set of lazily built ranking-structure caches, and one view per
    shared stage array — shared by every fragment — with per-fragment
    anchor-stage arrays and root connectors layered on top.
    """
    dioid = NAMED_DIOIDS[meta["dioid"]]
    sections = SectionView(buffer, meta["manifest"], base)
    num_stages = meta["num_stages"]
    anchor = meta["anchor_stage"]
    uid_space = meta["num_connectors"]
    num_fragments = meta["num_fragments"]

    shared_vk: list = [None] * num_stages
    shared_pk: list = [None] * num_stages
    shared_cu: list = [None] * num_stages
    shared_ids: list = [None] * num_stages
    for stage in range(num_stages):
        if stage == anchor:
            continue
        shared_vk[stage] = sections.view(f"vk{stage}")
        shared_pk[stage] = sections.view(f"pk{stage}")
        shared_cu[stage] = sections.view(f"cu{stage}")
        shared_ids[stage] = sections.view(f"ids{stage}")
    conn_stage = list(sections.view("conn_stage"))
    shared_root_uid = {
        int(stage): uid for stage, uid in meta["root_uid"].items()
    }
    pairs: list = [None] * uid_space
    caches = ([None] * uid_space, [None] * uid_space, [None] * uid_space)
    shared_rows: list = [None] * num_stages

    cores: list[MappedCompiled] = []
    for index in range(num_fragments):
        frag_meta = meta["fragments"][index]
        shell, relations = _shell_for(meta, dioid, database, query, join_tree)
        if index == 0:
            for stage in range(num_stages):
                if stage != anchor:
                    shared_rows[stage] = LazyRows(
                        relations[stage], shared_ids[stage]
                    )
        values_key = list(shared_vk)
        values_key[anchor] = sections.view(f"f{index}.vk")
        pi1_key = list(shared_pk)
        pi1_key[anchor] = sections.view(f"f{index}.pk")
        child_uids = list(shared_cu)
        child_uids[anchor] = sections.view(f"f{index}.cu")
        frag_ids = sections.view(f"f{index}.ids")
        shell.tuple_ids = list(shared_ids)
        shell.tuple_ids[anchor] = frag_ids
        shell.tuples = list(shared_rows)
        shell.tuples[anchor] = LazyRows(relations[anchor], frag_ids)
        root_uid = dict(shared_root_uid)
        root_uid[anchor] = uid_space - num_fragments + index
        best_key = frag_meta["best_key"]
        empty = frag_meta["empty"]
        _finish_shell(
            shell, dioid, values_key, pi1_key, uid_space, best_key, empty
        )
        cores.append(
            _assemble_mapped(
                shell, dioid, meta, values_key, pi1_key, child_uids,
                conn_stage, sections, root_uid, best_key, empty,
                pairs, caches,
            )
        )
    return cores


# -- shared-memory pools (process-pool shard build) ----------------------------


def _cleanup_segment(segment: shared_memory.SharedMemory, owner: bool) -> None:
    try:
        segment.close()
    except BufferError:  # views still exported; the OS frees at exit
        return
    if owner:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


class ShmPool:
    """One shared-memory segment of packed sections, shipped by name.

    The owning process creates it and unlinks it when the build
    finishes (``destroy``), with a ``weakref.finalize`` backstop for
    error paths that never reach the ``finally``.  Workers ``attach``
    by name and immediately unregister from the ``resource_tracker`` —
    the owner's tracker entry is the only one that should exist, which
    is what keeps worker exits warning-free on pre-3.13 Pythons.
    """

    __slots__ = ("name", "segment", "owner", "_finalizer", "__weakref__")

    def __init__(self, name: str, segment, owner: bool):
        self.name = name
        self.segment = segment
        self.owner = owner
        self._finalizer = weakref.finalize(
            self, _cleanup_segment, segment, owner
        )

    @classmethod
    def create(cls, payload: bytes) -> "ShmPool":
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, len(payload))
        )
        segment.buf[: len(payload)] = payload
        return cls(segment.name, segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmPool":
        try:
            segment = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            # Python < 3.13 has no ``track=`` and (bpo-39959) registers
            # even a plain attach with the resource tracker; with several
            # workers attaching the same segment the later unregisters
            # race each other in the tracker daemon.  Suppress the
            # registration for the duration of the attach instead —
            # single-threaded here (pool initializer / test probe).
            from multiprocessing import resource_tracker

            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                segment = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        return cls(name, segment, owner=False)

    @property
    def buf(self):
        return self.segment.buf

    def destroy(self) -> None:
        """Release (and, for the owner, unlink) the segment now."""
        if self._finalizer.detach() is not None:
            _cleanup_segment(self.segment, self.owner)


class WorkerLower:
    """The worker-side view of phase A: what the anchor scan reads."""

    __slots__ = ("lane", "conn_min", "lookups")

    def __init__(self, lane: int, conn_min, lookups: list):
        self.lane = lane
        #: memoryview("d") aliasing the owner's pool — zero copies.
        self.conn_min = conn_min
        self.lookups = lookups


def pack_worker_lower(shared) -> bytes:
    """Pack a ``SharedLower``'s scan-relevant state for :class:`ShmPool`.

    The float pool (``conn_min``) travels as a raw section workers view
    in place; the anchor children's join-key maps are hash tables and
    necessarily unpickle per worker — but from the mapped buffer, never
    through the executor's task pipe.
    """
    writer = SectionWriter()
    writer.add("conn_min", "d", shared.conn_min)
    data = writer.getvalue()
    blob = pickle.dumps(
        {
            "lane": shared.lane,
            "manifest": writer.manifest,
            "lookups": shared.child_lookups(shared.anchor_stage),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    header = struct.pack("<Q", len(blob))
    pad = _pad(len(header) + len(blob))
    return header + blob + b"\x00" * pad + data


def unpack_worker_lower(buffer) -> WorkerLower:
    """Worker side of :func:`pack_worker_lower` (views, no pool copy)."""
    mv = memoryview(buffer)
    (blob_len,) = struct.unpack_from("<Q", mv, 0)
    blob = pickle.loads(mv[8:8 + blob_len])
    data_base = 8 + blob_len + _pad(8 + blob_len)
    sections = SectionView(mv, blob["manifest"], data_base)
    lookups = [
        (single, tuple(positions), cmap)
        for single, positions, cmap in blob["lookups"]
    ]
    return WorkerLower(blob["lane"], sections.view("conn_min"), lookups)


# -- the <db>.core container ---------------------------------------------------


class CoreFile:
    """Read/write access to one ``<db>.core`` container.

    Layout: ``RPROCORE`` magic + format + TOC length, a pickled TOC
    (``{key: {"meta", "db_version", "offset", "length"}}``), then the
    8-byte-aligned section blobs.  Rewrites are whole-file and atomic
    (temp file + ``os.replace``): concurrent writers last-write-win,
    concurrent readers keep their mapping of the replaced inode.
    """

    def __init__(self, path: str):
        self.path = path

    def read_toc_and_map(self):
        """``(toc, mmap)`` of the current file, or ``None`` if absent/bad.

        Transient I/O errors (injected via the ``core.read`` fault site
        or real ``EIO``-style failures) are retried with backoff; a
        persistent failure — like any corrupt/truncated container —
        degrades to a graceful miss and the caller rebuilds.
        """
        try:
            return _core_retrier().call(self._read_once)
        except Exception:
            return None

    def _read_once(self):
        faults.hit("core.read")
        try:
            fd = open(self.path, "rb")
        except FileNotFoundError:
            return None
        with fd:
            try:
                mapped = mmap.mmap(fd.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError:  # empty file
                return None
        try:
            magic, fmt, toc_len = _HEADER.unpack_from(mapped, 0)
            if magic != CORE_MAGIC or fmt != CORE_FORMAT:
                raise ValueError("unknown core format")
            toc_bytes = faults.corrupt(
                "core.read", mapped[_HEADER.size:_HEADER.size + toc_len]
            )
            toc = pickle.loads(toc_bytes)
            if not isinstance(toc, dict):
                raise ValueError("malformed core TOC")
        except Exception:
            mapped.close()
            return None
        return toc, mapped

    def write(self, entries: dict[str, tuple[dict, int, bytes]]) -> None:
        """Atomically rewrite the container with ``entries``.

        ``entries`` maps key -> ``(meta, db_version, data)``; previously
        stored entries the caller wants kept must be included (use
        :meth:`read_entries` to collect them).
        """
        toc: dict[str, dict] = {}
        blobs: list[bytes] = []
        # First pass with placeholder offsets to size the TOC, second
        # pass with real offsets: pickle output length depends only on
        # the int values' magnitudes, so pad the TOC to a fixed slot by
        # pickling twice and asserting stability.
        offset = 0
        order = list(entries.items())
        for key, (meta, db_version, data) in order:
            toc[key] = {
                "meta": meta,
                "db_version": db_version,
                "offset": 0,
                "length": len(data),
            }
        for _ in range(4):
            toc_bytes = pickle.dumps(toc, protocol=pickle.HIGHEST_PROTOCOL)
            base = _HEADER.size + len(toc_bytes)
            base += _pad(base)
            offset = base
            stable = True
            for key, (meta, db_version, data) in order:
                if toc[key]["offset"] != offset:
                    toc[key]["offset"] = offset
                    stable = False
                offset += len(data) + _pad(len(data))
            if stable:
                break
        else:  # pragma: no cover - pickle size oscillation
            raise RuntimeError("could not stabilise core TOC layout")
        out = io.BytesIO()
        out.write(_HEADER.pack(CORE_MAGIC, CORE_FORMAT, len(toc_bytes)))
        out.write(toc_bytes)
        out.write(b"\x00" * _pad(out.tell()))
        for key, (meta, db_version, data) in order:
            assert out.tell() == toc[key]["offset"]
            out.write(data)
            out.write(b"\x00" * _pad(len(data)))
        self._sweep_stale_tmp()
        payload = out.getvalue()
        tmp_path = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "wb") as fd:
                # Two chunks with the fault site between them: a chaos
                # test can kill the writer mid-file and assert the
                # half-written bytes only ever land in the ``.tmp``
                # sibling, never in the ``.core`` readers map.
                mid = len(payload) // 2
                fd.write(payload[:mid])
                faults.hit("core.write")
                fd.write(payload[mid:])
                fd.flush()
                os.fsync(fd.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _sweep_stale_tmp(self) -> None:
        """Remove ``.tmp.<pid>`` siblings left by crashed writers."""
        directory, base = os.path.split(self.path)
        prefix = f"{base}.tmp."
        try:
            names = os.listdir(directory or ".")
        except OSError:
            return
        for name in names:
            if not name.startswith(prefix):
                continue
            pid_text = name[len(prefix):]
            if not pid_text.isdigit() or int(pid_text) == os.getpid():
                continue
            try:
                os.kill(int(pid_text), 0)
            except ProcessLookupError:
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:
                    pass
            except OSError:
                # Alive but not ours to signal — leave its tmp alone.
                pass

    def read_entries(self) -> dict[str, tuple[dict, int, bytes]]:
        """Every stored entry as ``key -> (meta, db_version, data)``."""
        current = self.read_toc_and_map()
        if current is None:
            return {}
        toc, mapped = current
        try:
            return {
                key: (
                    entry["meta"],
                    entry["db_version"],
                    bytes(
                        mapped[entry["offset"]:entry["offset"] + entry["length"]]
                    ),
                )
                for key, entry in toc.items()
            }
        finally:
            mapped.close()


class CoreCache:
    """The engine-facing warm-start cache over one :class:`CoreFile`.

    ``load_*`` return mapped cores on a hit, ``None`` on a miss; a
    ``Database.version`` mismatch counts as *stale* (the caller rebuilds
    and ``store_*`` rewrites the entry).  Counters feed the engine's
    ``EngineStats``.  The mmap behind a hit stays open as long as loaded
    cores reference its views; :meth:`close` releases mappings that are
    no longer referenced and leaves the rest to garbage collection.
    """

    def __init__(self, path: str):
        self.path = path
        self.hits = Counter(
            "repro_core_cache_hits_total", "Core-cache warm-start hits."
        )
        self.misses = Counter(
            "repro_core_cache_misses_total", "Core-cache misses."
        )
        self.stale = Counter(
            "repro_core_cache_stale_total", "Core-cache version mismatches."
        )
        self.writes = Counter(
            "repro_core_cache_writes_total", "Core-cache entry writes."
        )
        self._file = CoreFile(path)
        self._lock = threading.Lock()
        self._maps: list[mmap.mmap] = []
        self._stamp: tuple | None = None
        self._toc: dict | None = None
        self._map: mmap.mmap | None = None

    # -- container access ------------------------------------------------------

    def _current(self):
        """The TOC + mapping of the file as it exists right now."""
        try:
            stat = os.stat(self.path)
            stamp = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            self._stamp = None
            self._toc = None
            self._map = None
            return None
        if self._toc is not None and stamp == self._stamp:
            return self._toc, self._map
        loaded = self._file.read_toc_and_map()
        if loaded is None:
            return None
        self._toc, self._map = loaded
        self._stamp = stamp
        self._maps.append(self._map)
        return loaded

    def _entry(self, key: str | None, db_version: int):
        if key is None:
            return None
        current = self._current()
        if current is None:
            self.misses += 1
            return None
        toc, mapped = current
        entry = toc.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry["db_version"] != db_version:
            self.stale += 1
            return None
        if entry["offset"] + entry["length"] > len(mapped):
            # A truncated container can keep an intact TOC whose blobs
            # run past EOF (the TOC sits at the front of the file).
            # That is corruption, not staleness: miss and rebuild.
            self.misses += 1
            return None
        # The hit is counted by the load_* caller once the blob actually
        # decodes — the counter is monotone, so a decode failure must
        # never have to "take a hit back".
        return entry["meta"], mapped, entry["offset"]

    # -- engine API ------------------------------------------------------------

    def load_tdp(self, key: str | None, database, query, join_tree):
        """A mapped unsharded shell for ``key``, or ``None``."""
        with self._lock:
            found = self._entry(key, database.version)
            if found is None:
                return None
            meta, mapped, offset = found
            if meta["kind"] != "tdp":
                self.misses += 1
                return None
            try:
                shell = load_compiled(
                    meta, mapped, offset, database, query, join_tree
                )
            except Exception:
                # Mangled section data inside an in-bounds blob: a cold
                # rebuild beats serving garbage.
                self.misses += 1
                return None
            self.hits += 1
            return shell

    def load_fragment_cores(
        self, key: str | None, database, query, join_tree,
        anchor_stage: int, num_fragments: int,
    ):
        """Mapped fragment cores for ``key``, or ``None`` on any mismatch."""
        with self._lock:
            found = self._entry(key, database.version)
            if found is None:
                return None
            meta, mapped, offset = found
            if (
                meta["kind"] != "sharded"
                or meta["anchor_stage"] != anchor_stage
                or meta["num_fragments"] != num_fragments
            ):
                self.misses += 1
                return None
            try:
                cores = load_fragments(
                    meta, mapped, offset, database, query, join_tree
                )
            except Exception:
                self.misses += 1
                return None
            self.hits += 1
            return cores

    def store(
        self, key: str | None, database, meta: dict, data: bytes,
        warm: dict | None = None,
    ) -> bool:
        """Write (or replace) one entry; keeps every other stored plan."""
        if key is None:
            return False
        meta = dict(meta)
        if warm is not None:
            meta["warm"] = warm
        with self._lock:
            try:
                entries = self._file.read_entries()
                entries[key] = (meta, database.version, data)
                self._file.write(entries)
            except (OSError, pickle.PicklingError):
                return False
            self.writes += 1
            return True

    def entries(self):
        """``(key, meta, db_version)`` of every stored plan (for warm boot)."""
        with self._lock:
            current = self._current()
            if current is None:
                return []
            toc, _mapped = current
            return [
                (key, entry["meta"], entry["db_version"])
                for key, entry in toc.items()
            ]

    def stats(self) -> dict:
        return {
            "path": self.path,
            "hits": int(self.hits),
            "misses": int(self.misses),
            "stale": int(self.stale),
            "writes": int(self.writes),
        }

    def mmap_bytes(self) -> int:
        """Bytes of ``.core`` file currently mapped into this process.

        The residency counterpart of compiled-core heap estimates: a
        warm-started plan's columns live here, not on the heap.
        """
        with self._lock:
            return sum(
                len(mapped) for mapped in self._maps if not mapped.closed
            )

    def close(self) -> None:
        """Release mappings without live views; GC reclaims the rest.

        Mapped shells and their compiled cores cross-reference each
        other, so dropped plans may sit in cycles still pinning exported
        views; one collection pass frees those before the close attempt.
        A mapping with genuinely live views (a plan the caller still
        uses) survives untouched and is retried on the next close.
        """
        with self._lock:
            cycles_collected = False
            remaining = []
            for mapped in self._maps:
                try:
                    mapped.close()
                    continue
                except BufferError:
                    pass
                if not cycles_collected:
                    cycles_collected = True
                    gc.collect()
                try:
                    mapped.close()
                except BufferError:
                    remaining.append(mapped)
            self._maps = remaining
            self._stamp = None
            self._toc = None
            self._map = None
