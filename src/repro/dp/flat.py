"""Compiled flat enumeration core: the T-DP lowered to parallel arrays.

The object-graph :class:`~repro.dp.graph.TDP` is the right structure for
*building* the state space (Eq. 2/7 bottom-up, semi-join pruning), but a
poor one for *enumerating* over it: every ``Succ`` call walks
:class:`~repro.dp.graph.ChoiceSet` objects holding boxed ``(key, state,
value)`` triples, and every weight combination dispatches through
``SelectiveDioid.times``/``key`` even though nearly all workloads rank
by the tropical ``(min, +)`` dioid over plain floats.

:func:`compile_tdp` lowers a bound T-DP into a :class:`CompiledTDP` —
a bundle of flat, cache-friendly parallel structures:

* ``entry_key`` / ``entry_state`` — one CSR-style pool per T-DP with
  per-connector ``conn_offsets`` slices, replacing the per-``ChoiceSet``
  Python tuple lists.  Keys are raw ``float``\\ s in *key space*.
* ``values_key`` / ``pi1_key`` — per-stage contiguous state values and
  precomputed ``pi1`` keys (plain float lists: hot random-access reads).
* ``child_uids`` — the ``child_conns`` adjacency flattened to one
  integer array per stage (``state * num_branches + branch`` indexing),
  plus ``root_uid`` for the virtual start state's branches.

Everything is expressed in **key space**: the compilation step requires
``dioid.key_is_value`` — keys are floats and ``key`` is additive over
``times`` (``key(a ⊗ b) == key(a) + key(b)``, exactly, by IEEE
sign-symmetry for the tropical min/max dioids).  The flat enumerators in
:mod:`repro.anyk.flat` then combine weights with native ``+`` and
compare with native float ordering; the ranked output is bit-identical
to the object-graph path because every float operation performed is the
image (under ``key``) of the corresponding ``times`` call.  Dioids
without the ``key_is_value`` contract (lexicographic vectors,
tie-breaking pairs, ...) are not compiled — :func:`compile_tdp` returns
``None`` and the callers keep the generic object-graph path.

The compiled core is memoized on the source ``TDP`` (``TDP._compiled``),
so the engine's version-stamped physical-plan cache shares one
``CompiledTDP`` across all any-k algorithm variants and all serving
sessions of a database version.

Because every array in the core is plain key-space floats/ints, a
compiled core is *persistable*: :mod:`repro.dp.corebuf` serializes the
pools to a ``<db>.core`` file (and to shared-memory segments for the
process-pool shard build) and maps them back without re-running the
build.  Only dioids that are both ``key_is_value`` and registered in
``NAMED_DIOIDS`` — tropical min-plus and max-plus — are persisted; the
dioid travels by registry name, never by pickled instance.
"""

from __future__ import annotations

from array import array
from heapq import heapify as _heapify
from typing import Any

from repro.dp.graph import TDP
from repro.ranking.dioid import SelectiveDioid
from repro.util import vec

#: Connector size above which :meth:`CompiledTDP.sorted_pairs` prefers a
#: numpy ``lexsort`` over ``sorted`` on tuples.  Both orders are
#: identical — primary key ascending, state ascending on ties (states
#: are unique within a connector, so the tie rule is moot but kept for
#: symmetry with the tuple comparison).
_VEC_SORT_MIN = 64


def _seq_bytes(seq: Any) -> int:
    """Heap-byte estimate of one compiled-core column.

    ``memoryview`` columns are mmap-backed and count zero.  Lists of
    scalars/tuples are estimated from their first element (columns are
    homogeneous), so the walk is O(nesting), not O(entries).
    """
    import sys

    if seq is None or isinstance(seq, memoryview):
        return 0
    if isinstance(seq, array):
        return sys.getsizeof(seq)
    if isinstance(seq, (list, tuple)):
        total = sys.getsizeof(seq)
        sample = next((item for item in seq if item is not None), None)
        if sample is None:
            return total
        if isinstance(sample, (list, array, memoryview)):
            for item in seq:  # ragged columns (per-stage / per-connector)
                total += _seq_bytes(item)
        elif isinstance(sample, tuple):
            total += _seq_bytes(sample) * len(seq)  # homogeneous rows
        else:
            total += sys.getsizeof(sample) * len(seq)
        return total
    return sys.getsizeof(seq)


class CompiledTDP:
    """A T-DP lowered to flat arrays in dioid key space.

    Read-only after construction; every per-run mutable structure (heap
    orders, sorted prefixes, memoized solution lists) lives in the
    enumerators of :mod:`repro.anyk.flat`.  Holds a back-reference to
    the source :class:`TDP` for result assembly — witness tuples and
    variable assignments are materialised lazily from ``tuple_ids`` at
    result-construction time, never carried through candidate queues.
    """

    __slots__ = (
        "tdp", "dioid", "num_stages", "num_connectors", "parent_stage",
        "children_stages", "branch_index", "num_branches", "values_key",
        "pi1_key", "conn_offsets", "entry_key", "entry_state",
        "conn_stage", "child_uids", "conn_of", "conn_meta", "root_stages",
        "root_uid", "best_key", "empty", "vfk", "is_chain", "_pairs",
        "_take2_heaps", "_sorted_pairs", "_rea_heaps",
    )

    def __init__(self, tdp: TDP):
        dioid = tdp.dioid
        if not getattr(dioid, "key_is_value", False):
            raise ValueError(
                f"{dioid!r} does not satisfy the key_is_value contract"
            )
        self.tdp = tdp
        self.dioid = dioid
        key_of = dioid.key

        num_stages = tdp.num_stages
        self.num_stages = num_stages
        self.num_connectors = tdp.num_connectors
        self.parent_stage = list(tdp.parent_stage)
        self.children_stages = [list(c) for c in tdp.children_stages]
        self.branch_index = list(tdp.branch_index)
        #: Branch fan-out per stage (row width of ``child_uids``).
        self.num_branches = [len(c) for c in tdp.children_stages]

        #: Per-stage state values and pi1, as key-space floats.  Plain
        #: lists, not ``array``: these are read one element at a time in
        #: the innermost loops, where list indexing (no re-boxing) wins.
        self.values_key: list[list[float]] = [
            [key_of(v) for v in stage_values] for stage_values in tdp.values
        ]
        self.pi1_key: list[list[float]] = [
            [key_of(v) for v in stage_pi1] for stage_pi1 in tdp.pi1
        ]

        # Collect every reachable connector by uid.  (The builder also
        # creates join-key groups no parent references; their uids get
        # empty CSR slices and are never touched.)
        conns: list = [None] * tdp.num_connectors
        for stage_conns in tdp.child_conns:
            for state_conns in stage_conns:
                for conn in state_conns:
                    conns[conn.uid] = conn
        for conn in tdp.root_conn.values():
            conns[conn.uid] = conn

        #: CSR entry pool: connector ``uid`` owns entries
        #: ``conn_offsets[uid] .. conn_offsets[uid + 1]``.  Compact
        #: typed arrays: consumed in bulk (one zip per first view).
        entry_key = array("d")
        entry_state = array("q")
        conn_stage = [-1] * tdp.num_connectors
        offsets = array("q", [0] * (tdp.num_connectors + 1))
        total = 0
        for uid, conn in enumerate(conns):
            if conn is not None:
                conn_stage[uid] = conn.stage
                for entry in conn.entries:
                    entry_key.append(entry[0])
                    entry_state.append(entry[1])
                total += len(conn.entries)
            offsets[uid + 1] = total
        self.conn_offsets = offsets
        self.entry_key = entry_key
        self.entry_state = entry_state
        #: Connector uid -> owning stage.  Plain int list (not a typed
        #: array): read per ``_ensure`` call, and list indexing returns
        #: the stored int without re-boxing.
        self.conn_stage = conn_stage

        #: Flattened adjacency: ``child_uids[s][state * num_branches[s]
        #: + b]`` is the connector uid governing branch ``b`` of that
        #: state (empty for leaf stages).  Plain int lists, as above.
        self.child_uids: list[list[int]] = []
        for stage in range(num_stages):
            flat: list[int] = []
            for state_conns in tdp.child_conns[stage]:
                for conn in state_conns:
                    flat.append(conn.uid)
            self.child_uids.append(flat)

        #: Per *non-root* stage ``s``: the connector uid governing ``s``
        #: indexed directly by the parent's state —
        #: ``conn_of[s][parent_state]`` replaces the
        #: ``child_uids[parent][state * fanout + branch]`` multiply-add
        #: on the enumeration hot path (``None`` for root stages, whose
        #: single connector is in :attr:`root_uid`).
        self.conn_of: list[list[int] | None] = [None] * num_stages
        for stage in range(num_stages):
            parent = self.parent_stage[stage]
            if parent == -1:
                continue
            fanout = self.num_branches[parent]
            branch = self.branch_index[stage]
            row = self.child_uids[parent]
            self.conn_of[stage] = row[branch::fanout] if fanout else []

        self.root_stages = list(tdp.root_stages)
        self.root_uid = {
            stage: conn.uid for stage, conn in tdp.root_conn.items()
        }
        #: Serpentine/path shape: every stage's parent is the previous
        #: stage (single root, no branching).  The enumerators install
        #: chain-specialised loops for this, the most common join-tree
        #: layout (path queries, cycle-decomposition members).
        self.is_chain = all(
            self.parent_stage[j] == j - 1 for j in range(num_stages)
        )

        #: Per-connector hot metadata ``(branch_count, own_state_keys,
        #: child_uid_row, stage)`` — one list index + unpack replaces
        #: four attribute/index chains in Recursive's ``_ensure``
        #: (``None`` for the builder's unreferenced join-key groups).
        self.conn_meta: list[tuple | None] = [
            None
            if conn_stage[uid] < 0
            else (
                self.num_branches[conn_stage[uid]],
                self.values_key[conn_stage[uid]],
                self.child_uids[conn_stage[uid]],
                conn_stage[uid],
            )
            for uid in range(tdp.num_connectors)
        ]
        self.empty = tdp.is_empty()
        self.best_key = key_of(tdp.best_weight)

        #: Key-to-value map for result construction, or ``None`` when
        #: the key *is* the value (tropical min-plus): the enumerators
        #: then skip the call entirely on their per-result path.
        self.vfk = (
            None
            if type(dioid).value_from_key is SelectiveDioid.value_from_key
            else dioid.value_from_key
        )

        #: Shared ``(key, state)`` pair lists per connector — the flat
        #: analogue of ``ChoiceSet.entries`` (unsorted, read-only;
        #: strategies copy before heapify/sort).  Built eagerly in one
        #: C-level pass: this is preprocessing-phase work, paid once per
        #: database version and amortised over every enumeration run.
        all_pairs = list(zip(entry_key, entry_state))
        self._pairs: list[list[tuple[float, int]]] = [
            all_pairs[offsets[uid]:offsets[uid + 1]]
            for uid in range(tdp.num_connectors)
        ]

        # Per-connector ranking structures that are *read-only once
        # built* and therefore shared across every enumerator run (and
        # every concurrent session) over this compiled core, filled
        # lazily on first touch:
        #
        # * Take2's static heap order — heapified once, never popped
        #   (that is the whole point of Take2), so one array serves all
        #   runs where the object path re-heapifies per run;
        # * Eager's sorted entry lists — never mutated after sorting;
        # * Recursive's initial candidate heaps ``[(key, state, 0)]`` —
        #   runs *do* pop/push these, so :meth:`rea_heap` hands out a
        #   C-level copy of the heapified template (the triples inside
        #   are immutable and stay shared).
        self._take2_heaps: list[list | None] = [None] * tdp.num_connectors
        self._sorted_pairs: list[list | None] = [None] * tdp.num_connectors
        self._rea_heaps: list[list | None] = [None] * tdp.num_connectors

    # -- accessors -----------------------------------------------------------

    def pairs(self, uid: int) -> list[tuple[float, int]]:
        """The unsorted ``(key, state)`` entry pairs of connector ``uid``.

        Shared by all enumerator runs (and algorithms).  Callers must
        not mutate the returned list — copy first (as the ``sorted`` /
        ``heapify`` call sites do).
        """
        return self._pairs[uid]

    def take2_heap(self, uid: int) -> list[tuple[float, int]]:
        """Connector ``uid``'s entries in static heap order (shared).

        Built by one ``heapify`` on first access; read-only afterwards
        (Take2 uses the heap array as a static partial order), so safe
        to share across runs, algorithms, and threads — the lazy fill
        is a benign race: ``heapify`` is deterministic, both winners
        produce the identical list.
        """
        heap = self._take2_heaps[uid]
        if heap is None:
            heap = list(self.pairs(uid))
            _heapify(heap)
            self._take2_heaps[uid] = heap
        return heap

    def sorted_pairs(self, uid: int) -> list[tuple[float, int]]:
        """Connector ``uid``'s entries fully sorted (shared, read-only)."""
        entries = self._sorted_pairs[uid]
        if entries is None:
            pairs = self.pairs(uid)
            np = vec.np
            if np is not None and len(pairs) >= _VEC_SORT_MIN:
                n = len(pairs)
                keys = np.fromiter((p[0] for p in pairs), np.float64, n)
                states = np.fromiter((p[1] for p in pairs), np.int64, n)
                order = np.lexsort((states, keys))
                entries = list(
                    zip(keys[order].tolist(), states[order].tolist())
                )
            else:
                entries = sorted(pairs)
            self._sorted_pairs[uid] = entries
        return entries

    def rea_heap(self, uid: int) -> list[tuple[float, int, int]]:
        """A fresh Recursive candidate heap ``[(key, state, 0), ...]``.

        Returns a per-call copy of a lazily built heapified template:
        the caller mutates its copy freely while the immutable triples
        stay shared, and repeated runs skip both the triple allocation
        and the ``heapify``.
        """
        template = self._rea_heaps[uid]
        if template is None:
            template = [
                (key, state, 0) for key, state in self.pairs(uid)
            ]
            _heapify(template)
            self._rea_heaps[uid] = template
        return list(template)

    def conn_size(self, uid: int) -> int:
        """Number of entries of connector ``uid``."""
        return self.conn_offsets[uid + 1] - self.conn_offsets[uid]

    def value_from_key(self, key: float) -> Any:
        """Map a key-space float back to the dioid value domain."""
        return self.dioid.value_from_key(key)

    def stats(self) -> dict:
        """Compiled-core summary (for ``explain`` physical reports)."""
        return {
            "stages": self.num_stages,
            "connectors": self.num_connectors,
            "entries": len(self.entry_key),
            "states": sum(len(v) for v in self.values_key),
            "empty": self.empty,
        }

    def memory_bytes(self) -> int:
        """Estimated heap bytes of this core's columns (scrape-time).

        Mmap-backed ``memoryview`` columns (warm-started cores) count
        zero here — their residency is reported by
        :meth:`repro.dp.corebuf.CoreCache.mmap_bytes` instead, which is
        exactly the heap-vs-mmap split the memory gauges exist to show.
        """
        import sys

        total = sys.getsizeof(self)
        for name in (
            "values_key", "pi1_key", "conn_offsets", "entry_key",
            "entry_state", "conn_stage", "child_uids", "conn_of",
            "root_stages", "_pairs", "_take2_heaps", "_sorted_pairs",
            "_rea_heaps",
        ):
            total += _seq_bytes(getattr(self, name, None))
        return total

    def __repr__(self) -> str:
        return (
            f"CompiledTDP(stages={self.num_stages}, "
            f"entries={len(self.entry_key)}, best={self.best_key!r})"
        )


def compile_tdp(tdp: TDP) -> CompiledTDP | None:
    """Lower ``tdp`` to a :class:`CompiledTDP`, or ``None`` if unsupported.

    Supported exactly when the dioid advertises ``key_is_value`` (see
    the module docstring for the contract).  The result — including the
    negative answer — is memoized on the ``TDP``, so repeated calls from
    concurrent enumerator constructions cost one attribute read.  The
    memo write is a benign race: two threads may both compile, either
    result is valid, and one wins the slot.
    """
    compiled = tdp._compiled
    if compiled is not None:
        return compiled or None  # ``False`` memoizes "unsupported"
    if not getattr(tdp.dioid, "key_is_value", False):
        tdp._compiled = False
        return None
    compiled = CompiledTDP(tdp)
    tdp._compiled = compiled
    return compiled
