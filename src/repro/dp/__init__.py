"""(Tree-based) dynamic programming over join structures (Sections 3, 5.1).

A full acyclic CQ maps to a *T-DP problem*: one stage per atom, arranged
by the join tree, one state per (alive) input tuple, and decisions
between adjacent stages for joining tuples.  The equi-join encoding of
Fig 3 is realised by :class:`repro.dp.graph.ChoiceSet` "connector"
objects grouping child states by join value, keeping the graph at
O(l*n) size and *sharing* all ranking data structures between parent
states with the same join value.

For enumeration, a built T-DP is lowered once (per database version)
into the flat :class:`repro.dp.flat.CompiledTDP` arrays whenever the
ranking dioid supports key-space arithmetic; see :mod:`repro.dp.flat`.
"""

from repro.dp.builder import build_tdp, build_tdp_for_query
from repro.dp.direct import DPProblem, k_lightest_paths
from repro.dp.flat import CompiledTDP, compile_tdp
from repro.dp.graph import ChoiceSet, TDP
from repro.dp.theta import band_predicate, build_theta_path, comparison_predicate

__all__ = [
    "ChoiceSet",
    "TDP",
    "CompiledTDP",
    "compile_tdp",
    "build_tdp",
    "build_tdp_for_query",
    "DPProblem",
    "k_lightest_paths",
    "build_theta_path",
    "band_predicate",
    "comparison_predicate",
]
