"""T-DP state space with the O(l*n) equi-join connector encoding.

Fig 3 of the paper replaces the fully connected bipartite subgraph of an
equi-join value by a single in-between node; :class:`ChoiceSet` is that
node.  A connector groups the alive child states of one stage by their
join value with the parent stage; each parent state points to exactly
one connector per child branch.  Because the connector's entry weights
``w(child) (x) pi1(child)`` are independent of the parent state, every
ranking structure built on a connector (sorted lists, heaps, memoized
suffix lists) is *shared* by all parent states with that join value —
the sharing that drives Recursive's TTL advantage (Fig 6).

The solution weight of a (partial) solution is the dioid product of the
*state values* of its chosen states — each input tuple's weight enters
exactly once, which makes weight bookkeeping uniform for paths, trees,
and decompositions.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.ranking.dioid import SelectiveDioid


class ChoiceSet:
    """A connector node: the choice set shared by all matching parents.

    ``entries`` holds one triple ``(key, child_state, value)`` per alive
    child state in this join-value group, where ``value`` is
    ``w(child) (x) pi1(child)`` (weight of the best solution suffix
    through that child) and ``key = dioid.key(value)``.  ``entries`` is
    deliberately *unsorted*: TTF optimality requires linear-time
    preprocessing, and each any-k strategy builds its own (lazy)
    structure on top, cached per enumerator run keyed by :attr:`uid`.

    :attr:`min_entry` is computed lazily on first access and cached:
    the builder creates one connector per join-key group of a stage,
    including groups no parent state ever points at, and a connector
    only referenced by an enumerator that never reaches its subtree
    should not pay a linear ``min`` during preprocessing.
    """

    __slots__ = ("uid", "stage", "entries", "_min_entry")

    def __init__(self, uid: int, stage: int, entries: list[tuple]):
        if not entries:
            raise ValueError("a choice set cannot be empty")
        self.uid = uid
        self.stage = stage
        self.entries = entries
        self._min_entry: tuple | None = None

    @property
    def min_entry(self) -> tuple:
        """The least entry (cached after the first access)."""
        entry = self._min_entry
        if entry is None:
            entry = self._min_entry = min(self.entries)
        return entry

    @min_entry.setter
    def min_entry(self, entry: tuple) -> None:
        # Kept assignable: verify()-style tests inject corrupted minima.
        self._min_entry = entry

    @property
    def min_value(self) -> Any:
        """Best achievable suffix weight through this connector."""
        return self.min_entry[2]

    @property
    def min_key(self) -> Any:
        return self.min_entry[0]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        cached = self._min_entry
        shown = "?" if cached is None else repr(cached[0])
        return (
            f"ChoiceSet(uid={self.uid}, stage={self.stage}, "
            f"size={len(self.entries)}, min={shown})"
        )


class TDP:
    """A fully materialised T-DP problem after the bottom-up phase.

    Stages are indexed ``0 .. num_stages-1`` in a serialised tree order
    (parents before children); ``parent_stage[j] == -1`` means stage
    ``j`` hangs off the virtual start state ``s0``.  All per-state data
    lives in parallel lists indexed by *local state index*:

    * ``tuples[s][i]`` — the input tuple of state ``i`` of stage ``s``;
    * ``tuple_ids[s][i]`` — its position in the base relation (witness id);
    * ``values[s][i]`` — its lifted weight (a dioid value);
    * ``pi1[s][i]`` — Eq. (7): best weight of completing the subtree
      *below* stage ``s`` from this state (excludes the state's own
      weight);
    * ``child_conns[s][i]`` — tuple of :class:`ChoiceSet`, one per child
      branch of stage ``s`` (aligned with ``children_stages[s]``).

    Dead states (those with ``pi1 = zero``) are pruned during
    construction, so the arrays contain only alive states (the paper's
    reduced sets S̄, Ē).
    """

    def __init__(
        self,
        dioid: SelectiveDioid,
        atom_of_stage: Sequence[int],
        parent_stage: Sequence[int],
        query=None,
        join_tree=None,
    ):
        self.dioid = dioid
        self.query = query
        self.join_tree = join_tree
        self.atom_of_stage = list(atom_of_stage)
        self.parent_stage = list(parent_stage)
        self.num_stages = len(parent_stage)

        self.children_stages: list[list[int]] = [[] for _ in range(self.num_stages)]
        self.root_stages: list[int] = []
        for stage, parent in enumerate(self.parent_stage):
            if parent == -1:
                self.root_stages.append(stage)
            else:
                self.children_stages[parent].append(stage)
        #: Index of stage j within its parent's children list.
        self.branch_index: list[int] = [0] * self.num_stages
        for stage in range(self.num_stages):
            for idx, child in enumerate(self.children_stages[stage]):
                self.branch_index[child] = idx
        for idx, root in enumerate(self.root_stages):
            self.branch_index[root] = idx

        # Per-stage state arrays, filled by the builder.
        empty: list[list] = [[] for _ in range(self.num_stages)]
        self.tuples: list[list[tuple]] = [list(x) for x in empty]
        self.tuple_ids: list[list[int]] = [list(x) for x in empty]
        self.values: list[list[Any]] = [list(x) for x in empty]
        self.pi1: list[list[Any]] = [list(x) for x in empty]
        self.child_conns: list[list[tuple]] = [list(x) for x in empty]

        #: Root connectors: one per root stage (the virtual s0's branches).
        self.root_conn: dict[int, ChoiceSet] = {}
        #: pi1(s0): weight of the overall best solution (zero if empty).
        self.best_weight: Any = dioid.zero
        #: Number of connectors created (uids are 0 .. num_connectors-1).
        self.num_connectors: int = 0
        #: Memoized :class:`~repro.dp.flat.CompiledTDP` (or ``False``
        #: when the dioid does not support the flat fast path); filled
        #: by :func:`repro.dp.flat.compile_tdp`, shared by every
        #: enumerator run — and, through the engine's physical-plan
        #: cache, by every algorithm variant and serving session.
        self._compiled: Any = None

    # -- navigation ---------------------------------------------------------------

    def connector_for(self, stage: int, parent_state: int | None) -> ChoiceSet:
        """The choice set governing ``stage`` given the parent's state.

        ``parent_state`` is ignored (must be ``None``) for root stages,
        whose single connector hangs off the virtual start state.
        """
        parent = self.parent_stage[stage]
        if parent == -1:
            return self.root_conn[stage]
        return self.child_conns[parent][parent_state][self.branch_index[stage]]

    def is_empty(self) -> bool:
        """Whether the query output is empty."""
        return self.dioid.is_zero(self.best_weight) or len(self.root_conn) < len(
            self.root_stages
        )

    def num_states(self) -> int:
        """Total alive states across stages."""
        return sum(len(stage_tuples) for stage_tuples in self.tuples)

    def stats(self) -> dict:
        """Summary statistics of the materialised state space.

        Used by plan/explain reporting: per-stage alive states and
        distinct child connectors, plus the totals and the best weight.
        """
        per_stage = []
        for stage in range(self.num_stages):
            conns = {
                conn.uid
                for state_conns in self.child_conns[stage]
                for conn in state_conns
            }
            per_stage.append(
                {
                    "stage": stage,
                    "atom": self.atom_of_stage[stage],
                    "states": len(self.tuples[stage]),
                    "connectors": len(conns),
                }
            )
        return {
            "stages": per_stage,
            "states": self.num_states(),
            "connectors": self.num_connectors,
            "best_weight": self.best_weight,
            "empty": self.is_empty(),
        }

    def state_count_per_stage(self) -> list[int]:
        return [len(stage_tuples) for stage_tuples in self.tuples]

    def solution_weight(self, states: Sequence[int]) -> Any:
        """Aggregate weight of a full solution (one state per stage)."""
        dioid = self.dioid
        acc = dioid.one
        for stage, state in enumerate(states):
            acc = dioid.times(acc, self.values[stage][state])
        return acc

    # -- result assembly ------------------------------------------------------------

    def assignment(self, states: Sequence[int]) -> dict[str, Any]:
        """Variable assignment of a full solution (requires query context)."""
        if self.query is None:
            raise ValueError("TDP was built without a query")
        binding: dict[str, Any] = {}
        for stage, state in enumerate(states):
            atom = self.query.atoms[self.atom_of_stage[stage]]
            for var, value in zip(atom.variables, self.tuples[stage][state]):
                binding[var] = value
        return binding

    def witness(self, states: Sequence[int]) -> tuple:
        """Witness in *atom order*: the input tuple chosen for each atom."""
        by_atom = sorted(
            (self.atom_of_stage[stage], self.tuples[stage][state])
            for stage, state in enumerate(states)
        )
        return tuple(t for _atom, t in by_atom)

    def witness_ids(self, states: Sequence[int]) -> tuple[int, ...]:
        """Stable witness identity: tuple positions, in atom order."""
        by_atom = sorted(
            (self.atom_of_stage[stage], self.tuple_ids[stage][state])
            for stage, state in enumerate(states)
        )
        return tuple(i for _atom, i in by_atom)

    def verify(self) -> None:
        """Check structural invariants; raise ``AssertionError`` on breakage.

        Intended for tests and for debugging custom constructions
        (:mod:`repro.dp.direct`, :mod:`repro.dp.theta`):

        * parent indexes precede their children (serialised order);
        * each alive state has one connector per child branch, and every
          connector entry references an alive state of that branch with
          the correct cached minimum and entry values;
        * ``pi1`` equals the product of the branch minima;
        * the root connectors cover exactly the root stages and
          ``best_weight`` matches their minima.
        """
        dioid = self.dioid
        times = dioid.times
        for stage in range(self.num_stages):
            parent = self.parent_stage[stage]
            assert parent < stage, "stages must be serialised parents-first"
            branch_count = len(self.children_stages[stage])
            for state in range(len(self.tuples[stage])):
                conns = self.child_conns[stage][state]
                assert len(conns) == branch_count
                pi = dioid.one
                for conn, child in zip(conns, self.children_stages[stage]):
                    assert conn.stage == child
                    assert conn.min_entry == min(conn.entries)
                    for key, child_state, value in conn.entries:
                        assert 0 <= child_state < len(self.tuples[child])
                        expected = times(
                            self.values[child][child_state],
                            self.pi1[child][child_state],
                        )
                        assert key == dioid.key(expected)
                        assert value == expected
                    pi = times(pi, conn.min_value)
                assert self.pi1[stage][state] == pi
        if not self.is_empty():
            assert set(self.root_conn) == set(self.root_stages)
            best = dioid.one
            for root in self.root_stages:
                best = times(best, self.root_conn[root].min_value)
            assert best == self.best_weight

    def __repr__(self) -> str:
        return (
            f"TDP(stages={self.num_stages}, states={self.num_states()}, "
            f"connectors={self.num_connectors}, best={self.best_weight!r})"
        )
