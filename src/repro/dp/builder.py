"""Bottom-up construction of T-DP problems from a join tree (Eq. 2 / Eq. 7).

Processing stages in reverse serialised order (children before parents)
computes, per state, ``pi1`` — the weight of the best completion of the
subtree below it — while grouping alive states into the shared
:class:`~repro.dp.graph.ChoiceSet` connectors of the equi-join encoding.
States whose ``pi1`` would be ``zero`` (no join partner in some branch)
are pruned immediately, which is the semi-join reduction of Yannakakis
specialised to the tropical (or any) semiring, as Section 3 observes.

Total cost is O(l * n) data complexity: one pass over every relation
plus hash grouping; nothing is sorted (TTF optimality).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.data.database import Database
from repro.dp.graph import ChoiceSet, TDP
from repro.query.cq import ConjunctiveQuery
from repro.query.jointree import JoinTree, build_join_tree
from repro.ranking.dioid import TROPICAL, SelectiveDioid

#: Lift signature: (atom, tuple_values, raw_weight) -> dioid value.
WeightLift = Callable[[Any, tuple, Any], Any]


def default_lift(_atom, _values, raw_weight):
    """Identity lift: relation weights already live in the dioid domain."""
    return raw_weight


def build_tdp(
    database: Database,
    join_tree: JoinTree,
    dioid: SelectiveDioid = TROPICAL,
    lift: WeightLift | None = None,
    share_connectors: bool = True,
) -> TDP:
    """Materialise the T-DP state space for an acyclic (full) CQ.

    ``lift`` converts a stored tuple weight into a dioid value (identity
    by default); ``share_connectors=False`` disables the Fig 3 sharing by
    giving every parent state a private copy of its connector — only used
    by the encoding ablation benchmark, never in normal operation.
    """
    if lift is None:
        lift = default_lift
    query = join_tree.query
    order = join_tree.order
    num_stages = len(order)
    stage_of_atom = {atom_idx: s for s, atom_idx in enumerate(order)}
    parent_stage = [
        -1 if join_tree.parent[atom_idx] == -1 else stage_of_atom[join_tree.parent[atom_idx]]
        for atom_idx in order
    ]
    tdp = TDP(
        dioid,
        atom_of_stage=order,
        parent_stage=parent_stage,
        query=query,
        join_tree=join_tree,
    )

    # Join-key column positions, per stage: within the stage's own atom
    # (used to group its states) and within the parent's atom (used to
    # look up the child connector from a parent state).
    own_key_positions: list[tuple[int, ...]] = []
    parent_key_positions: list[tuple[int, ...]] = []
    for stage, atom_idx in enumerate(order):
        atom = query.atoms[atom_idx]
        shared = join_tree.shared_variables(atom_idx)
        own_key_positions.append(atom.positions_of(shared))
        if parent_stage[stage] == -1:
            parent_key_positions.append(())
        else:
            parent_atom = query.atoms[join_tree.parent[atom_idx]]
            parent_key_positions.append(parent_atom.positions_of(shared))

    dioid_one = dioid.one
    times = dioid.times
    key_of = dioid.key
    identity_lift = lift is default_lift
    next_uid = 0

    # conn_map[c]: join key -> ChoiceSet over stage c's alive states.
    # Single-column join keys use the bare value instead of a 1-tuple
    # (a measurable constant-factor win on the TTF-critical path).
    conn_map: list[dict] = [dict() for _ in range(num_stages)]

    for stage in reversed(range(num_stages)):
        atom = query.atoms[order[stage]]
        relation = database[atom.relation_name]
        child_list = tdp.children_stages[stage]
        check_repeats = atom.has_repeated_variables()

        stage_tuples = tdp.tuples[stage]
        stage_ids = tdp.tuple_ids[stage]
        stage_values = tdp.values[stage]
        stage_pi1 = tdp.pi1[stage]
        stage_conns = tdp.child_conns[stage]

        # Per child branch: (single_column_or_None, positions, conn_map).
        child_lookups = [
            (
                parent_key_positions[c][0]
                if len(parent_key_positions[c]) == 1
                else None,
                parent_key_positions[c],
                conn_map[c],
            )
            for c in child_list
        ]

        for tuple_id, (values, raw_weight) in enumerate(relation.rows()):
            if check_repeats and not atom.satisfies_repeats(values):
                continue
            pi = dioid_one
            conns: list[ChoiceSet] = []
            dead = False
            for single, positions, cmap in child_lookups:
                if single is None:
                    conn = cmap.get(tuple(values[p] for p in positions))
                else:
                    conn = cmap.get(values[single])
                if conn is None:
                    dead = True
                    break
                conns.append(conn)
                pi = times(pi, conn.min_value)
            if dead:
                continue
            if not share_connectors and conns:
                private = []
                for conn in conns:
                    private.append(
                        ChoiceSet(next_uid, conn.stage, list(conn.entries))
                    )
                    next_uid += 1
                conns = private
            stage_tuples.append(values)
            stage_ids.append(tuple_id)
            stage_values.append(
                raw_weight if identity_lift else lift(atom, values, raw_weight)
            )
            stage_pi1.append(pi)
            stage_conns.append(tuple(conns))

        # Group the alive states of this stage by their join key with the
        # parent (the empty key for root stages: a single connector).
        positions = own_key_positions[stage]
        single = positions[0] if len(positions) == 1 else None
        groups: dict = {}
        for state, values in enumerate(stage_tuples):
            entry_value = times(stage_values[state], stage_pi1[state])
            entry = (key_of(entry_value), state, entry_value)
            if single is None:
                join_key = tuple(values[p] for p in positions)
            else:
                join_key = values[single]
            bucket = groups.get(join_key)
            if bucket is None:
                groups[join_key] = [entry]
            else:
                bucket.append(entry)
        stage_conn_map = conn_map[stage]
        for join_key, entries in groups.items():
            stage_conn_map[join_key] = ChoiceSet(next_uid, stage, entries)
            next_uid += 1

    tdp.num_connectors = next_uid

    # Virtual start state: one branch per root stage.
    best = dioid_one
    complete = True
    for root in tdp.root_stages:
        conn = conn_map[root].get(())
        if conn is None:
            complete = False
            break
        tdp.root_conn[root] = conn
        best = times(best, conn.min_value)
    tdp.best_weight = best if complete else dioid.zero
    if not complete:
        tdp.root_conn = {}
    return tdp


def build_tdp_for_query(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
    lift: WeightLift | None = None,
    root: int | None = None,
) -> TDP:
    """Convenience: GYO join tree + bottom-up phase for an acyclic CQ."""
    tree = build_join_tree(query, root=root)
    return build_tdp(database, tree, dioid=dioid, lift=lift)
