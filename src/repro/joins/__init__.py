"""Join algorithms: the substrates and baselines of the paper.

* :mod:`repro.joins.hash_join` — binary hash joins and semi-joins, the
  building blocks of Yannakakis.
* :mod:`repro.joins.yannakakis` — the classic acyclic-CQ algorithm
  (semi-join reduction + backtracking join), used by the Batch baseline
  and as an independent test oracle for the T-DP pipeline.
* :mod:`repro.joins.generic_join` — a worst-case optimal join in the
  NPRR/Generic-Join family (Section 9.1.1's comparison point), also used
  to materialise decomposition bags.
* :mod:`repro.joins.rank_join` — an HRJN-style top-k rank join
  (Section 9.1.3's comparison point).
"""

from repro.joins.generic_join import build_trie, generic_join
from repro.joins.hash_join import hash_join, semijoin
from repro.joins.rank_join import RankJoin, rank_join_enumerate
from repro.joins.yannakakis import yannakakis

__all__ = [
    "hash_join",
    "semijoin",
    "yannakakis",
    "generic_join",
    "build_trie",
    "RankJoin",
    "rank_join_enumerate",
]
