"""An HRJN-style Rank-Join operator (the Section 9.1.3 comparison point).

Rank-Join / J* [63, 80] pull input tuples in *decreasing* weight order
(they target max-sum top-k), join each new arrival against the tuples
seen so far on the other side, and emit a buffered result once its
weight is at least the threshold

    τ = max( last_left + first_right,  first_left + last_right ),

the best score any unseen combination could still achieve.  The cost
model of that literature counts sorted accesses; the paper's point
(instance I2, Fig 19) is that the *computational* cost — the joined
combinations buffered before the top result can be emitted — can be
Ω((n-1)^(l-1)) even when any-k needs only linear time.

Operators compose left-deep: the output stream of a :class:`RankJoin`
is itself sorted by decreasing weight.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.util.counters import OpCounter

#: Stream item: (weight, assignment) with assignment a dict var -> value.
Item = tuple[float, dict]


def _relation_stream(relation: Relation, atom: Atom) -> Iterator[Item]:
    """Tuples of one atom as (weight, assignment), heaviest first."""
    tuples = relation.tuples
    weights = relation.weights
    order = sorted(
        range(len(tuples)), key=lambda i: weights[i], reverse=True
    )
    check = atom.has_repeated_variables()
    for i in order:
        values = tuples[i]
        if check and not atom.satisfies_repeats(values):
            continue
        yield (weights[i], dict(zip(atom.variables, values)))


class RankJoin:
    """Binary HRJN over two descending-sorted streams of assignments."""

    def __init__(
        self,
        left: Iterator[Item],
        right: Iterator[Item],
        join_variables: tuple[str, ...],
        counter: OpCounter | None = None,
    ):
        self.left = left
        self.right = right
        self.join_variables = join_variables
        self.counter = counter
        # Seen tuples per side, hashed by join key.
        self._seen: tuple[dict, dict] = ({}, {})
        self._first: list[float] = [-math.inf, -math.inf]
        self._last: list[float] = [math.inf, math.inf]
        self._exhausted: list[bool] = [False, False]
        self._output: list[tuple] = []  # max-heap via negated weights
        self._seq = 0

    def _key(self, assignment: dict) -> tuple:
        return tuple(assignment[v] for v in self.join_variables)

    def _pull(self, side: int) -> None:
        stream = self.left if side == 0 else self.right
        item = next(stream, None)
        if item is None:
            self._exhausted[side] = True
            self._last[side] = -math.inf
            return
        weight, assignment = item
        if self.counter is not None:
            self.counter.tuples_scanned += 1
        if self._first[side] == -math.inf:
            self._first[side] = weight
        self._last[side] = weight
        key = self._key(assignment)
        self._seen[side].setdefault(key, []).append((weight, assignment))
        for other_weight, other_assignment in self._seen[1 - side].get(key, []):
            merged = dict(other_assignment)
            merged.update(assignment)
            total = weight + other_weight
            self._seq += 1
            heapq.heappush(self._output, (-total, self._seq, merged))
            if self.counter is not None:
                self.counter.intermediate_tuples += 1

    def _threshold(self) -> float:
        # Corner bound: the best total any unseen combination can reach.
        # A combination with an unseen tuple from a non-exhausted side is
        # bounded by that side's frontier plus the other side's maximum.
        bounds = []
        for side in (0, 1):
            if self._exhausted[side]:
                continue  # no unseen tuples remain on this side
            if self._last[side] == math.inf or self._first[1 - side] == -math.inf:
                return math.inf  # a side has not produced its maximum yet
            bounds.append(self._last[side] + self._first[1 - side])
        if not bounds:
            return -math.inf  # both exhausted: drain the buffer
        return max(bounds)

    def __iter__(self) -> Iterator[Item]:
        return self

    def __next__(self) -> Item:
        while True:
            if self._output:
                top = -self._output[0][0]
                if top >= self._threshold():
                    _neg, _seq, assignment = heapq.heappop(self._output)
                    return (top, assignment)
            if all(self._exhausted):
                if self._output:
                    _neg, _seq, assignment = heapq.heappop(self._output)
                    return (-_neg, assignment)
                raise StopIteration
            # Alternate pulls, preferring the side with the larger frontier.
            side = 0 if self._last[0] >= self._last[1] else 1
            if self._exhausted[side]:
                side = 1 - side
            self._pull(side)


def rank_join_enumerate(
    database: Database,
    query: ConjunctiveQuery,
    counter: OpCounter | None = None,
) -> Iterator[Item]:
    """Left-deep Rank-Join plan over the query atoms, heaviest-total first.

    Joins atom 1 with atom 2, the result with atom 3, and so on —
    the standard composition in the top-k join literature.
    """
    atoms = query.atoms
    stream: Iterator[Item] = _relation_stream(database[atoms[0].relation_name], atoms[0])
    bound = set(atoms[0].variable_set())
    for atom in atoms[1:]:
        shared = tuple(sorted(bound & atom.variable_set()))
        right = _relation_stream(database[atom.relation_name], atom)
        stream = RankJoin(stream, right, shared, counter=counter)
        bound |= atom.variable_set()
    return stream
