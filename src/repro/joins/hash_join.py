"""Binary hash joins and semi-joins.

These are the textbook building blocks used by the Yannakakis oracle and
by the decomposition bag materialisation; the any-k algorithms
themselves never materialise binary joins (they work on the O(l*n)
connector encoding instead).
"""

from __future__ import annotations

from typing import Sequence

from repro.data.index import HashIndex
from repro.data.relation import Relation


def semijoin(
    left: Relation,
    left_columns: Sequence[int],
    right: Relation,
    right_columns: Sequence[int],
    name: str | None = None,
) -> Relation:
    """``left ⋉ right``: keep left tuples with a join partner in right."""
    if len(left_columns) != len(right_columns):
        raise ValueError("join column lists must have equal length")
    right_keys = {
        tuple(values[c] for c in right_columns) for values in right.tuples
    }
    out = Relation(name or left.name, left.arity)
    for values, weight in left.rows():
        if tuple(values[c] for c in left_columns) in right_keys:
            out.tuples.append(values)
            out.weights.append(weight)
    return out


def hash_join(
    left: Relation,
    left_columns: Sequence[int],
    right: Relation,
    right_columns: Sequence[int],
    name: str = "join",
    combine_weights=None,
) -> Relation:
    """``left ⋈ right`` concatenating the tuples; weights combined by ``+``.

    The output arity is ``left.arity + right.arity`` (join columns are
    kept on both sides, as the decomposition bags need all variables).
    ``combine_weights(lw, rw)`` defaults to addition (tropical times).
    """
    if combine_weights is None:
        combine_weights = lambda lw, rw: lw + rw  # noqa: E731 (hot path)
    index = HashIndex(right, right_columns)
    out = Relation(name, left.arity + right.arity)
    left_cols = tuple(left_columns)
    for values, weight in left.rows():
        key = tuple(values[c] for c in left_cols)
        for position in index.lookup(key):
            out.tuples.append(values + right.tuples[position])
            out.weights.append(combine_weights(weight, right.weights[position]))
    return out
