"""A worst-case optimal join in the NPRR / Generic-Join family [82, 83].

Variables are processed in a global order; each atom stores its tuples
in a trie keyed by the atom's variables sorted by that global order.  At
each variable the algorithm intersects the candidate value sets of all
atoms containing it (iterating the smallest set, probing the others),
which yields the AGM-bound O(n^ρ*) running time.

Used (a) as the paper's batch comparison point for cyclic queries
(Section 9.1.1 / Fig 17 shows it is *sub-optimal for ranked retrieval*:
it must produce the full quadratic output of instance I1 before the top
4-cycle can be emitted) and (b) to materialise the bags of generic
hypertree decompositions.
"""

from __future__ import annotations

from itertools import product as cartesian_product
from typing import Any, Sequence

from repro.data.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import TROPICAL, SelectiveDioid
from repro.util.counters import OpCounter

#: Trie: nested dicts value -> subtrie; the deepest level maps the last
#: value to a list of (tuple_id, weight) pairs (duplicates preserved).
Trie = dict


def build_trie(
    relation, positions: Sequence[int], repeats_atom=None
) -> Trie:
    """Index ``relation`` by the columns in ``positions`` (in that order)."""
    root: Trie = {}
    last = len(positions) - 1
    for tuple_id, (values, weight) in enumerate(relation.rows()):
        if repeats_atom is not None and not repeats_atom.satisfies_repeats(values):
            continue
        node = root
        for depth, position in enumerate(positions):
            key = values[position]
            if depth == last:
                node.setdefault(key, []).append((tuple_id, weight))
            else:
                node = node.setdefault(key, {})
    return root


def generic_join(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
    variable_order: Sequence[str] | None = None,
    counter: OpCounter | None = None,
) -> list[tuple[Any, tuple, tuple]]:
    """Full output of any full CQ (cyclic or not).

    Returns ``(weight, assignment, witness_ids)`` triples where
    ``assignment`` follows ``query.variables`` and ``witness_ids`` lists
    the chosen tuple position per atom.  Duplicate tuples in a relation
    yield one output per distinct witness, matching the T-DP semantics.
    """
    variables = list(variable_order) if variable_order else list(query.variables)
    if set(variables) != set(query.variables):
        raise ValueError("variable order must cover exactly the query variables")
    global_position = {v: i for i, v in enumerate(variables)}

    atoms = query.atoms
    # Per atom: its distinct variables sorted by global order, the column
    # positions realising them, and the trie.
    atom_vars: list[list[str]] = []
    tries: list[Trie] = []
    for atom in atoms:
        ordered = sorted(atom.variable_set(), key=global_position.__getitem__)
        positions = [atom.variables.index(v) for v in ordered]
        atom_vars.append(ordered)
        tries.append(
            build_trie(
                database[atom.relation_name],
                positions,
                repeats_atom=atom if atom.has_repeated_variables() else None,
            )
        )

    num_atoms = len(atoms)
    num_vars = len(variables)
    # participants[level]: atoms whose next variable is variables[level],
    # given that atom variables are consumed in global order.
    participants: list[list[int]] = [[] for _ in range(num_vars)]
    for a, ordered in enumerate(atom_vars):
        for var in ordered:
            participants[global_position[var]].append(a)

    results: list[tuple[Any, tuple, tuple]] = []
    assignment: list[Any] = [None] * num_vars
    nodes: list[Any] = list(tries)  # current trie node per atom
    times = dioid.times
    # Output assignments always follow query.variables, independent of
    # the processing order.
    output_positions = [global_position[v] for v in query.variables]

    def recurse(level: int) -> None:
        if level == num_vars:
            # All variables bound: every atom node is its leaf list.
            output = tuple(assignment[p] for p in output_positions)
            for combo in cartesian_product(*nodes):
                weight = dioid.one
                witness = []
                for tuple_id, tuple_weight in combo:
                    weight = times(weight, tuple_weight)
                    witness.append(tuple_id)
                results.append((weight, output, tuple(witness)))
            return
        active = participants[level]
        # Iterate the smallest candidate set, probe the others.
        smallest = min(active, key=lambda a: len(nodes[a]))
        saved = [nodes[a] for a in active]
        for value, sub in nodes[smallest].items():
            if counter is not None:
                counter.tuples_scanned += 1
            ok = True
            for a in active:
                if a == smallest:
                    continue
                nxt = nodes[a].get(value)
                if nxt is None:
                    ok = False
                    break
                nodes[a] = nxt
            if ok:
                nodes[smallest] = sub
                assignment[level] = value
                recurse(level + 1)
            for a, node in zip(active, saved):
                nodes[a] = node
        assignment[level] = None

    recurse(0)
    return results
