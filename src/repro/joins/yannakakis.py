"""The Yannakakis algorithm for full acyclic CQs (Section 2.4, [103]).

Semi-join reduction (bottom-up then top-down over a join tree) followed
by a backtracking join produces the full output in O(n + |out|) data
complexity.  This implementation is deliberately *independent* of the
T-DP machinery — it operates directly on relations — so the test suite
can use it as an oracle for the any-k enumerators, and the Batch
baseline's claims ("full result, then sort") are grounded in a real
implementation of the classic algorithm.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.data.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.jointree import JoinTree, build_join_tree
from repro.ranking.dioid import TROPICAL, SelectiveDioid
from repro.util.counters import OpCounter


def yannakakis(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
    tree: JoinTree | None = None,
    counter: OpCounter | None = None,
) -> list[tuple[Any, tuple]]:
    """Full output of an acyclic full CQ as ``(weight, assignment)`` pairs.

    ``assignment`` is a tuple of values aligned with ``query.variables``;
    ``weight`` aggregates the witness's tuple weights with the dioid.
    The output order is unspecified (this is the *unranked* algorithm).
    """
    if tree is None:
        tree = build_join_tree(query)
    order = tree.order
    num_stages = len(order)
    atoms = [query.atoms[a] for a in order]
    parent = {
        stage: (
            -1
            if tree.parent[order[stage]] == -1
            else order.index(tree.parent[order[stage]])
        )
        for stage in range(num_stages)
    }
    shared = [tree.shared_variables(order[stage]) for stage in range(num_stages)]
    own_positions = [
        atoms[stage].positions_of(shared[stage]) for stage in range(num_stages)
    ]
    parent_positions = [
        ()
        if parent[stage] == -1
        else atoms[parent[stage]].positions_of(shared[stage])
        for stage in range(num_stages)
    ]

    # Working tuple lists per stage (indices into the base relations).
    # Tuple/weight lists are bound once up front: element-wise access in
    # the backtracking join below must not re-enter the (backend-aware)
    # Relation properties per lookup.
    relations = [database[atom.relation_name] for atom in atoms]
    rel_tuples = [relation.tuples for relation in relations]
    rel_weights = [relation.weights for relation in relations]
    alive: list[list[int]] = []
    for stage, relation in enumerate(relations):
        atom = atoms[stage]
        if atom.has_repeated_variables():
            alive.append(
                [
                    i
                    for i, values in enumerate(rel_tuples[stage])
                    if atom.satisfies_repeats(values)
                ]
            )
        else:
            alive.append(list(range(len(relation))))

    def keys_of(stage: int, positions: tuple[int, ...]) -> set:
        tuples = rel_tuples[stage]
        return {
            tuple(tuples[i][p] for p in positions)
            for i in alive[stage]
        }

    # Bottom-up semi-join pass: child reduces parent.
    for stage in reversed(range(num_stages)):
        p = parent[stage]
        if p == -1:
            continue
        child_keys = keys_of(stage, own_positions[stage])
        positions = parent_positions[stage]
        tuples = rel_tuples[p]
        alive[p] = [
            i
            for i in alive[p]
            if tuple(tuples[i][q] for q in positions) in child_keys
        ]
    # Top-down semi-join pass: parent reduces child.
    for stage in range(num_stages):
        p = parent[stage]
        if p == -1:
            continue
        parent_keys = keys_of(p, parent_positions[stage])
        positions = own_positions[stage]
        tuples = rel_tuples[stage]
        alive[stage] = [
            i
            for i in alive[stage]
            if tuple(tuples[i][q] for q in positions) in parent_keys
        ]

    # Index alive tuples of each stage by the join key with the parent.
    buckets: list[dict[tuple, list[int]]] = []
    for stage in range(num_stages):
        positions = own_positions[stage]
        tuples = rel_tuples[stage]
        index: dict[tuple, list[int]] = {}
        for i in alive[stage]:
            key = tuple(tuples[i][p] for p in positions)
            index.setdefault(key, []).append(i)
        buckets.append(index)

    variables = query.variables
    var_position = {v: i for i, v in enumerate(variables)}
    results: list[tuple[Any, tuple]] = []
    times = dioid.times

    assignment: list[Any] = [None] * len(variables)
    chosen_weight: list[Any] = [dioid.one] * (num_stages + 1)
    iterators: list[Iterator | None] = [None] * num_stages

    def stage_candidates(stage: int) -> Iterator[int]:
        p = parent[stage]
        if p == -1:
            yield from buckets[stage].get((), [])
            return
        parent_tuple = rel_tuples[p][chosen_index[p]]
        key = tuple(parent_tuple[q] for q in parent_positions[stage])
        yield from buckets[stage].get(key, [])

    chosen_index: list[int] = [-1] * num_stages
    level = 0
    iterators[0] = stage_candidates(0)
    while level >= 0:
        tuple_index = next(iterators[level], None)
        if tuple_index is None:
            level -= 1
            continue
        chosen_index[level] = tuple_index
        values = rel_tuples[level][tuple_index]
        for var, value in zip(atoms[level].variables, values):
            assignment[var_position[var]] = value
        chosen_weight[level + 1] = times(
            chosen_weight[level], rel_weights[level][tuple_index]
        )
        if counter is not None:
            counter.intermediate_tuples += 1
        if level == num_stages - 1:
            results.append((chosen_weight[num_stages], tuple(assignment)))
        else:
            level += 1
            iterators[level] = stage_candidates(level)
    return results
