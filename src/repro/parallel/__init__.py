"""Parallel execution layer: fragment-sharded T-DPs with a ranked merge.

The paper makes the *enumeration* delay optimal, but on real hardware
the dominant wall-clock cost of a cold query is the O(n) preprocessing
phase — and it is embarrassingly partitionable.  This subsystem
partitions one *anchor* atom's relation into disjoint fragments, builds
one bound T-DP per fragment (each strictly smaller at the anchor stage,
the fragment-independent stages shared structurally), and merges the
per-fragment any-k streams with a ranked k-way merge whose output is
bit-identical to the unsharded enumeration (tie groups aside — see
:mod:`repro.parallel.sharder` for the tie-break modes).

Layout:

* :mod:`repro.parallel.sharder` — fragment planning (:class:`ShardSpec`,
  :class:`Sharder`, anchor-atom heuristic, range/hash partitioning);
* :mod:`repro.parallel.build` — the fragment preprocessor
  (:class:`ParallelPreprocessor`): a fused direct-to-compiled key-space
  builder plus thread-/process-pool worker modes;
* :mod:`repro.parallel.physical` — :class:`ShardedPhysical`, the engine
  integration (``Engine.prepare(..., shards=N)`` binds through it);
* :class:`repro.parallel.merge.ShardMerge` — the ranked k-way merge over
  per-fragment enumerators (built on :class:`repro.anyk.merge.RankedMerge`).
"""

from repro.parallel.build import ParallelPreprocessor
from repro.parallel.merge import ShardMerge
from repro.parallel.physical import ShardedPhysical, bind_sharded
from repro.parallel.sharder import Fragment, Sharder, ShardPlan, ShardSpec

__all__ = [
    "Fragment",
    "ParallelPreprocessor",
    "ShardMerge",
    "ShardPlan",
    "ShardSpec",
    "Sharder",
    "ShardedPhysical",
    "bind_sharded",
]
