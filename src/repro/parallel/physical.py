"""ShardedPhysical: the bound form of a sharded logical plan.

Holds one built fragment per shard — compiled flat cores on the fast
path, object-graph T-DPs under the canonical tie-break or a generic
dioid — and starts enumeration runs that merge the per-fragment any-k
streams through :class:`~repro.parallel.merge.ShardMerge`.  Like every
:class:`~repro.engine.plan.PhysicalPlan`, the built structures are
read-only during enumeration and algorithm-independent: the engine
shares one sharded bind across all any-k variants, cursors, and serving
sessions of a database version, and the version-stamp scheme invalidates
it exactly like an unsharded plan.
"""

from __future__ import annotations

from typing import Iterator

from repro.data.database import Database
from repro.engine.plan import LogicalPlan, PhysicalPlan
from repro.enumeration.result import QueryResult
from repro.obs.trace import NULL_TRACER
from repro.parallel.build import (
    FragmentRuntime,
    ParallelPreprocessor,
    PreprocessResult,
)
from repro.parallel.merge import ShardConcat, ShardMerge
from repro.parallel.sharder import Sharder, ShardPlan
from repro.util.counters import OpCounter


class ShardedPhysical(PhysicalPlan):
    """Fragment-sharded bound plan (see module docstring)."""

    def __init__(
        self,
        logical: LogicalPlan,
        database: Database,
        shard_plan: ShardPlan,
        result: PreprocessResult,
    ):
        super().__init__(logical, database)
        self.shard_plan = shard_plan
        self.fragments = result.fragments
        self.mode = result.mode
        self.workers = result.workers
        self.shared_seconds = result.shared_seconds
        self.notes = list(result.notes)
        #: TieBreakingDioid fragments rank under (canonical mode only).
        self.tie = result.tie
        #: The most recent merge run (observability: per-shard emit
        #: attribution is read live from its ``member_counts``).
        self._last_merge: tuple | None = None

    @property
    def shard_count(self) -> int:
        return len(self.fragments)

    def close(self) -> None:
        """Drop fragment references (releases mmap views on warm plans)."""
        self._last_merge = None
        self.fragments = []

    def iter(
        self,
        counter: OpCounter | None = None,
        algorithm: str | None = None,
    ) -> Iterator[QueryResult]:
        algorithm = (algorithm or self.logical.algorithm).lower()
        members = []
        member_fragments = []
        for fragment in self.fragments:
            if fragment.empty:
                continue
            members.append(fragment.make_enumerator(algorithm, counter=counter))
            member_fragments.append(fragment.index)
        merge_cls = ShardConcat if algorithm == "batch_nosort" else ShardMerge
        merge = merge_cls(members, counter=counter)
        self._last_merge = (merge, member_fragments)
        head = self.logical.query.head
        tie = self.tie

        def generate() -> Iterator[QueryResult]:
            base_value = None if tie is None else tie.base_value
            for result in merge:
                yield QueryResult(
                    result.weight if base_value is None else base_value(result.weight),
                    result.assignment,
                    head,
                    witness_ids=result.witness_ids,
                    witness=result.witness,
                )

        return generate()

    def last_shard_counts(self) -> list[int] | None:
        """Per-shard emitted counts of the most recent merge run.

        Diagnostic, intentionally unsynchronised: the bound plan is
        shared across cursors/sessions by design, so "most recent"
        means whichever consumer last called :meth:`iter` — concurrent
        consumers will see each other's runs here.  Per-request
        attribution belongs to the caller's own :class:`OpCounter`.
        """
        if self._last_merge is None:
            return None
        merge, member_fragments = self._last_merge
        counts = [0] * len(self.fragments)
        for index, count in zip(member_fragments, merge.shard_counts()):
            counts[index] = count
        return counts

    def _physical_stats(self) -> list[str]:
        plan = self.shard_plan
        lines = plan.explain(indent="  ")
        lines.append(
            f"  fragment builds ({self.mode}): shared lower stages "
            f"{self.shared_seconds * 1e3:.2f} ms"
        )
        total_entries = 0
        compiled_fragments = 0
        for fragment in self.fragments:
            status = " (EMPTY)" if fragment.empty else ""
            if fragment.compiled is not None:
                entries = fragment.compiled.stats()["entries"]
                total_entries += entries
                compiled_fragments += 1
                flavour = f"compiled ({entries} flat entries)"
            else:
                flavour = "object"
            lines.append(
                f"    fragment {fragment.index}: {fragment.anchor_states()} anchor states, "
                f"{flavour}, {fragment.seconds * 1e3:.2f} ms{status}"
            )
        if compiled_fragments:
            # Fragment cores alias the shared lower stages, so the sum
            # attributes shared entries to every fragment reaching them.
            lines.append(
                f"  compiled cores: {total_entries} flat entries across "
                f"{compiled_fragments} fragment(s), shared lower stages "
                f"counted per fragment"
            )
        for note in self.notes:
            if note not in plan.notes:
                lines.append(f"  note: {note}")
        return lines

    def shard_stats(self) -> dict:
        """Observability snapshot for serving ``stats`` / benchmarks."""
        return {
            "shards": self.shard_count,
            "anchor_atom": self.shard_plan.anchor_atom,
            "strategy": self.shard_plan.spec.strategy,
            "tie_break": self.shard_plan.spec.tie_break,
            "mode": self.mode,
            "workers": self.workers,
            "empty_fragments": sum(1 for f in self.fragments if f.empty),
            "fragment_states": [f.anchor_states() for f in self.fragments],
            "fragment_entries": [
                None if f.compiled is None else f.compiled.stats()["entries"]
                for f in self.fragments
            ],
            "fragment_build_ms": [
                round(f.seconds * 1e3, 3) for f in self.fragments
            ],
            "shared_lower_ms": round(self.shared_seconds * 1e3, 3),
            "last_shard_counts": self.last_shard_counts(),
        }


def bind_sharded(
    logical: LogicalPlan,
    database: Database,
    indexes=None,
    core_cache=None,
    tracer=NULL_TRACER,
) -> ShardedPhysical:
    """Preprocess a sharded acyclic plan: plan fragments, build, wrap.

    With a ``core_cache``, a fresh ``.core`` entry for this plan's
    persistence key replaces the entire fragment build: the mapped
    per-fragment cores alias the file's shared entry pool and stage
    arrays exactly as the cold build's fragments alias its in-process
    lists, so ranked output is bit-identical.  Sharding is still
    *planned* (cheap, metadata-only) — the stored cores are validated
    against the fresh plan's anchor stage and fragment count.

    An *explicitly* requested build mode (``parallel="fused"/"thread"/
    "process"``) always builds with that mode: the warm start only
    replaces the build under the default ``"auto"`` policy, where the
    engine is free to pick the fastest path.  Cold ``auto`` builds
    still write the core so the next process can warm-start.
    """
    spec = logical.shard
    flat_path = (
        getattr(logical.dioid, "key_is_value", False)
        and spec.tie_break == "arrival"
    )
    sharder = Sharder(database, indexes)
    with tracer.span("shard.plan") as span:
        shard_plan = sharder.plan(logical, spec, flat_path)
        span.set(
            shards=len(shard_plan.fragments),
            anchor_atom=shard_plan.anchor_atom,
        )
    key = None
    if core_cache is not None and flat_path and spec.parallel == "auto":
        from repro.dp.corebuf import core_key

        key = core_key(logical.query, logical.dioid, spec.cache_key())
        with tracer.span("core.load", fragments=len(shard_plan.fragments)) as span:
            cores = core_cache.load_fragment_cores(
                key,
                database,
                logical.query,
                shard_plan.join_tree,
                shard_plan.anchor_stage,
                len(shard_plan.fragments),
            )
            span.set(hit=cores is not None)
        if cores is not None:
            fragments = [
                FragmentRuntime(
                    index, core, None, 0.0, shard_plan.anchor_stage
                )
                for index, core in enumerate(cores)
            ]
            result = PreprocessResult(
                fragments,
                "mmap",
                shard_plan.workers,
                0.0,
                list(shard_plan.notes) + ["warm start from compiled core file"],
                None,
            )
            return ShardedPhysical(logical, database, shard_plan, result)
    with tracer.span("fragments.build") as span:
        result = ParallelPreprocessor(
            database, logical, shard_plan, tracer=tracer
        ).build()
        span.set(mode=result.mode, workers=result.workers)
    if (
        key is not None
        and result.tie is None
        and result.fragments
        and all(f.compiled is not None for f in result.fragments)
    ):
        from repro.dp.corebuf import export_fragments

        from repro.engine.plan import warm_meta

        with tracer.span("core.store", fragments=len(result.fragments)):
            meta, data = export_fragments(
                [f.compiled for f in result.fragments], shard_plan.anchor_stage
            )
            core_cache.store(
                key, database, meta, data, warm=warm_meta(logical)
            )
    return ShardedPhysical(logical, database, shard_plan, result)
