"""Multi-core preprocessing: fragment T-DPs built straight to flat arrays.

The unsharded bind builds an object-graph :class:`~repro.dp.graph.TDP`
(Python triples inside :class:`ChoiceSet` objects) and then lowers it to
a :class:`~repro.dp.flat.CompiledTDP`.  The parallel layer's fragment
builder skips the intermediate entirely for ``key_is_value`` dioids: it
lowers each stage *directly* into the compiled core's key-space arrays
(one bulk backend fetch per stage, native float arithmetic, grouped
entry pairs), which is what makes a sharded bind faster than the serial
one even on a single core.

Work sharing across fragments rests on one structural fact: the
bottom-up construction never propagates a root restriction downward, so
with the anchor at a component root **every non-anchor stage is
fragment-independent**.  The builder therefore runs in two phases:

* **phase A** (once): build all non-anchor stages — state arrays,
  connector entry pools, join-key maps — shared read-only by every
  fragment;
* **phase B** (per fragment): scan only the fragment's slice of the
  anchor relation, resolve child connectors against phase A's join-key
  maps, and emit a per-fragment root connector.

Per-fragment :class:`ShardCompiled` objects alias the shared uid-indexed
structures (entry pairs, lazily heapified Take2 orders, sorted lists,
REA heap templates), so ranking structures for shared connectors are
built once per database version — not once per fragment.

Execution modes (resolved by the :class:`~repro.parallel.sharder.Sharder`):

* ``fused``   — both phases in-process; the fastest single-core path.
* ``thread``  — phase B fragments fan out on a thread pool (the SQLite
  driver releases the GIL inside its C fetch path).
* ``process`` — phase A runs once in the parent and its pools travel to
  the workers through one shared-memory segment
  (:class:`repro.dp.corebuf.ShmPool`): the pool initializer ships the
  database recipe and the segment *name* once per worker, each task
  payload is just ``(fragment, shards)``, and workers alias the parent's
  float pools in place — zero array copies cross the pickle boundary in
  either direction (workers return compact per-fragment anchor arrays;
  the parent assembles the cores against its own phase A).  File-backed
  SQLite reopens once per worker, memory-backed relations ship by value
  once per worker.

Dioids without the ``key_is_value`` contract — and the ``canonical``
tie-break, which ranks fragments under the Section 6.3
:class:`~repro.ranking.dioid.TieBreakingDioid` — keep the generic
object-graph builder per fragment (:func:`build_object_fragments`).
"""

from __future__ import annotations

import pickle
import time
from array import array
from typing import Sequence

from repro.anyk.base import Enumerator, make_enumerator
from repro.data.database import Database
from repro.data.relation import Relation
from repro.dp.builder import build_tdp
from repro.dp.corebuf import LazyRows, ShmPool, pack_worker_lower, unpack_worker_lower
from repro.dp.flat import CompiledTDP
from repro.dp.graph import TDP
from repro.obs.trace import NULL_TRACER
from repro.parallel.sharder import Fragment, ShardPlan, stable_hash
from repro.query.jointree import JoinTree
from repro.ranking.dioid import SelectiveDioid, TieBreakingDioid
from repro.util import faults, vec

#: Total tries for the process-pool fragment build: the initial pool
#: plus one respawn after a dead worker.  A second crash falls through
#: to the fused in-process path via :meth:`ParallelPreprocessor._build_flat`.
POOL_BUILD_ATTEMPTS = 2


def _resilience_counters():
    # Imported on call, not at module load: ``repro.serve`` pulls in the
    # engine, which (through the sharded-bind path) pulls in this module.
    from repro.serve.resilience import COUNTERS

    return COUNTERS

#: Key-space transform lanes (see ``_key_lane``).
_LANE_ID, _LANE_NEG, _LANE_CALL = 0, 1, 2


def _key_lane(dioid: SelectiveDioid) -> int:
    """How raw weights map into key space for this ``key_is_value`` dioid.

    Tropical keys are the values themselves, max-plus keys are their
    negation; any other (hypothetical) additive float key falls back to
    calling ``dioid.key`` per row.
    """
    probes = (1.25, -3.5, 0.0)
    if all(dioid.key(p) == p for p in probes):
        return _LANE_ID
    if all(dioid.key(p) == -p for p in probes):
        return _LANE_NEG
    return _LANE_CALL


def _trailing_rows(
    relation: Relation, lo: int | None = None, hi: int | None = None
) -> list[tuple]:
    """Rows as flat tuples with the weight trailing (bulk, order-stable).

    Backend-stored, unmaterialised relations use the backend's bulk
    ``fetch_rows`` (a single rowid-range ``fetchall`` for SQLite);
    in-memory relations normalise their parallel lists once per stage.
    """
    backend = relation.backend
    if backend is not None and not relation.is_materialized:
        return backend.fetch_rows(relation.table, lo, hi)
    tuples = relation.tuples
    weights = relation.weights
    if lo is not None or hi is not None:
        tuples = tuples[lo:hi]
        weights = weights[lo:hi]
    return [t + (w,) for t, w in zip(tuples, weights)]


# -- the shared lower stages (phase A) -----------------------------------------


class SharedLower:
    """Phase A output: every fragment-independent stage, lowered flat.

    All structures are read-only once built.  Connector uids are
    assigned ``0 .. num_conns-1`` here; fragment root connectors extend
    the uid space from ``num_conns`` upward (one per fragment).
    """

    __slots__ = (
        "query", "tree", "dioid", "lane", "order", "num_stages",
        "parent_stage", "children_stages", "anchor_stage", "tuples",
        "tuple_ids", "values_key", "pi1_key", "child_uids", "conn_of",
        "pairs", "conn_stage", "conn_min", "conn_maps", "root_uid",
        "num_conns", "complete", "own_key_positions",
        "parent_key_positions", "arities", "seconds",
    )

    def __init__(self, query, tree: JoinTree, dioid: SelectiveDioid, anchor_stage: int):
        self.query = query
        self.tree = tree
        self.dioid = dioid
        self.lane = _key_lane(dioid)
        self.order = list(tree.order)
        self.num_stages = len(self.order)
        stage_of_atom = {a: s for s, a in enumerate(self.order)}
        self.parent_stage = [
            -1 if tree.parent[a] == -1 else stage_of_atom[tree.parent[a]]
            for a in self.order
        ]
        self.children_stages: list[list[int]] = [[] for _ in range(self.num_stages)]
        for stage, parent in enumerate(self.parent_stage):
            if parent != -1:
                self.children_stages[parent].append(stage)
        self.anchor_stage = anchor_stage
        if self.parent_stage[anchor_stage] != -1:
            raise ValueError("the anchor stage must be a component root")
        self.own_key_positions: list[tuple[int, ...]] = []
        self.parent_key_positions: list[tuple[int, ...]] = []
        for stage, atom_idx in enumerate(self.order):
            atom = query.atoms[atom_idx]
            shared = tree.shared_variables(atom_idx)
            self.own_key_positions.append(atom.positions_of(shared))
            if self.parent_stage[stage] == -1:
                self.parent_key_positions.append(())
            else:
                parent_atom = query.atoms[tree.parent[atom_idx]]
                self.parent_key_positions.append(parent_atom.positions_of(shared))
        self.arities = [query.atoms[a].arity for a in self.order]

        empty: list[list] = [[] for _ in range(self.num_stages)]
        self.tuples: list[list[tuple]] = [list(x) for x in empty]
        self.tuple_ids: list[list[int]] = [list(x) for x in empty]
        self.values_key: list[list[float]] = [list(x) for x in empty]
        self.pi1_key: list[list[float]] = [list(x) for x in empty]
        #: Flattened child connector uids per stage (branch-major).
        self.child_uids: list[list[int]] = [list(x) for x in empty]
        #: Connector uid governing stage ``s``, indexed by parent state
        #: (``None`` for root stages and for children of the anchor —
        #: those rows are fragment-specific).
        self.conn_of: list[list[int] | None] = [None] * self.num_stages
        #: uid -> unsorted (key, state) entry pairs.
        self.pairs: list[list[tuple[float, int]]] = []
        self.conn_stage: list[int] = []
        self.conn_min: list[float] = []
        #: Per stage: join key -> connector uid (phase B resolves the
        #: anchor's child branches against the anchor-children's maps).
        self.conn_maps: list[dict] = [dict() for _ in range(self.num_stages)]
        #: Root connector uids of *non-anchor* root stages.
        self.root_uid: dict[int, int] = {}
        self.num_conns = 0
        #: False when some non-anchor component is empty (then every
        #: fragment is empty regardless of its anchor rows).
        self.complete = True
        self.seconds = 0.0

    def child_lookups(self, stage: int):
        """Per child branch: (single_column, positions, conn_map)."""
        return [
            (
                self.parent_key_positions[c][0]
                if len(self.parent_key_positions[c]) == 1
                else None,
                self.parent_key_positions[c],
                self.conn_maps[c],
            )
            for c in self.children_stages[stage]
        ]


def build_shared_lower(
    database: Database, query, tree: JoinTree, dioid: SelectiveDioid, anchor_stage: int
) -> SharedLower:
    """Phase A: lower every non-anchor stage to key-space flat arrays.

    Mirrors :func:`repro.dp.builder.build_tdp` stage by stage — same row
    order, same alive filter, same left-fold weight aggregation — but in
    dioid key space, so the produced keys are the bit-exact ``key``
    image of the object builder's values (the PR-4 ``key_is_value``
    contract).
    """
    start = time.perf_counter()
    shared = SharedLower(query, tree, dioid, anchor_stage)
    lane = shared.lane
    identity = lane == _LANE_ID
    negate = lane == _LANE_NEG
    key_of = dioid.key

    for stage in reversed(range(shared.num_stages)):
        if stage == anchor_stage:
            continue
        atom = query.atoms[shared.order[stage]]
        relation = database[atom.relation_name]
        warity = atom.arity
        check_repeats = atom.has_repeated_variables()
        satisfies = atom.satisfies_repeats
        lookups = shared.child_lookups(stage)
        rows = _trailing_rows(relation)

        tuples_out = shared.tuples[stage]
        ids_out = shared.tuple_ids[stage]
        vk_out = shared.values_key[stage]
        pk_out = shared.pi1_key[stage]
        cu_out = shared.child_uids[stage]
        t_append = tuples_out.append
        i_append = ids_out.append
        v_append = vk_out.append
        p_append = pk_out.append
        c_append = cu_out.append

        own_pos = shared.own_key_positions[stage]
        own_single = own_pos[0] if len(own_pos) == 1 else None
        groups: dict = {}
        g_get = groups.get
        conn_min = shared.conn_min
        state = 0

        if len(lookups) == 1 and lookups[0][0] is not None and own_single is not None:
            # Hot path: one single-column child branch, single-column
            # own join key — the chain layout of path queries and
            # cycle-decomposition members.
            child_col, _positions, cmap = lookups[0]
            cm_get = cmap.get
            for tid, row in enumerate(rows):
                if check_repeats and not satisfies(row):
                    continue
                cu = cm_get(row[child_col])
                if cu is None:
                    continue
                pi = conn_min[cu]
                w = row[warity]
                k = w if identity else (-w if negate else key_of(w))
                entry = (k + pi, state)
                jk = row[own_single]
                bucket = g_get(jk)
                if bucket is None:
                    groups[jk] = [entry]
                else:
                    bucket.append(entry)
                t_append(row)
                i_append(tid)
                v_append(k)
                p_append(pi)
                c_append(cu)
                state += 1
        else:
            for tid, row in enumerate(rows):
                if check_repeats and not satisfies(row):
                    continue
                pi = 0.0
                conns: list[int] = []
                dead = False
                for single, positions, cmap in lookups:
                    if single is None:
                        cu = cmap.get(tuple(row[p] for p in positions))
                    else:
                        cu = cmap.get(row[single])
                    if cu is None:
                        dead = True
                        break
                    conns.append(cu)
                    pi = pi + conn_min[cu]
                if dead:
                    continue
                w = row[warity]
                k = w if identity else (-w if negate else key_of(w))
                entry = (k + pi, state)
                if own_single is None:
                    jk = tuple(row[p] for p in own_pos)
                else:
                    jk = row[own_single]
                bucket = g_get(jk)
                if bucket is None:
                    groups[jk] = [entry]
                else:
                    bucket.append(entry)
                t_append(row)
                i_append(tid)
                v_append(k)
                p_append(pi)
                cu_out.extend(conns)
                state += 1

        cmap_out = shared.conn_maps[stage]
        uid = shared.num_conns
        pairs = shared.pairs
        conn_stage = shared.conn_stage
        conn_min_out = shared.conn_min
        for join_key, entries in groups.items():
            cmap_out[join_key] = uid
            pairs.append(entries)
            conn_stage.append(stage)
            conn_min_out.append(min(entries)[0])
            uid += 1
        shared.num_conns = uid

        if shared.parent_stage[stage] == -1:
            root = cmap_out.get(())
            if root is None:
                shared.complete = False
            else:
                shared.root_uid[stage] = root

    # conn_of rows for stages whose parent is a shared (non-anchor)
    # stage; children of the anchor get fragment-specific rows later.
    for stage in range(shared.num_stages):
        parent = shared.parent_stage[stage]
        if parent == -1 or parent == anchor_stage:
            continue
        fanout = len(shared.children_stages[parent])
        branch = shared.children_stages[parent].index(stage)
        row = shared.child_uids[parent]
        shared.conn_of[stage] = row[branch::fanout] if fanout else []

    shared.seconds = time.perf_counter() - start
    return shared


# -- the per-fragment result-assembly shell ------------------------------------


class FragmentTDP(TDP):
    """A connector-free T-DP shell behind one fragment's compiled core.

    Carries exactly what result assembly needs — per-stage rows, global
    tuple ids, the query — and no :class:`ChoiceSet` graph (the flat
    enumerators never walk one).  Stored rows may carry the trailing
    backend weight; :meth:`witness` slices them back to atom arity.
    ``_compiled`` points at the fragment's :class:`ShardCompiled`, so
    ``make_enumerator(shell)`` transparently runs the flat core.
    """

    def __init__(self, dioid, atom_of_stage, parent_stage, query, join_tree, arities):
        super().__init__(
            dioid, atom_of_stage, parent_stage, query=query, join_tree=join_tree
        )
        self._arities = list(arities)
        self._empty = True

    def is_empty(self) -> bool:
        return self._empty

    def witness(self, states: Sequence[int]) -> tuple:
        arities = self._arities
        by_atom = sorted(
            (self.atom_of_stage[stage], self.tuples[stage][state][: arities[stage]])
            for stage, state in enumerate(states)
        )
        return tuple(t for _atom, t in by_atom)


class ShardCompiled(CompiledTDP):
    """One fragment's compiled core, aliasing the shared structures.

    Never constructed through ``CompiledTDP.__init__``; ``assemble``
    fills the slots directly.  The uid-indexed lists (entry pairs and
    the three lazily built ranking-structure caches) are the *same list
    objects* across all fragments of a shard plan — a ranking structure
    for a shared connector is built once and reused by every fragment,
    algorithm, and serving session (the lazy fill is the same benign
    race the base class documents).
    """

    __slots__ = ()

    @classmethod
    def assemble(cls, **fields) -> "ShardCompiled":
        self = cls.__new__(cls)
        for name, value in fields.items():
            setattr(self, name, value)
        return self

    def conn_size(self, uid: int) -> int:
        return len(self._pairs[uid])

    def stats(self) -> dict:
        return {
            "stages": self.num_stages,
            "connectors": self.num_connectors,
            "entries": sum(len(p) for p in self._pairs if p),
            "states": sum(len(v) for v in self.values_key),
            "empty": self.empty,
        }


# -- phase B: one fragment -----------------------------------------------------


def _values_from_keys(dioid: SelectiveDioid, keys: list[float], lane: int) -> list:
    if lane == _LANE_ID:
        return keys  # the key *is* the value: alias, no copy
    if lane == _LANE_NEG:
        return [-k for k in keys]
    vfk = dioid.value_from_key
    return [vfk(k) for k in keys]


#: Row count below which the vectorized phase-B scan is not worth the
#: numpy round-trip.
_VEC_SCAN_MIN = 512


class _AnchorScan:
    """The anchor scan's inputs, decoupled from :class:`SharedLower`.

    Built either from a parent-process ``SharedLower`` or, in a pool
    worker, from the shared-memory :class:`~repro.dp.corebuf.WorkerLower`
    (whose ``conn_min`` is a memoryview aliasing the owner's pool).
    """

    __slots__ = (
        "warity", "check_repeats", "satisfies", "lookups", "lane",
        "key_of", "conn_min",
    )

    def __init__(self, atom, lookups, lane, key_of, conn_min):
        self.warity = atom.arity
        self.check_repeats = atom.has_repeated_variables()
        self.satisfies = atom.satisfies_repeats
        self.lookups = lookups
        self.lane = lane
        self.key_of = key_of
        self.conn_min = conn_min


def _anchor_scan_of(shared: SharedLower) -> _AnchorScan:
    anchor = shared.anchor_stage
    atom = shared.query.atoms[shared.order[anchor]]
    return _AnchorScan(
        atom, shared.child_lookups(anchor), shared.lane,
        shared.dioid.key, shared.conn_min,
    )


def _scan_anchor_vec(
    scan: _AnchorScan,
    rows: list[tuple],
    base: int | None,
    global_ids: Sequence[int] | None,
    keep_tuples: bool,
):
    """Vectorized chain-shape anchor scan (identity/negate lanes only).

    The join-key dict probes stay in Python (hash tables do not
    vectorize); the alive mask, the key transform, and the ``k + pi``
    entry keys run as numpy float64 kernels — the same IEEE operations
    in the same order as the scalar loop, so the produced arrays are
    bit-identical.  All outputs convert back to native Python scalars
    (``.tolist()``): nothing downstream ever sees a numpy type.
    """
    np = vec.np
    child_col, _positions, cmap = scan.lookups[0]
    cm_get = cmap.get
    warity = scan.warity
    n = len(rows)
    cu_all = np.fromiter(
        (cm_get(row[child_col], -1) for row in rows), np.int64, n
    )
    alive = np.flatnonzero(cu_all >= 0)
    cu = cu_all[alive]
    alive_list = alive.tolist()
    w = np.fromiter((rows[i][warity] for i in alive_list), np.float64, len(alive_list))
    k = w if scan.lane == _LANE_ID else -w
    pi = np.asarray(scan.conn_min, dtype=np.float64)[cu]
    ek = k + pi
    vk_out = k.tolist()
    pk_out = pi.tolist()
    cu_out = cu.tolist()
    entries = list(zip(ek.tolist(), range(len(vk_out))))
    tuples_out = [rows[i] for i in alive_list] if keep_tuples else []
    if base is not None:
        ids_out = (alive + base).tolist()
    else:
        ids_out = [global_ids[i] for i in alive_list]
    return entries, tuples_out, ids_out, vk_out, pk_out, cu_out


def _scan_anchor(
    scan: _AnchorScan,
    rows: list[tuple],
    base: int | None,
    global_ids: Sequence[int] | None,
    keep_tuples: bool = True,
):
    """Phase B scan: lower one fragment's anchor rows to flat arrays.

    Returns ``(entries, tuples_out, ids_out, vk_out, pk_out, cu_out)``;
    ``entries`` states are sequential (``0 .. alive-1``), which is what
    lets pool workers ship only the value arrays.
    """
    warity = scan.warity
    check_repeats = scan.check_repeats
    satisfies = scan.satisfies
    lookups = scan.lookups
    lane = scan.lane
    identity = lane == _LANE_ID
    negate = lane == _LANE_NEG
    key_of = scan.key_of
    conn_min = scan.conn_min

    chain = len(lookups) == 1 and lookups[0][0] is not None
    if (
        chain
        and not check_repeats
        and lane != _LANE_CALL
        and len(rows) >= _VEC_SCAN_MIN
        and vec.np is not None
    ):
        return _scan_anchor_vec(scan, rows, base, global_ids, keep_tuples)

    tuples_out: list[tuple] = []
    ids_out: list[int] = []
    vk_out: list[float] = []
    pk_out: list[float] = []
    cu_out: list[int] = []
    entries: list[tuple[float, int]] = []
    t_append = tuples_out.append
    i_append = ids_out.append
    v_append = vk_out.append
    p_append = pk_out.append
    e_append = entries.append
    state = 0

    if chain:
        child_col, _positions, cmap = lookups[0]
        cm_get = cmap.get
        c_append = cu_out.append
        for local, row in enumerate(rows):
            if check_repeats and not satisfies(row):
                continue
            cu = cm_get(row[child_col])
            if cu is None:
                continue
            pi = conn_min[cu]
            w = row[warity]
            k = w if identity else (-w if negate else key_of(w))
            e_append((k + pi, state))
            if keep_tuples:
                t_append(row)
            i_append(base + local if base is not None else global_ids[local])
            v_append(k)
            p_append(pi)
            c_append(cu)
            state += 1
    else:
        for local, row in enumerate(rows):
            if check_repeats and not satisfies(row):
                continue
            pi = 0.0
            conns: list[int] = []
            dead = False
            for single, positions, cmap in lookups:
                if single is None:
                    cu = cmap.get(tuple(row[p] for p in positions))
                else:
                    cu = cmap.get(row[single])
                if cu is None:
                    dead = True
                    break
                conns.append(cu)
                pi = pi + conn_min[cu]
            if dead:
                continue
            w = row[warity]
            k = w if identity else (-w if negate else key_of(w))
            e_append((k + pi, state))
            if keep_tuples:
                t_append(row)
            i_append(base + local if base is not None else global_ids[local])
            v_append(k)
            p_append(pi)
            cu_out.extend(conns)
            state += 1

    return entries, tuples_out, ids_out, vk_out, pk_out, cu_out


def build_fragment(
    shared: SharedLower,
    fragment: Fragment,
    rows: list[tuple],
    global_ids: Sequence[int] | None,
    uid: int,
    uid_space: int,
    shared_lists: dict,
) -> tuple[ShardCompiled, float]:
    """Phase B: lower one anchor fragment and assemble its compiled core.

    ``rows`` is the fragment's slice of the anchor relation (trailing
    weight); ``global_ids`` maps local row positions to insertion
    positions (``None`` for range fragments, whose ids are ``lo +
    local``).  ``uid`` is the fragment root connector's id inside the
    common uid space of ``uid_space`` connectors; ``shared_lists`` holds
    the cross-fragment aliased structures (see :func:`_shared_lists`).
    """
    start = time.perf_counter()
    base = fragment.lo if global_ids is None else None
    scan_out = _scan_anchor(_anchor_scan_of(shared), rows, base, global_ids)
    compiled = _assemble_fragment(shared, scan_out, uid, uid_space, shared_lists)
    return compiled, time.perf_counter() - start


def _assemble_fragment(
    shared: SharedLower,
    scan_out: tuple,
    uid: int,
    uid_space: int,
    shared_lists: dict,
) -> ShardCompiled:
    """Assemble one fragment's :class:`ShardCompiled` from its scan output."""
    entries, tuples_out, ids_out, vk_out, pk_out, cu_out = scan_out
    query = shared.query
    anchor = shared.anchor_stage
    lane = shared.lane
    conn_min = shared.conn_min
    num_stages = shared.num_stages
    children = shared.children_stages
    fanout = len(children[anchor])
    root_stages = [s for s, p in enumerate(shared.parent_stage) if p == -1]

    empty = not entries or not shared.complete
    frag_min = min(entries)[0] if entries else None
    best_key = 0.0
    for root in root_stages:
        if root == anchor:
            if frag_min is None:
                empty = True
                break
            best_key = best_key + frag_min
        else:
            root_conn = shared.root_uid.get(root)
            if root_conn is None:
                empty = True
                break
            best_key = best_key + conn_min[root_conn]
    if empty:
        best_key = shared.dioid.key(shared.dioid.zero)

    pairs = shared_lists["pairs"]
    pairs[uid] = entries
    conn_stage = shared_lists["conn_stage"]
    conn_stage[uid] = anchor

    values_key = list(shared.values_key)
    values_key[anchor] = vk_out
    pi1_key = list(shared.pi1_key)
    pi1_key[anchor] = pk_out
    child_uids = list(shared.child_uids)
    child_uids[anchor] = cu_out
    conn_of = list(shared.conn_of)
    for branch, child in enumerate(children[anchor]):
        conn_of[child] = cu_out[branch::fanout] if fanout else []
    root_uid = dict(shared.root_uid)
    root_uid[anchor] = uid
    conn_meta = shared_lists["conn_meta"]
    conn_meta[uid] = (fanout, vk_out, cu_out, anchor)

    dioid = shared.dioid
    shell = FragmentTDP(
        dioid,
        shared.order,
        shared.parent_stage,
        query,
        shared.tree,
        shared.arities,
    )
    shell.tuples = list(shared.tuples)
    shell.tuples[anchor] = tuples_out
    shell.tuple_ids = list(shared.tuple_ids)
    shell.tuple_ids[anchor] = ids_out
    shell.values = [
        _values_from_keys(dioid, keys, lane) for keys in values_key
    ]
    shell.pi1 = [_values_from_keys(dioid, keys, lane) for keys in pi1_key]
    shell.num_connectors = uid_space
    shell.best_weight = (
        dioid.zero if empty else dioid.value_from_key(best_key)
    )
    shell._empty = empty

    vfk = (
        None
        if type(dioid).value_from_key is SelectiveDioid.value_from_key
        else dioid.value_from_key
    )
    compiled = ShardCompiled.assemble(
        tdp=shell,
        dioid=dioid,
        num_stages=num_stages,
        num_connectors=uid_space,
        parent_stage=shared.parent_stage,
        children_stages=children,
        branch_index=shell.branch_index,
        num_branches=[len(c) for c in children],
        values_key=values_key,
        pi1_key=pi1_key,
        conn_offsets=None,
        entry_key=None,
        entry_state=None,
        conn_stage=conn_stage,
        child_uids=child_uids,
        conn_of=conn_of,
        conn_meta=conn_meta,
        root_stages=root_stages,
        root_uid=root_uid,
        best_key=best_key,
        empty=empty,
        vfk=vfk,
        is_chain=all(
            shared.parent_stage[j] == j - 1 for j in range(num_stages)
        ),
        _pairs=pairs,
        _take2_heaps=shared_lists["take2"],
        _sorted_pairs=shared_lists["sorted"],
        _rea_heaps=shared_lists["rea"],
    )
    shell._compiled = compiled
    return compiled


def _shared_lists(shared: SharedLower, num_fragments: int) -> dict:
    """The cross-fragment aliased uid-indexed structures (pre-sized).

    Fragment slots are assigned by index, so concurrent phase-B builds
    on a thread pool never resize a shared list.
    """
    total = shared.num_conns + num_fragments
    tail = [None] * num_fragments
    return {
        "pairs": shared.pairs + tail,
        "conn_stage": shared.conn_stage + tail,
        "conn_meta": [
            None
            if shared.conn_stage[uid] < 0
            else (
                len(shared.children_stages[shared.conn_stage[uid]]),
                shared.values_key[shared.conn_stage[uid]],
                shared.child_uids[shared.conn_stage[uid]],
                shared.conn_stage[uid],
            )
            for uid in range(shared.num_conns)
        ]
        + tail,
        "take2": [None] * total,
        "sorted": [None] * total,
        "rea": [None] * total,
    }


# -- fragment row sources ------------------------------------------------------


def _anchor_relation(database: Database, query, shared_order, anchor_stage: int) -> Relation:
    return database[query.atoms[shared_order[anchor_stage]].relation_name]


def _hash_buckets(
    relation: Relation, shards: int
) -> list[tuple[list[tuple], list[int]]]:
    """One scan of the anchor relation, bucketed by stable content hash."""
    arity = relation.arity
    buckets: list[tuple[list[tuple], list[int]]] = [
        ([], []) for _ in range(shards)
    ]
    for gid, row in enumerate(_trailing_rows(relation)):
        rows, gids = buckets[stable_hash(row[:arity]) % shards]
        rows.append(row)
        gids.append(gid)
    return buckets


# -- the object-graph fragment path --------------------------------------------


def _restricted_database(
    database: Database, anchor_name: str, tuples: list, weights: list
) -> Database:
    """A database view replacing the anchor relation with one fragment.

    Shares every other relation object; only sound when ``anchor_name``
    occurs in exactly one atom (the sharder enforces that for this
    path).
    """
    restricted = Database()
    for relation in database:
        if relation.name == anchor_name:
            restricted.relations[relation.name] = Relation(
                relation.name, relation.arity, tuples, weights
            )
        else:
            restricted.relations[relation.name] = relation
    return restricted


def build_object_fragment(
    database: Database,
    shard_plan: ShardPlan,
    fragment: Fragment,
    dioid: SelectiveDioid,
    lift,
    anchor_rows: tuple[list[tuple], list],
    global_ids: Sequence[int] | None,
) -> TDP:
    """One fragment through the generic builder (canonical/object path)."""
    query = shard_plan.join_tree.query
    anchor_name = query.atoms[shard_plan.anchor_atom].relation_name
    tuples, weights = anchor_rows
    restricted = _restricted_database(database, anchor_name, tuples, weights)
    tdp = build_tdp(restricted, shard_plan.join_tree, dioid=dioid, lift=lift)
    anchor_stage = shard_plan.anchor_stage
    local_ids = tdp.tuple_ids[anchor_stage]
    if global_ids is None:
        lo = fragment.lo
        tdp.tuple_ids[anchor_stage] = [lo + i for i in local_ids]
    else:
        tdp.tuple_ids[anchor_stage] = [global_ids[i] for i in local_ids]
    return tdp


# -- process-mode worker -------------------------------------------------------


def _database_recipe(database: Database) -> dict:
    """A picklable description a worker can reopen the database from.

    Shipped exactly once per worker, through the pool *initializer* —
    never inside per-fragment task payloads (a memory-backend recipe
    carries full ``(arity, tuples, weights)`` tables, so per-payload
    shipping used to re-pickle the whole database per fragment).
    """
    backend = database.backend
    path = getattr(backend, "path", None)
    if backend is not None and path is not None and path != ":memory:":
        return {
            "kind": "sqlite",
            "path": path,
            "tables": {
                relation.name: relation.table for relation in database
            },
        }
    return {
        "kind": "memory",
        "relations": {
            relation.name: (
                relation.arity,
                list(relation.tuples),
                list(relation.weights),
            )
            for relation in database
        },
    }


def _open_recipe(recipe: dict) -> Database:
    if recipe["kind"] == "sqlite":
        from repro.data.backend import SQLiteBackend

        backend = SQLiteBackend(recipe["path"])
        database = Database(
            [
                Relation.from_backend(backend, name, table)
                for name, table in recipe["tables"].items()
            ]
        )
        database.backend = backend
        return database
    return Database(
        [
            Relation(name, arity, tuples, weights)
            for name, (arity, tuples, weights) in recipe["relations"].items()
        ]
    )


#: Per-worker state set by :func:`_init_scan_worker` (one initializer
#: call per pool worker; task payloads carry only ``(fragment, shards)``).
_WORKER: dict | None = None


def _init_scan_worker(
    shm_name: str, recipe: dict, query, anchor_atom_index: int,
    anchor_relation_name: str, dioid: SelectiveDioid,
) -> None:
    """Pool initializer: open the database, attach the shared pool.

    Runs once per worker process.  The database connection and the
    shared-memory attachment live for the pool's lifetime; both are
    released explicitly at interpreter exit (``atexit``) so worker
    shutdown stays free of ``resource_tracker`` warnings even when the
    parent tears the pool down on an error path.
    """
    global _WORKER
    import atexit

    database = _open_recipe(recipe)
    pool = ShmPool.attach(shm_name)
    lower = unpack_worker_lower(pool.buf)
    atom = query.atoms[anchor_atom_index]
    _WORKER = {
        "database": database,
        "pool": pool,
        "scan": _AnchorScan(
            atom, lower.lookups, lower.lane, dioid.key, lower.conn_min
        ),
        "relation": database[anchor_relation_name],
        "buckets": None,
    }
    atexit.register(database.close)


def _scan_worker_fragment(task: tuple) -> tuple:
    """Worker entry point: phase-B scan of one fragment, arrays only.

    Phase A is *not* rebuilt here — the scan resolves its child
    connectors against the shared-memory pool the initializer attached.
    The return value is four compact typed arrays (anchor value keys,
    pi1 keys, child uids, global tuple ids); entry states are implied
    (sequential) and anchor rows are re-fetched lazily by the parent, so
    no row data or entry pools are pickled back either.
    """
    faults.hit("worker.scan")  # chaos hook: fork-inherited plans can
    # kill exactly one worker here (exit + token file) to prove the
    # parent's respawn path reproduces bit-identical fragments.
    fragment, shards = task
    state = _WORKER
    start = time.perf_counter()
    relation = state["relation"]
    if fragment.kind == "range":
        rows = _trailing_rows(relation, fragment.lo, fragment.hi)
        gids = None
        base = fragment.lo
    else:
        buckets = state["buckets"]
        if buckets is None:
            buckets = state["buckets"] = _hash_buckets(relation, shards)
        rows, gids = buckets[fragment.index]
        base = None
    _entries, _tuples, ids_out, vk_out, pk_out, cu_out = _scan_anchor(
        state["scan"], rows, base, gids, keep_tuples=False
    )
    return (
        fragment.index,
        array("d", vk_out),
        array("d", pk_out),
        array("q", cu_out),
        array("q", ids_out),
        time.perf_counter() - start,
    )


def _probe_worker_pool(sample_index: int) -> tuple:
    """Test hook: what this worker observes through the shared pool.

    Returns the pool segment name, the aliased ``conn_min`` length and
    a sampled element — evidence that the worker reads the parent's
    pool bytes in place rather than a pickled copy.
    """
    state = _WORKER
    conn_min = state["scan"].conn_min
    sample = conn_min[sample_index] if len(conn_min) else None
    return state["pool"].name, len(conn_min), sample


# -- orchestration -------------------------------------------------------------


class FragmentRuntime:
    """One built fragment, ready to hand out enumerators."""

    __slots__ = ("index", "compiled", "tdp", "empty", "seconds", "anchor_stage")

    def __init__(
        self,
        index: int,
        compiled: ShardCompiled | None,
        tdp: TDP | None,
        seconds: float,
        anchor_stage: int = 0,
    ):
        self.index = index
        self.compiled = compiled
        self.tdp = tdp if tdp is not None else (compiled.tdp if compiled else None)
        self.empty = compiled.empty if compiled is not None else tdp.is_empty()
        self.seconds = seconds
        self.anchor_stage = anchor_stage

    def make_enumerator(self, algorithm: str, counter=None) -> Enumerator:
        if self.compiled is not None:
            from repro.anyk.flat import make_flat_enumerator

            return make_flat_enumerator(self.compiled, algorithm, counter=counter)
        return make_enumerator(self.tdp, algorithm, counter=counter)

    def anchor_states(self) -> int:
        """Alive states at the anchor stage (this fragment's own slice)."""
        if self.compiled is not None:
            return len(self.compiled.values_key[self.anchor_stage])
        return len(self.tdp.tuples[self.anchor_stage])


class PreprocessResult:
    """What the preprocessor hands the sharded physical plan."""

    __slots__ = (
        "fragments", "mode", "workers", "shared_seconds", "notes", "tie",
    )

    def __init__(self, fragments, mode, workers, shared_seconds, notes, tie):
        self.fragments: list[FragmentRuntime] = fragments
        self.mode = mode
        self.workers = workers
        self.shared_seconds = shared_seconds
        self.notes: list[str] = notes
        #: The TieBreakingDioid fragments rank under (canonical mode).
        self.tie: TieBreakingDioid | None = tie


class ParallelPreprocessor:
    """Builds every fragment of a shard plan, per the resolved mode.

    The worker-pool modes degrade gracefully: an unavailable process
    pool (sandboxed environments without semaphores, say) falls back to
    the fused in-process path and records a note the physical plan's
    ``explain`` surfaces, rather than failing the bind.
    """

    def __init__(
        self,
        database: Database,
        logical,
        shard_plan: ShardPlan,
        tracer=NULL_TRACER,
    ):
        self.database = database
        self.logical = logical
        self.shard_plan = shard_plan
        self.tracer = tracer

    # -- flat path -------------------------------------------------------------

    def _flat_fragment_sources(self, shared: SharedLower):
        """Per fragment: ``(fragment, loader)`` with a *lazy* row loader.

        The loader runs inside the building worker, so in thread mode
        the per-fragment rowid-range fetches happen on the pool threads
        — each on its own SQLite connection, overlapping inside the
        GIL-released C fetch path — instead of serially up front.  Hash
        fragments share one eager bucketing scan (a single pass assigns
        every row); only range fragments defer.
        """
        plan = self.shard_plan
        relation = _anchor_relation(
            self.database, shared.query, shared.order, plan.anchor_stage
        )
        if plan.spec.strategy == "hash":
            buckets = _hash_buckets(relation, plan.spec.shards)

            def hash_loader(fragment: Fragment):
                return buckets[fragment.index]

            return [(fragment, hash_loader) for fragment in plan.fragments]

        def range_loader(fragment: Fragment):
            return _trailing_rows(relation, fragment.lo, fragment.hi), None

        return [(fragment, range_loader) for fragment in plan.fragments]

    def _build_flat(self) -> PreprocessResult:
        plan = self.shard_plan
        notes = list(plan.notes)
        mode = plan.mode
        if mode == "process":
            try:
                return self._build_flat_process(notes)
            except (
                OSError,            # spawn/semaphore restrictions
                ImportError,
                PermissionError,
                RuntimeError,       # incl. BrokenProcessPool (worker died)
                pickle.PicklingError,
            ) as exc:
                _resilience_counters().bump("pool_downgrades")
                with self.tracer.span("pool.downgrade", reason=repr(exc)):
                    pass
                notes.append(
                    f"process pool unavailable ({exc!r}); fell back to "
                    "the fused in-process build"
                )
                mode = "fused"
        with self.tracer.span("shared.lower") as span:
            shared = build_shared_lower(
                self.database,
                self.logical.query,
                plan.join_tree,
                self.logical.dioid,
                plan.anchor_stage,
            )
            span.set(connectors=shared.num_conns)
        lists = _shared_lists(shared, len(plan.fragments))
        sources = self._flat_fragment_sources(shared)
        uid_space = shared.num_conns + len(plan.fragments)

        def one(source) -> FragmentRuntime:
            fragment, loader = source
            rows, gids = loader(fragment)
            compiled, seconds = build_fragment(
                shared, fragment, rows, gids,
                shared.num_conns + fragment.index, uid_space, lists,
            )
            return FragmentRuntime(
                fragment.index, compiled, None, seconds,
                anchor_stage=plan.anchor_stage,
            )

        # Spans stay on the coordinating thread: pool workers carry no
        # trace context, so per-fragment timing is reported through
        # FragmentRuntime.seconds instead of worker-side spans.
        with self.tracer.span(
            "fragments.fanout", fragments=len(sources), mode=mode
        ):
            if mode == "thread" and plan.workers > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=plan.workers) as pool:
                    fragments = list(pool.map(one, sources))
            else:
                fragments = [one(source) for source in sources]
        return PreprocessResult(
            fragments, mode, plan.workers, shared.seconds, notes, None
        )

    def _build_flat_process(self, notes: list[str]) -> PreprocessResult:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        plan = self.shard_plan
        query = self.logical.query
        with self.tracer.span("shared.lower") as span:
            shared = build_shared_lower(
                self.database, query, plan.join_tree,
                self.logical.dioid, plan.anchor_stage,
            )
            span.set(connectors=shared.num_conns)
        lists = _shared_lists(shared, len(plan.fragments))
        uid_space = shared.num_conns + len(plan.fragments)
        recipe = _database_recipe(self.database)
        anchor_atom_index = shared.order[plan.anchor_stage]
        anchor_name = query.atoms[anchor_atom_index].relation_name
        tasks = [
            (fragment, plan.spec.shards) for fragment in plan.fragments
        ]
        context = None
        try:
            import multiprocessing

            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix platforms
            context = None
        # Phase A crosses into the workers through one shared-memory
        # segment; only its *name* rides in the initargs, and the task
        # payloads above carry no arrays at all.
        shm_pool = ShmPool.create(pack_worker_lower(shared))
        try:
            # A worker killed mid-build (OOM, segfault, injected exit)
            # breaks the whole pool; the build is a pure function of the
            # shared lower + fragment spec, so rerunning it on a fresh
            # pool reproduces bit-identical fragments.
            for attempt in range(POOL_BUILD_ATTEMPTS):
                faults.hit("pool.submit")
                try:
                    with ProcessPoolExecutor(
                        max_workers=plan.workers,
                        mp_context=context,
                        initializer=_init_scan_worker,
                        initargs=(
                            shm_pool.name, recipe, query, anchor_atom_index,
                            anchor_name, self.logical.dioid,
                        ),
                    ) as pool:
                        results = list(pool.map(_scan_worker_fragment, tasks))
                    break
                except BrokenProcessPool:
                    if attempt == POOL_BUILD_ATTEMPTS - 1:
                        raise
                    _resilience_counters().bump("worker_respawns")
                    notes.append(
                        "worker pool died mid-build; respawned the pool "
                        f"and retried (attempt {attempt + 2} of "
                        f"{POOL_BUILD_ATTEMPTS})"
                    )
                    with self.tracer.span("pool.respawn", attempt=attempt + 2):
                        pass
        finally:
            shm_pool.destroy()
        relation = _anchor_relation(
            self.database, query, shared.order, plan.anchor_stage
        )
        fragments = []
        for index, vk, pk, cu, ids, seconds in sorted(results):
            vk_out = vk.tolist()
            pk_out = pk.tolist()
            ids_out = ids.tolist()
            entries = [
                (v + p, s) for s, (v, p) in enumerate(zip(vk_out, pk_out))
            ]
            scan_out = (
                entries,
                LazyRows(relation, ids_out),
                ids_out,
                vk_out,
                pk_out,
                cu.tolist(),
            )
            compiled = _assemble_fragment(
                shared, scan_out, shared.num_conns + index, uid_space, lists
            )
            fragments.append(
                FragmentRuntime(
                    index, compiled, None, seconds,
                    anchor_stage=plan.anchor_stage,
                )
            )
        return PreprocessResult(
            fragments, "process", plan.workers, shared.seconds, notes, None
        )

    # -- object path -----------------------------------------------------------

    def _build_object(self) -> PreprocessResult:
        from repro.engine.plan import make_tie_lift

        plan = self.shard_plan
        logical = self.logical
        notes = list(plan.notes)
        query = logical.query
        tie = None
        dioid: SelectiveDioid = logical.dioid
        lift = None
        if plan.spec.tie_break == "canonical":
            variables = query.variables
            tie = TieBreakingDioid(logical.dioid, len(variables))
            var_position = {v: i for i, v in enumerate(variables)}
            lift = make_tie_lift(tie, var_position)
            dioid = tie

        relation = _anchor_relation(
            self.database, query, list(plan.join_tree.order), plan.anchor_stage
        )
        tuples = relation.tuples
        weights = relation.weights
        if plan.spec.strategy == "hash":
            arity = relation.arity
            assignment = [
                stable_hash(t) % plan.spec.shards if len(t) == arity else
                stable_hash(t[:arity]) % plan.spec.shards
                for t in tuples
            ]
            sources = []
            for fragment in plan.fragments:
                gids = [
                    gid for gid, f in enumerate(assignment) if f == fragment.index
                ]
                sources.append(
                    (
                        fragment,
                        ([tuples[g] for g in gids], [weights[g] for g in gids]),
                        gids,
                    )
                )
        else:
            sources = [
                (
                    fragment,
                    (tuples[fragment.lo:fragment.hi], weights[fragment.lo:fragment.hi]),
                    None,
                )
                for fragment in plan.fragments
            ]

        def one(source) -> FragmentRuntime:
            fragment, rows, gids = source
            start = time.perf_counter()
            tdp = build_object_fragment(
                self.database, plan, fragment, dioid, lift, rows, gids
            )
            return FragmentRuntime(
                fragment.index, None, tdp, time.perf_counter() - start,
                anchor_stage=plan.anchor_stage,
            )

        with self.tracer.span(
            "fragments.fanout", fragments=len(sources), mode=plan.mode
        ):
            if plan.mode == "thread" and plan.workers > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=plan.workers) as pool:
                    fragments = list(pool.map(one, sources))
            else:
                fragments = [one(source) for source in sources]
        return PreprocessResult(
            fragments, plan.mode, plan.workers, 0.0, notes, tie
        )

    # -- entry point -----------------------------------------------------------

    def build(self) -> PreprocessResult:
        flat_path = (
            getattr(self.logical.dioid, "key_is_value", False)
            and self.shard_plan.spec.tie_break == "arrival"
        )
        return self._build_flat() if flat_path else self._build_object()
