"""ShardMerge: the ranked k-way merge over per-fragment any-k streams.

Built on the shared merge core (:class:`repro.anyk.merge.RankedMerge`,
the same loop the UT-DP union enumerator runs on).  Differences from the
union configuration:

* no duplicate elimination — fragments partition the answer set, so
  duplicates across members are structurally impossible;
* result counting stays with the member enumerators — each fragment's
  counting loop already counts its emitted results, and the merge only
  adds its own priority-queue traffic, so an :class:`OpCounter` passed
  through a :class:`~repro.engine.stream.PrefixStream` attributes every
  operation exactly once;
* per-member emit attribution (``member_counts``) is surfaced as
  :meth:`shard_counts` for the physical plan's explain/stats output.

Deterministic tie-breaking: exact-key ties between fragments resolve by
heap insertion sequence — fragments are seeded in index order and
refills re-enter at pop time — so a given fragmentation always merges
into the same sequence.  Partition-*independent* tie order additionally
requires canonically tie-broken keys (``tie_break="canonical"`` in
:class:`~repro.parallel.sharder.ShardSpec`).
"""

from __future__ import annotations

from typing import Sequence

from repro.anyk.base import Enumerator
from repro.anyk.merge import ConcatenatedStreams, RankedMerge
from repro.util.counters import OpCounter


class ShardMerge(RankedMerge):
    """Ranked merge over per-fragment enumerators (see module docstring)."""

    def __init__(
        self,
        members: Sequence[Enumerator],
        counter: OpCounter | None = None,
    ):
        super().__init__(
            members,
            dedup=False,
            counter=counter,
            count_results=False,
        )

    def shard_counts(self) -> list[int]:
        """Results each fragment has contributed to the merged output."""
        return list(self.member_counts)


class ShardConcat(ConcatenatedStreams):
    """Fragment streams chained in index order (the ``batch_nosort`` path).

    ``batch_nosort`` carries no ranking contract; with contiguous range
    fragments the concatenation reproduces the unsharded backtracking
    order exactly (root states are visited in insertion order either
    way).
    """

    def __init__(
        self,
        members: Sequence[Enumerator],
        counter: OpCounter | None = None,
    ):
        super().__init__(members, counter=counter, count_results=False)

    def shard_counts(self) -> list[int]:
        return list(self.member_counts)
