"""Fragment planning: anchor-atom selection and partition layout.

Sharding is sound exactly when the output is *partitioned* by fragment:
every answer of a full CQ uses exactly one tuple of each atom, so
restricting a single **anchor atom** to one member of a disjoint
partition of its relation assigns every answer to exactly one fragment.
The per-fragment T-DPs then enumerate disjoint answer sets and a ranked
k-way merge reassembles the global order.

:class:`ShardSpec` is the user-facing request (carried on the logical
plan and in every engine cache key); :class:`Sharder` resolves it
against a concrete database into a :class:`ShardPlan` — anchor atom,
fragment bounds, execution mode — with an ``explain()`` report of what
was chosen and why.

**Partitioning strategies.**  ``range`` (default) splits the anchor
relation into contiguous insertion-position runs, which SQLite scans as
rowid ranges (no full-table pass per fragment) and which keeps the
``batch_nosort`` generation order reproducible by concatenation.
``hash`` buckets rows by a *stable* content hash (``zlib.crc32`` of the
repr — deterministic across processes, unlike ``hash()``), the classic
skew-resistant layout when insertion order correlates with weight.

**Tie-break modes.**  With ``tie_break="arrival"`` (default) fragments
rank under the query's own dioid — the compiled flat cores apply — and
exact-key ties across fragments resolve by merge arrival order; the
merged stream is bit-identical to the unsharded one whenever no two
distinct answers share an exact key, which is the generic case for
float weights.  ``tie_break="canonical"`` ranks every fragment under
the Section 6.3 tie-breaking dioid instead: every distinct answer gets
a distinct key, so the merged ``(weight, assignment)`` sequence is a
canonical total order that is *independent of the shard count* even
under heavy weight ties (the only partition-independent choice —
per-fragment streams cannot otherwise agree on how a tie group that
straddles fragments interleaves).  Duplicate rows are the one residue:
two witnesses of the *same* answer with the same weight are
indistinguishable to any assignment-based key and stay interchangeable.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.database import Database
    from repro.engine.plan import LogicalPlan

VALID_STRATEGIES = ("range", "hash")
VALID_TIE_BREAKS = ("arrival", "canonical")
VALID_PARALLEL = ("auto", "fused", "thread", "process")


@dataclass(frozen=True)
class ShardSpec:
    """A sharding request: how many fragments, over which atom, and how.

    Hashable and immutable: the engine embeds the spec in its physical
    and stream cache keys, so prepared queries that differ only in shard
    configuration never share a bound plan or a memoized result prefix
    (re-preparing with a different ``shards=`` cannot serve a stale
    prefix whose tie order belonged to another fragmentation).
    """

    shards: int
    #: Anchor atom index override (None = heuristic, see Sharder).
    atom: int | None = None
    strategy: str = "range"
    tie_break: str = "arrival"
    parallel: str = "auto"
    #: Worker-pool width for the thread/process modes (None = auto).
    workers: int | None = None

    def __post_init__(self):
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ValueError(f"shards must be a positive int, got {self.shards!r}")
        if self.strategy not in VALID_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {self.strategy!r} "
                f"(expected one of {VALID_STRATEGIES})"
            )
        if self.tie_break not in VALID_TIE_BREAKS:
            raise ValueError(
                f"unknown tie break {self.tie_break!r} "
                f"(expected one of {VALID_TIE_BREAKS})"
            )
        if self.parallel not in VALID_PARALLEL:
            raise ValueError(
                f"unknown parallel mode {self.parallel!r} "
                f"(expected one of {VALID_PARALLEL})"
            )
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            raise ValueError(f"workers must be a positive int, got {self.workers!r}")

    def cache_key(self) -> tuple:
        """The *result-identity* projection of the spec.

        ``parallel`` and ``workers`` change how fast fragments build,
        never what they contain — the engine keys its physical and
        stream caches on this projection, so prepares that differ only
        in build mechanics share one bound plan and one memoized
        prefix (the first prepare's mode hint wins for the shared
        bind).
        """
        return (self.shards, self.atom, self.strategy, self.tie_break)

    def describe(self) -> str:
        anchor = "auto" if self.atom is None else f"atom #{self.atom}"
        return (
            f"{self.shards} fragment(s) over {anchor} "
            f"({self.strategy} partitioning, {self.tie_break} tie-break, "
            f"parallel={self.parallel})"
        )


@dataclass(frozen=True)
class Fragment:
    """One disjoint slice of the anchor relation.

    ``range`` fragments own insertion positions ``lo .. hi-1``;
    ``hash`` fragments own the rows whose stable content hash is
    congruent to ``index`` modulo the shard count.  Either way the
    original insertion position remains each row's witness id.
    """

    index: int
    kind: str
    lo: int = 0
    hi: int = 0

    def describe(self, total: int) -> str:
        if self.kind == "range":
            return f"fragment {self.index}: positions [{self.lo}, {self.hi})"
        return f"fragment {self.index}: stable_hash(row) % {total} == {self.index}"


def stable_hash(values: tuple) -> int:
    """A deterministic content hash (process- and run-independent).

    ``hash()`` is salted per process (PYTHONHASHSEED), which would make
    hash fragments differ between a parent and its pool workers; CRC32
    over the canonical repr is stable everywhere and cheap in C.
    """
    return zlib.crc32(repr(values).encode("utf-8", "surrogatepass"))


class ShardPlan:
    """A resolved fragment plan for one logical plan + database state."""

    def __init__(
        self,
        spec: ShardSpec,
        anchor_atom: int,
        anchor_stage: int,
        join_tree,
        fragments: tuple[Fragment, ...],
        mode: str,
        workers: int,
        notes: tuple[str, ...] = (),
    ):
        self.spec = spec
        self.anchor_atom = anchor_atom
        #: Stage index of the anchor atom in the join-tree serialisation
        #: (always a root stage of its component).
        self.anchor_stage = anchor_stage
        #: The join tree fragment T-DPs are built over.  Identical to
        #: the logical plan's tree when the anchor is its first root
        #: (the default), re-rooted at the anchor otherwise.
        self.join_tree = join_tree
        self.fragments = fragments
        #: Resolved execution mode: 'fused' | 'thread' | 'process'.
        self.mode = mode
        self.workers = workers
        self.notes = notes

    def explain(self, indent: str = "") -> list[str]:
        lines = [
            f"{indent}shard plan: {len(self.fragments)} fragment(s), "
            f"anchor atom #{self.anchor_atom} (stage {self.anchor_stage}), "
            f"{self.spec.strategy} partitioning, "
            f"{self.spec.tie_break} tie-break, "
            f"mode={self.mode}({self.workers} worker(s))"
        ]
        for note in self.notes:
            lines.append(f"{indent}  note: {note}")
        return lines


class Sharder:
    """Resolves a :class:`ShardSpec` into a concrete :class:`ShardPlan`.

    **Anchor-atom heuristic.**  The anchor must be a root of its
    join-tree component (fragment-independent stages are then exactly
    the non-anchor stages, shared structurally across fragment T-DPs).
    The default anchor is the join tree's first root atom — the stage-0
    atom of the unsharded T-DP, so one-fragment plans coincide with the
    unsharded construction bit for bit.  When another eligible atom's
    relation is at least twice as large as the root's, the heuristic
    anchors there instead (larger anchors give better fragment balance
    and shrink the dominant stage), re-rooting that component.  An
    explicit ``spec.atom`` overrides the heuristic.

    The object-graph fragment path — taken for ``tie_break="canonical"``
    *and* for any dioid without the ``key_is_value`` contract — restricts
    the anchor *relation by name*, so it requires an anchor whose
    relation name is unique among the query's atoms (no self-join on
    the anchor).  The flat direct builder restricts per *stage* and has
    no such constraint.

    **Mode resolution.** ``auto`` picks the fused in-process builder
    (the fastest measured path: direct-to-compiled lowering, shared
    lower stages, bulk backend scans), upgrading to a thread pool for
    phase B only where workers genuinely overlap — SQLite backends on
    multi-core hosts, whose C fetch path releases the GIL.  The process
    pool (fully GIL-free, picklable compiled cores, redundant lower
    stages per worker) is an explicit opt-in for wide hosts with large
    anchors.  Canonical/object fragment builds never use processes
    (their T-DPs carry tie-breaking closures).
    """

    def __init__(self, database: "Database", indexes=None):
        self.database = database
        self.indexes = indexes

    # -- anchor selection ------------------------------------------------------

    def _cardinality(self, atom) -> int:
        relation = self.database[atom.relation_name]
        return len(relation)

    def choose_anchor(
        self, logical: "LogicalPlan", spec: ShardSpec, flat_path: bool
    ) -> tuple[int, list[str]]:
        """The anchor atom index plus human-readable reasoning.

        The object-graph fragment path (``flat_path=False``: canonical
        tie-break, or a dioid without the ``key_is_value`` contract)
        restricts the anchor *relation by name*, so it must anchor an
        atom whose relation appears exactly once — restricting a
        self-joined name would also restrict the other occurrences and
        silently drop cross-fragment answers.  The flat direct builder
        restricts per *stage* and has no such constraint.
        """
        query = logical.query
        tree = logical.join_tree
        notes: list[str] = []
        names = [atom.relation_name for atom in query.atoms]
        unique_ok = {
            i for i, name in enumerate(names) if names.count(name) == 1
        }
        if spec.atom is not None:
            if not 0 <= spec.atom < len(query.atoms):
                raise ValueError(
                    f"anchor atom #{spec.atom} out of range "
                    f"(query has {len(query.atoms)} atoms)"
                )
            if not flat_path and spec.atom not in unique_ok:
                raise ValueError(
                    f"cannot anchor atom #{spec.atom}: relation "
                    f"{names[spec.atom]!r} appears in several atoms, and "
                    "the object-graph fragment path (canonical tie-break "
                    "or a non-key_is_value dioid) restricts the anchor "
                    "relation by name"
                )
            notes.append(f"anchor atom #{spec.atom} set explicitly")
            return spec.atom, notes
        default = tree.order[0] if tree is not None else 0
        candidates = range(len(query.atoms))
        if not flat_path:
            candidates = sorted(unique_ok)
            if not candidates:
                raise ValueError(
                    "sharding this query needs an atom whose relation "
                    "appears exactly once: pure self-joins can only "
                    "shard on the flat path (arrival tie-break with a "
                    "key_is_value dioid)"
                )
            if default not in unique_ok:
                default = candidates[0]
        default_card = self._cardinality(query.atoms[default])
        best = max(candidates, key=lambda i: (self._cardinality(query.atoms[i]), -i))
        best_card = self._cardinality(query.atoms[best])
        if best != default and best_card >= 2 * max(1, default_card):
            notes.append(
                f"heuristic anchored atom #{best} "
                f"({names[best]}, n={best_card}) over the join-tree root "
                f"atom #{default} ({names[default]}, n={default_card}): "
                f">=2x larger relation gives better fragment balance"
            )
            return best, notes
        notes.append(
            f"anchored at the join-tree root atom #{default} "
            f"({names[default]}, n={default_card})"
        )
        return default, notes

    # -- fragment layout -------------------------------------------------------

    def fragments_for(self, spec: ShardSpec, cardinality: int) -> tuple[Fragment, ...]:
        n = spec.shards
        if spec.strategy == "hash":
            return tuple(Fragment(i, "hash") for i in range(n))
        return tuple(
            Fragment(i, "range", lo=i * cardinality // n, hi=(i + 1) * cardinality // n)
            for i in range(n)
        )

    # -- mode resolution -------------------------------------------------------

    def resolve_mode(
        self, spec: ShardSpec, flat_path: bool
    ) -> tuple[str, int, list[str]]:
        """Resolve ``auto`` and sanity-check explicit mode requests.

        The ``auto`` policy follows the committed measurements in
        ``BENCH_parallel.json``: the fused build (shared lower stages,
        no pool) is the fastest or tied everywhere on small hosts, a
        thread pool helps only where workers overlap GIL-released C
        work (the SQLite fetch path on a multi-core host), and the
        process pool — whose workers redundantly rebuild the shared
        lower stages and pay fork+pickle per bind — only pays off on
        wide hosts with large anchors, so it stays an explicit opt-in.
        """
        cpus = os.cpu_count() or 1
        workers = spec.workers or max(1, min(spec.shards, cpus))
        notes: list[str] = []
        mode = spec.parallel
        if mode == "auto":
            sqlite_file = (
                getattr(self.database.backend, "path", None) is not None
            )
            if flat_path and sqlite_file and cpus > 1 and spec.shards > 1:
                mode = "thread"
                notes.append(
                    f"auto mode: {cpus} cores over a SQLite backend -> "
                    "thread pool for phase B (GIL-released C fetch)"
                )
            else:
                mode = "fused"
                notes.append(
                    "auto mode: fused in-process build (shared lower "
                    "stages, no pool overhead)"
                )
        if mode == "process" and not flat_path:
            mode = "thread"
            notes.append(
                "process mode downgraded to threads: object-graph "
                "fragment T-DPs carry non-picklable tie-breaking closures"
            )
        if mode == "process" and not self._processable():
            mode = "thread"
            notes.append(
                "process mode downgraded to threads: the database cannot "
                "be reopened in a worker (:memory: SQLite)"
            )
        return mode, workers, notes

    def _processable(self) -> bool:
        """Whether fragment builds can run in worker processes."""
        backend = self.database.backend
        if backend is None:
            return True  # plain in-memory rows: shipped by value
        path = getattr(backend, "path", None)
        if path is None:
            return True  # MemoryBackend
        return path != ":memory:"  # file-backed SQLite reopens per worker

    # -- entry point -----------------------------------------------------------

    def plan(self, logical: "LogicalPlan", spec: ShardSpec, flat_path: bool) -> ShardPlan:
        anchor_atom, notes = self.choose_anchor(logical, spec, flat_path)
        tree = logical.join_tree
        if tree is not None and tree.parent[anchor_atom] != -1:
            # The anchor must be a root of its component so that every
            # other stage is fragment-independent (the bottom-up build
            # never propagates a root restriction downward).
            tree = tree.rerooted(anchor_atom)
            notes.append(
                "join tree re-rooted at the anchor atom (non-anchor "
                "stages stay fragment-independent)"
            )
        anchor_stage = tree.order.index(anchor_atom) if tree is not None else 0
        cardinality = self._cardinality(logical.query.atoms[anchor_atom])
        if spec.shards > max(1, cardinality):
            notes.append(
                f"{spec.shards} fragments over {cardinality} anchor rows: "
                "some fragments will be empty"
            )
        fragments = self.fragments_for(spec, cardinality)
        mode, workers, mode_notes = self.resolve_mode(spec, flat_path)
        return ShardPlan(
            spec,
            anchor_atom,
            anchor_stage,
            tree,
            fragments,
            mode,
            workers,
            notes=tuple(notes + mode_notes),
        )
