"""Serving subsystem: concurrent sessions, resumable cursors, servers.

The layer that turns the any-k engine into a *service*: after one
preprocessing pass, many clients page through ranked answers with
incremental delay per page and zero repeated-prefix work.

* :mod:`repro.serve.cursor` — :class:`Cursor`, a pausable/resumable
  pagination handle over a shared memoized result stream;
* :mod:`repro.serve.session` — :class:`SessionManager`: named sessions,
  LRU/TTL eviction, per-session result budgets, and the cooperative
  scheduler that time-slices concurrent enumerations;
* :mod:`repro.serve.policy` — :class:`AccessPolicy`: bearer-token auth
  and per-client token-bucket rate limiting, shared across transports;
* :mod:`repro.serve.protocol` — the JSON-lines wire protocol;
* :mod:`repro.serve.server` — the asyncio TCP server
  (:class:`ServeServer`), the transport-agnostic op dispatcher
  (:class:`OpDispatcher`), and the thread-hosted harness
  (:class:`ServerThread`);
* :mod:`repro.serve.gateway` — the HTTP/1.1 + WebSocket gateway
  (:class:`GatewayServer`, :class:`GatewayThread`) with ``/metrics``
  and structured request logging;
* :mod:`repro.serve.client` — the synchronous :class:`ServeClient`,
  the asyncio :class:`AsyncServeClient`, and the gateway-facing
  :class:`HttpServeClient`.

Start a server from the command line with ``python -m repro.cli serve``
(add ``--http-port`` for the gateway, ``--auth-token``/``--rate-limit``
for edge policy).
"""

from repro.serve.cursor import Cursor, CursorBudgetExceeded, fetch_all
from repro.serve.policy import AccessPolicy
from repro.serve.session import (
    CooperativeScheduler,
    FetchOutcome,
    ServeError,
    Session,
    SessionBudgetExceeded,
    SessionManager,
    UnknownCursor,
    UnknownSession,
)
from repro.serve.server import OpDispatcher, ServeServer, ServerThread
from repro.serve.gateway import GatewayServer, GatewayThread
from repro.serve.client import (
    AsyncServeClient,
    FetchPage,
    HttpServeClient,
    ServeClient,
    ServeClientError,
)

__all__ = [
    "Cursor",
    "CursorBudgetExceeded",
    "fetch_all",
    "AccessPolicy",
    "CooperativeScheduler",
    "FetchOutcome",
    "ServeError",
    "Session",
    "SessionBudgetExceeded",
    "SessionManager",
    "UnknownCursor",
    "UnknownSession",
    "OpDispatcher",
    "ServeServer",
    "ServerThread",
    "GatewayServer",
    "GatewayThread",
    "FetchPage",
    "ServeClient",
    "AsyncServeClient",
    "HttpServeClient",
    "ServeClientError",
]
