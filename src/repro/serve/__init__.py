"""Serving subsystem: concurrent sessions, resumable cursors, a server.

The layer that turns the any-k engine into a *service*: after one
preprocessing pass, many clients page through ranked answers with
incremental delay per page and zero repeated-prefix work.

* :mod:`repro.serve.cursor` — :class:`Cursor`, a pausable/resumable
  pagination handle over a shared memoized result stream;
* :mod:`repro.serve.session` — :class:`SessionManager`: named sessions,
  LRU/TTL eviction, per-session result budgets, and the cooperative
  scheduler that time-slices concurrent enumerations;
* :mod:`repro.serve.protocol` — the JSON-lines wire protocol;
* :mod:`repro.serve.server` — the asyncio TCP server
  (:class:`ServeServer`) and its thread-hosted harness
  (:class:`ServerThread`);
* :mod:`repro.serve.client` — a small synchronous client
  (:class:`ServeClient`) used by tests, benchmarks, and examples.

Start a server from the command line with ``python -m repro.cli serve``.
"""

from repro.serve.cursor import Cursor, CursorBudgetExceeded, fetch_all
from repro.serve.session import (
    CooperativeScheduler,
    FetchOutcome,
    ServeError,
    Session,
    SessionBudgetExceeded,
    SessionManager,
    UnknownCursor,
    UnknownSession,
)
from repro.serve.server import ServeServer, ServerThread
from repro.serve.client import FetchPage, ServeClient, ServeClientError

__all__ = [
    "Cursor",
    "CursorBudgetExceeded",
    "fetch_all",
    "CooperativeScheduler",
    "FetchOutcome",
    "ServeError",
    "Session",
    "SessionBudgetExceeded",
    "SessionManager",
    "UnknownCursor",
    "UnknownSession",
    "ServeServer",
    "ServerThread",
    "FetchPage",
    "ServeClient",
    "ServeClientError",
]
