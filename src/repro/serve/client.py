"""Clients for the serving layer: sync, async, and HTTP.

* :class:`ServeClient` — blocking JSON-lines client over one socket;
  used by the tests, the load benchmark, and the pagination example; it
  doubles as executable documentation of the protocol.  Requests are
  serialised per connection (the server multiplexes fairness across
  *connections*, not within one), so concurrent load is driven by
  creating one client per worker thread.
* :class:`AsyncServeClient` — the same protocol over asyncio streams,
  for event-loop-native consumers (one connection per client; drive
  concurrency by creating several clients on one loop).
* :class:`HttpServeClient` — a thin blocking client for the HTTP
  gateway's request/response endpoints (:mod:`repro.serve.gateway`).

All three accept ``token=`` and attach it to every request, matching
the server-side :class:`~repro.serve.policy.AccessPolicy`.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import time
from typing import Any, Callable, Iterator

from repro.serve import protocol

#: Error codes worth retrying: both are edge rejections (the request
#: never touched a cursor), so a retry cannot skip or duplicate results.
RETRYABLE_CODES = (protocol.ERR_THROTTLED, protocol.ERR_OVERLOADED)

#: Base delay for retry backoff when the server sent no Retry-After.
_RETRY_BASE_S = 0.05


class ServeClientError(Exception):
    """An ``ok: false`` response from the server.

    ``retry_after`` carries the server's hint (seconds) on throttled /
    overloaded rejections, ``None`` otherwise.
    """

    def __init__(
        self, code: str, message: str, retry_after: float | None = None
    ):
        self.code = code
        self.retry_after = retry_after
        super().__init__(f"[{code}] {message}")


def _retry_delay(exc: ServeClientError, attempt: int) -> float:
    """Server hint if present, else exponential backoff from the base."""
    if exc.retry_after is not None and exc.retry_after > 0:
        return float(exc.retry_after)
    return _RETRY_BASE_S * (2 ** attempt)


class FetchPage:
    """One fetch's worth of answers plus the cursor state after it.

    ``deadline_exceeded`` marks a partial page cut short by the fetch's
    deadline — the results present are still the next ranked answers in
    order; re-fetching resumes exactly where the page stopped.
    """

    __slots__ = (
        "results", "served", "position", "exhausted", "deadline_exceeded",
    )

    def __init__(
        self,
        results: list[dict],
        served: int,
        position: int,
        exhausted: bool,
        deadline_exceeded: bool = False,
    ):
        self.results = results
        self.served = served
        self.position = position
        self.exhausted = exhausted
        self.deadline_exceeded = deadline_exceeded

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.results)

    def __repr__(self) -> str:
        return (
            f"FetchPage({len(self.results)} results, "
            f"position={self.position}, exhausted={self.exhausted})"
        )


class ServeClient:
    """Blocking JSON-lines client: ``prepare`` / ``fetch`` / ``explain`` /
    ``close`` plus ``stats`` and ``ping``."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        token: str | None = None,
        retries: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.token = token
        #: Extra attempts on throttled/overloaded rejections (0 = raise
        #: immediately).  Retries honour the server's ``retry_after``.
        self.retries = retries
        self._sleep = sleep
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- transport -------------------------------------------------------------

    def _send(self, message: dict) -> None:
        if self.token is not None and "token" not in message:
            message = {**message, "token": self.token}
        self._file.write(protocol.encode(message))
        self._file.flush()

    def _read(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def _read_final(self) -> dict:
        """Read one response line, raising on protocol errors."""
        message = self._read()
        if not message.get("ok", False):
            raise ServeClientError(
                message.get("error", "unknown"),
                message.get("message", ""),
                retry_after=message.get("retry_after"),
            )
        return message

    def _with_retries(self, attempt_fn: Callable[[], Any]) -> Any:
        """Run ``attempt_fn``, retrying edge rejections up to ``retries``."""
        for attempt in range(self.retries + 1):
            try:
                return attempt_fn()
            except ServeClientError as exc:
                if exc.code not in RETRYABLE_CODES or attempt == self.retries:
                    raise
                self._sleep(_retry_delay(exc, attempt))

    def request(self, message: dict) -> dict:
        """Send one non-streaming request, return its response."""
        def attempt() -> dict:
            self._send(message)
            return self._read_final()
        return self._with_retries(attempt)

    # -- protocol ops ----------------------------------------------------------

    def ping(self) -> bool:
        return self.request({"op": "ping"})["ok"]

    def prepare(
        self,
        session: str,
        query: str,
        algorithm: str = "take2",
        dioid: str = "tropical",
        projection: str = "all_weight",
        budget: int | None = None,
        shards: int | None = None,
        shard_tie_break: str = "arrival",
        deadline_ms: float | None = None,
    ) -> dict:
        """Open a cursor for ``query`` in ``session``; returns the
        response (``cursor``, ``strategy``, ``algorithm``, ``shards``).

        ``shards`` asks the server to bind through the parallel
        execution layer (fragment-sharded T-DPs, ranked k-way merge);
        the wire format and fetch semantics are unchanged.
        ``deadline_ms`` becomes the cursor's default per-fetch deadline
        (each fetch's countdown starts when that fetch begins).
        """
        message: dict[str, Any] = {
            "op": "prepare",
            "session": session,
            "query": query,
            "algorithm": algorithm,
            "dioid": dioid,
            "projection": projection,
        }
        if budget is not None:
            message["budget"] = budget
        if shards is not None:
            message["shards"] = shards
            if shard_tie_break != "arrival":
                message["shard_tie_break"] = shard_tie_break
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self.request(message)

    def fetch(
        self,
        session: str,
        cursor: str,
        n: int = 10,
        deadline_ms: float | None = None,
    ) -> FetchPage:
        """The next ``n`` ranked answers of a cursor (may be fewer).

        ``deadline_ms`` bounds this fetch; at expiry the server returns
        the partial page with ``deadline_exceeded`` set.
        """
        message: dict[str, Any] = {
            "op": "fetch", "session": session, "cursor": cursor, "n": n,
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self._with_retries(lambda: self._fetch_once(message))

    def _fetch_once(self, message: dict) -> FetchPage:
        self._send(message)
        results: list[dict] = []
        while True:
            line = self._read()
            if "result" in line:
                results.append(line["result"])
                continue
            if not line.get("ok", False):
                raise ServeClientError(
                    line.get("error", "unknown"),
                    line.get("message", ""),
                    retry_after=line.get("retry_after"),
                )
            return FetchPage(
                results,
                line["served"],
                line["position"],
                line["exhausted"],
                deadline_exceeded=line.get("deadline_exceeded", False),
            )

    def fetch_all(
        self, session: str, cursor: str, page_size: int = 64
    ) -> list[dict]:
        """Paginate a cursor to exhaustion (test/bench convenience)."""
        out: list[dict] = []
        while True:
            page = self.fetch(session, cursor, page_size)
            out.extend(page.results)
            if page.exhausted or page.served == 0:
                return out

    def explain(self, session: str, cursor: str) -> str:
        return self.request(
            {"op": "explain", "session": session, "cursor": cursor}
        )["plan"]

    def close_cursor(self, session: str, cursor: str) -> None:
        self.request({"op": "close", "session": session, "cursor": cursor})

    def close_session(self, session: str) -> None:
        self.request({"op": "close", "session": session})

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ServeClient({self.host}:{self.port})"


class AsyncServeClient:
    """An asyncio JSON-lines client mirroring :class:`ServeClient`.

    Connect with :meth:`connect` (or ``async with``)::

        async with AsyncServeClient(host, port) as client:
            cursor = (await client.prepare("s", query))["cursor"]
            page = await client.fetch("s", cursor, 10)

    One connection per client; requests on a connection are serialised
    (awaiting a second op mid-fetch would interleave response lines), so
    event-loop concurrency is driven by creating several clients.
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: str | None = None,
        timeout: float | None = 30.0,
        retries: int = 0,
    ):
        self.host = host
        self.port = port
        self.token = token
        #: Per-read timeout in seconds (``None`` = wait forever).  A
        #: timed-out read raises ``asyncio.TimeoutError`` and leaves the
        #: connection in an undefined mid-stream state — close it.
        self.timeout = timeout
        #: Extra attempts on throttled/overloaded rejections.
        self.retries = retries
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    # -- lifecycle -------------------------------------------------------------

    async def connect(self) -> "AsyncServeClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.timeout,
            )
        return self

    async def close(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # -- transport -------------------------------------------------------------

    async def _send(self, message: dict) -> None:
        if self._writer is None:
            await self.connect()
        if self.token is not None and "token" not in message:
            message = {**message, "token": self.token}
        self._writer.write(protocol.encode(message))
        await self._writer.drain()

    async def _read(self) -> dict:
        line = await asyncio.wait_for(self._reader.readline(), self.timeout)
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    async def _read_final(self) -> dict:
        message = await self._read()
        if not message.get("ok", False):
            raise ServeClientError(
                message.get("error", "unknown"),
                message.get("message", ""),
                retry_after=message.get("retry_after"),
            )
        return message

    async def _with_retries(self, attempt_fn) -> Any:
        """Run ``attempt_fn``, retrying edge rejections up to ``retries``."""
        for attempt in range(self.retries + 1):
            try:
                return await attempt_fn()
            except ServeClientError as exc:
                if exc.code not in RETRYABLE_CODES or attempt == self.retries:
                    raise
                await asyncio.sleep(_retry_delay(exc, attempt))

    async def request(self, message: dict) -> dict:
        """Send one non-streaming request, return its response."""
        async def attempt() -> dict:
            await self._send(message)
            return await self._read_final()
        return await self._with_retries(attempt)

    # -- protocol ops ----------------------------------------------------------

    async def ping(self) -> bool:
        return (await self.request({"op": "ping"}))["ok"]

    async def prepare(
        self,
        session: str,
        query: str,
        algorithm: str = "take2",
        dioid: str = "tropical",
        projection: str = "all_weight",
        budget: int | None = None,
        shards: int | None = None,
        shard_tie_break: str = "arrival",
        deadline_ms: float | None = None,
    ) -> dict:
        message: dict[str, Any] = {
            "op": "prepare",
            "session": session,
            "query": query,
            "algorithm": algorithm,
            "dioid": dioid,
            "projection": projection,
        }
        if budget is not None:
            message["budget"] = budget
        if shards is not None:
            message["shards"] = shards
            if shard_tie_break != "arrival":
                message["shard_tie_break"] = shard_tie_break
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return await self.request(message)

    async def fetch(
        self,
        session: str,
        cursor: str,
        n: int = 10,
        deadline_ms: float | None = None,
    ) -> FetchPage:
        """The next ``n`` ranked answers of a cursor (may be fewer)."""
        message: dict[str, Any] = {
            "op": "fetch", "session": session, "cursor": cursor, "n": n,
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return await self._with_retries(lambda: self._fetch_once(message))

    async def _fetch_once(self, message: dict) -> FetchPage:
        await self._send(message)
        results: list[dict] = []
        while True:
            line = await self._read()
            if "result" in line:
                results.append(line["result"])
                continue
            if not line.get("ok", False):
                raise ServeClientError(
                    line.get("error", "unknown"),
                    line.get("message", ""),
                    retry_after=line.get("retry_after"),
                )
            return FetchPage(
                results,
                line["served"],
                line["position"],
                line["exhausted"],
                deadline_exceeded=line.get("deadline_exceeded", False),
            )

    async def fetch_all(
        self, session: str, cursor: str, page_size: int = 64
    ) -> list[dict]:
        """Paginate a cursor to exhaustion (test/bench convenience)."""
        out: list[dict] = []
        while True:
            page = await self.fetch(session, cursor, page_size)
            out.extend(page.results)
            if page.exhausted or page.served == 0:
                return out

    async def explain(self, session: str, cursor: str) -> str:
        return (
            await self.request(
                {"op": "explain", "session": session, "cursor": cursor}
            )
        )["plan"]

    async def close_cursor(self, session: str, cursor: str) -> None:
        await self.request(
            {"op": "close", "session": session, "cursor": cursor}
        )

    async def close_session(self, session: str) -> None:
        await self.request({"op": "close", "session": session})

    async def stats(self) -> dict:
        return (await self.request({"op": "stats"}))["stats"]

    def __repr__(self) -> str:
        state = "connected" if self._writer is not None else "disconnected"
        return f"AsyncServeClient({self.host}:{self.port}, {state})"


class HttpServeClient:
    """A blocking client for the HTTP gateway's JSON endpoints.

    Thin by design — the gateway's request/response bodies *are* the
    wire protocol's messages, so this is mostly URL plumbing plus
    bearer-token headers.  Raises :class:`ServeClientError` carrying
    the protocol error code on any non-2xx response, mirroring the
    JSON-lines clients.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        token: str | None = None,
        retries: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.token = token
        #: Extra attempts on 429/503 rejections, honouring Retry-After.
        self.retries = retries
        self._sleep = sleep
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # -- transport -------------------------------------------------------------

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One HTTP round trip; returns the decoded JSON body."""
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, payload)
            except ServeClientError as exc:
                if exc.code not in RETRYABLE_CODES or attempt == self.retries:
                    raise
                self._sleep(_retry_delay(exc, attempt))

    def _request_once(
        self, method: str, path: str, payload: dict | None
    ) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        retry_header = response.getheader("Retry-After")
        decoded = json.loads(response.read().decode("utf-8"))
        if response.status >= 400 or not decoded.get("ok", False):
            retry_after = decoded.get("retry_after")
            if retry_after is None and retry_header is not None:
                try:
                    retry_after = float(retry_header)
                except ValueError:
                    retry_after = None
            raise ServeClientError(
                decoded.get("error", f"http_{response.status}"),
                decoded.get("message", ""),
                retry_after=retry_after,
            )
        return decoded

    # -- endpoints -------------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def stats(self) -> dict:
        return self.request("GET", "/v1/stats")["stats"]

    def prepare(self, session: str, query: str, **fields: Any) -> dict:
        payload = {"session": session, "query": query, **fields}
        return self.request("POST", "/v1/prepare", payload)

    def fetch(
        self,
        session: str,
        cursor: str,
        n: int = 10,
        deadline_ms: float | None = None,
    ) -> FetchPage:
        payload: dict[str, Any] = {
            "session": session, "cursor": cursor, "n": n,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        response = self.request("POST", "/v1/fetch", payload)
        return FetchPage(
            response["results"],
            response["served"],
            response["position"],
            response["exhausted"],
            deadline_exceeded=response.get("deadline_exceeded", False),
        )

    def fetch_all(
        self, session: str, cursor: str, page_size: int = 64
    ) -> list[dict]:
        out: list[dict] = []
        while True:
            page = self.fetch(session, cursor, page_size)
            out.extend(page.results)
            if page.exhausted or page.served == 0:
                return out

    def explain(self, session: str, cursor: str) -> str:
        return self.request(
            "POST", "/v1/explain", {"session": session, "cursor": cursor}
        )["plan"]

    def close_cursor(self, session: str, cursor: str) -> None:
        self.request(
            "POST", "/v1/close", {"session": session, "cursor": cursor}
        )

    def close_session(self, session: str) -> None:
        self.request("POST", "/v1/close", {"session": session})

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HttpServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"HttpServeClient({self.host}:{self.port})"
