"""A small synchronous client for the JSON-lines query server.

Used by the tests, the load benchmark, and the pagination example; it
doubles as executable documentation of the protocol.  One socket per
client; requests are serialised per connection (the server multiplexes
fairness across *connections*, not within one), so concurrent load is
driven by creating one client per worker thread.
"""

from __future__ import annotations

import socket
from typing import Any, Iterator

from repro.serve import protocol


class ServeClientError(Exception):
    """An ``ok: false`` response from the server."""

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(f"[{code}] {message}")


class FetchPage:
    """One fetch's worth of answers plus the cursor state after it."""

    __slots__ = ("results", "served", "position", "exhausted")

    def __init__(
        self,
        results: list[dict],
        served: int,
        position: int,
        exhausted: bool,
    ):
        self.results = results
        self.served = served
        self.position = position
        self.exhausted = exhausted

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.results)

    def __repr__(self) -> str:
        return (
            f"FetchPage({len(self.results)} results, "
            f"position={self.position}, exhausted={self.exhausted})"
        )


class ServeClient:
    """Blocking JSON-lines client: ``prepare`` / ``fetch`` / ``explain`` /
    ``close`` plus ``stats`` and ``ping``."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- transport -------------------------------------------------------------

    def _send(self, message: dict) -> None:
        self._file.write(protocol.encode(message))
        self._file.flush()

    def _read(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def _read_final(self) -> dict:
        """Read one response line, raising on protocol errors."""
        message = self._read()
        if not message.get("ok", False):
            raise ServeClientError(
                message.get("error", "unknown"), message.get("message", "")
            )
        return message

    def request(self, message: dict) -> dict:
        """Send one non-streaming request, return its response."""
        self._send(message)
        return self._read_final()

    # -- protocol ops ----------------------------------------------------------

    def ping(self) -> bool:
        return self.request({"op": "ping"})["ok"]

    def prepare(
        self,
        session: str,
        query: str,
        algorithm: str = "take2",
        dioid: str = "tropical",
        projection: str = "all_weight",
        budget: int | None = None,
        shards: int | None = None,
        shard_tie_break: str = "arrival",
    ) -> dict:
        """Open a cursor for ``query`` in ``session``; returns the
        response (``cursor``, ``strategy``, ``algorithm``, ``shards``).

        ``shards`` asks the server to bind through the parallel
        execution layer (fragment-sharded T-DPs, ranked k-way merge);
        the wire format and fetch semantics are unchanged.
        """
        message: dict[str, Any] = {
            "op": "prepare",
            "session": session,
            "query": query,
            "algorithm": algorithm,
            "dioid": dioid,
            "projection": projection,
        }
        if budget is not None:
            message["budget"] = budget
        if shards is not None:
            message["shards"] = shards
            if shard_tie_break != "arrival":
                message["shard_tie_break"] = shard_tie_break
        return self.request(message)

    def fetch(self, session: str, cursor: str, n: int = 10) -> FetchPage:
        """The next ``n`` ranked answers of a cursor (may be fewer)."""
        self._send(
            {"op": "fetch", "session": session, "cursor": cursor, "n": n}
        )
        results: list[dict] = []
        while True:
            message = self._read()
            if "result" in message:
                results.append(message["result"])
                continue
            if not message.get("ok", False):
                raise ServeClientError(
                    message.get("error", "unknown"),
                    message.get("message", ""),
                )
            return FetchPage(
                results,
                message["served"],
                message["position"],
                message["exhausted"],
            )

    def fetch_all(
        self, session: str, cursor: str, page_size: int = 64
    ) -> list[dict]:
        """Paginate a cursor to exhaustion (test/bench convenience)."""
        out: list[dict] = []
        while True:
            page = self.fetch(session, cursor, page_size)
            out.extend(page.results)
            if page.exhausted or page.served == 0:
                return out

    def explain(self, session: str, cursor: str) -> str:
        return self.request(
            {"op": "explain", "session": session, "cursor": cursor}
        )["plan"]

    def close_cursor(self, session: str, cursor: str) -> None:
        self.request({"op": "close", "session": session, "cursor": cursor})

    def close_session(self, session: str) -> None:
        self.request({"op": "close", "session": session})

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ServeClient({self.host}:{self.port})"
