"""Clients for the serving layer: sync, async, and HTTP.

* :class:`ServeClient` — blocking JSON-lines client over one socket;
  used by the tests, the load benchmark, and the pagination example; it
  doubles as executable documentation of the protocol.  Requests are
  serialised per connection (the server multiplexes fairness across
  *connections*, not within one), so concurrent load is driven by
  creating one client per worker thread.
* :class:`AsyncServeClient` — the same protocol over asyncio streams,
  for event-loop-native consumers (one connection per client; drive
  concurrency by creating several clients on one loop).
* :class:`HttpServeClient` — a thin blocking client for the HTTP
  gateway's request/response endpoints (:mod:`repro.serve.gateway`).

All three accept ``token=`` and attach it to every request, matching
the server-side :class:`~repro.serve.policy.AccessPolicy`.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
from typing import Any, Iterator

from repro.serve import protocol


class ServeClientError(Exception):
    """An ``ok: false`` response from the server."""

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(f"[{code}] {message}")


class FetchPage:
    """One fetch's worth of answers plus the cursor state after it."""

    __slots__ = ("results", "served", "position", "exhausted")

    def __init__(
        self,
        results: list[dict],
        served: int,
        position: int,
        exhausted: bool,
    ):
        self.results = results
        self.served = served
        self.position = position
        self.exhausted = exhausted

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.results)

    def __repr__(self) -> str:
        return (
            f"FetchPage({len(self.results)} results, "
            f"position={self.position}, exhausted={self.exhausted})"
        )


class ServeClient:
    """Blocking JSON-lines client: ``prepare`` / ``fetch`` / ``explain`` /
    ``close`` plus ``stats`` and ``ping``."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        token: str | None = None,
    ):
        self.host = host
        self.port = port
        self.token = token
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- transport -------------------------------------------------------------

    def _send(self, message: dict) -> None:
        if self.token is not None and "token" not in message:
            message = {**message, "token": self.token}
        self._file.write(protocol.encode(message))
        self._file.flush()

    def _read(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def _read_final(self) -> dict:
        """Read one response line, raising on protocol errors."""
        message = self._read()
        if not message.get("ok", False):
            raise ServeClientError(
                message.get("error", "unknown"), message.get("message", "")
            )
        return message

    def request(self, message: dict) -> dict:
        """Send one non-streaming request, return its response."""
        self._send(message)
        return self._read_final()

    # -- protocol ops ----------------------------------------------------------

    def ping(self) -> bool:
        return self.request({"op": "ping"})["ok"]

    def prepare(
        self,
        session: str,
        query: str,
        algorithm: str = "take2",
        dioid: str = "tropical",
        projection: str = "all_weight",
        budget: int | None = None,
        shards: int | None = None,
        shard_tie_break: str = "arrival",
    ) -> dict:
        """Open a cursor for ``query`` in ``session``; returns the
        response (``cursor``, ``strategy``, ``algorithm``, ``shards``).

        ``shards`` asks the server to bind through the parallel
        execution layer (fragment-sharded T-DPs, ranked k-way merge);
        the wire format and fetch semantics are unchanged.
        """
        message: dict[str, Any] = {
            "op": "prepare",
            "session": session,
            "query": query,
            "algorithm": algorithm,
            "dioid": dioid,
            "projection": projection,
        }
        if budget is not None:
            message["budget"] = budget
        if shards is not None:
            message["shards"] = shards
            if shard_tie_break != "arrival":
                message["shard_tie_break"] = shard_tie_break
        return self.request(message)

    def fetch(self, session: str, cursor: str, n: int = 10) -> FetchPage:
        """The next ``n`` ranked answers of a cursor (may be fewer)."""
        self._send(
            {"op": "fetch", "session": session, "cursor": cursor, "n": n}
        )
        results: list[dict] = []
        while True:
            message = self._read()
            if "result" in message:
                results.append(message["result"])
                continue
            if not message.get("ok", False):
                raise ServeClientError(
                    message.get("error", "unknown"),
                    message.get("message", ""),
                )
            return FetchPage(
                results,
                message["served"],
                message["position"],
                message["exhausted"],
            )

    def fetch_all(
        self, session: str, cursor: str, page_size: int = 64
    ) -> list[dict]:
        """Paginate a cursor to exhaustion (test/bench convenience)."""
        out: list[dict] = []
        while True:
            page = self.fetch(session, cursor, page_size)
            out.extend(page.results)
            if page.exhausted or page.served == 0:
                return out

    def explain(self, session: str, cursor: str) -> str:
        return self.request(
            {"op": "explain", "session": session, "cursor": cursor}
        )["plan"]

    def close_cursor(self, session: str, cursor: str) -> None:
        self.request({"op": "close", "session": session, "cursor": cursor})

    def close_session(self, session: str) -> None:
        self.request({"op": "close", "session": session})

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ServeClient({self.host}:{self.port})"


class AsyncServeClient:
    """An asyncio JSON-lines client mirroring :class:`ServeClient`.

    Connect with :meth:`connect` (or ``async with``)::

        async with AsyncServeClient(host, port) as client:
            cursor = (await client.prepare("s", query))["cursor"]
            page = await client.fetch("s", cursor, 10)

    One connection per client; requests on a connection are serialised
    (awaiting a second op mid-fetch would interleave response lines), so
    event-loop concurrency is driven by creating several clients.
    """

    def __init__(self, host: str, port: int, token: str | None = None):
        self.host = host
        self.port = port
        self.token = token
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    # -- lifecycle -------------------------------------------------------------

    async def connect(self) -> "AsyncServeClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self

    async def close(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # -- transport -------------------------------------------------------------

    async def _send(self, message: dict) -> None:
        if self._writer is None:
            await self.connect()
        if self.token is not None and "token" not in message:
            message = {**message, "token": self.token}
        self._writer.write(protocol.encode(message))
        await self._writer.drain()

    async def _read(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    async def _read_final(self) -> dict:
        message = await self._read()
        if not message.get("ok", False):
            raise ServeClientError(
                message.get("error", "unknown"), message.get("message", "")
            )
        return message

    async def request(self, message: dict) -> dict:
        """Send one non-streaming request, return its response."""
        await self._send(message)
        return await self._read_final()

    # -- protocol ops ----------------------------------------------------------

    async def ping(self) -> bool:
        return (await self.request({"op": "ping"}))["ok"]

    async def prepare(
        self,
        session: str,
        query: str,
        algorithm: str = "take2",
        dioid: str = "tropical",
        projection: str = "all_weight",
        budget: int | None = None,
        shards: int | None = None,
        shard_tie_break: str = "arrival",
    ) -> dict:
        message: dict[str, Any] = {
            "op": "prepare",
            "session": session,
            "query": query,
            "algorithm": algorithm,
            "dioid": dioid,
            "projection": projection,
        }
        if budget is not None:
            message["budget"] = budget
        if shards is not None:
            message["shards"] = shards
            if shard_tie_break != "arrival":
                message["shard_tie_break"] = shard_tie_break
        return await self.request(message)

    async def fetch(self, session: str, cursor: str, n: int = 10) -> FetchPage:
        """The next ``n`` ranked answers of a cursor (may be fewer)."""
        await self._send(
            {"op": "fetch", "session": session, "cursor": cursor, "n": n}
        )
        results: list[dict] = []
        while True:
            message = await self._read()
            if "result" in message:
                results.append(message["result"])
                continue
            if not message.get("ok", False):
                raise ServeClientError(
                    message.get("error", "unknown"),
                    message.get("message", ""),
                )
            return FetchPage(
                results,
                message["served"],
                message["position"],
                message["exhausted"],
            )

    async def fetch_all(
        self, session: str, cursor: str, page_size: int = 64
    ) -> list[dict]:
        """Paginate a cursor to exhaustion (test/bench convenience)."""
        out: list[dict] = []
        while True:
            page = await self.fetch(session, cursor, page_size)
            out.extend(page.results)
            if page.exhausted or page.served == 0:
                return out

    async def explain(self, session: str, cursor: str) -> str:
        return (
            await self.request(
                {"op": "explain", "session": session, "cursor": cursor}
            )
        )["plan"]

    async def close_cursor(self, session: str, cursor: str) -> None:
        await self.request(
            {"op": "close", "session": session, "cursor": cursor}
        )

    async def close_session(self, session: str) -> None:
        await self.request({"op": "close", "session": session})

    async def stats(self) -> dict:
        return (await self.request({"op": "stats"}))["stats"]

    def __repr__(self) -> str:
        state = "connected" if self._writer is not None else "disconnected"
        return f"AsyncServeClient({self.host}:{self.port}, {state})"


class HttpServeClient:
    """A blocking client for the HTTP gateway's JSON endpoints.

    Thin by design — the gateway's request/response bodies *are* the
    wire protocol's messages, so this is mostly URL plumbing plus
    bearer-token headers.  Raises :class:`ServeClientError` carrying
    the protocol error code on any non-2xx response, mirroring the
    JSON-lines clients.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        token: str | None = None,
    ):
        self.host = host
        self.port = port
        self.token = token
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # -- transport -------------------------------------------------------------

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One HTTP round trip; returns the decoded JSON body."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        decoded = json.loads(response.read().decode("utf-8"))
        if response.status >= 400 or not decoded.get("ok", False):
            raise ServeClientError(
                decoded.get("error", f"http_{response.status}"),
                decoded.get("message", ""),
            )
        return decoded

    # -- endpoints -------------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def stats(self) -> dict:
        return self.request("GET", "/v1/stats")["stats"]

    def prepare(self, session: str, query: str, **fields: Any) -> dict:
        payload = {"session": session, "query": query, **fields}
        return self.request("POST", "/v1/prepare", payload)

    def fetch(self, session: str, cursor: str, n: int = 10) -> FetchPage:
        response = self.request(
            "POST",
            "/v1/fetch",
            {"session": session, "cursor": cursor, "n": n},
        )
        return FetchPage(
            response["results"],
            response["served"],
            response["position"],
            response["exhausted"],
        )

    def fetch_all(
        self, session: str, cursor: str, page_size: int = 64
    ) -> list[dict]:
        out: list[dict] = []
        while True:
            page = self.fetch(session, cursor, page_size)
            out.extend(page.results)
            if page.exhausted or page.served == 0:
                return out

    def explain(self, session: str, cursor: str) -> str:
        return self.request(
            "POST", "/v1/explain", {"session": session, "cursor": cursor}
        )["plan"]

    def close_cursor(self, session: str, cursor: str) -> None:
        self.request(
            "POST", "/v1/close", {"session": session, "cursor": cursor}
        )

    def close_session(self, session: str) -> None:
        self.request("POST", "/v1/close", {"session": session})

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HttpServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"HttpServeClient({self.host}:{self.port})"
