"""Edge admission policy: bearer-token auth and per-client rate limits.

One :class:`AccessPolicy` object is shared by every transport of a
deployment — the TCP JSON-lines server and the HTTP/WebSocket gateway
both consult the *same* instance — so a client sees identical
enforcement no matter which front door it knocks on, and a deployment's
auth/limit configuration lives in exactly one place.

Three independent checks, all designed to run *before* any engine or
scheduler work:

* :meth:`AccessPolicy.authorize` — constant-time bearer-token
  comparison (``hmac.compare_digest``).  ``auth_token=None`` means the
  deployment is open (every request authorized).
* :meth:`AccessPolicy.admit` — a per-client token bucket refilled at
  ``rate_limit`` requests/second up to ``burst`` capacity.  A denied
  request is rejected at the edge (HTTP 429 / ``ERR_THROTTLED``)
  without touching the :class:`~repro.serve.session.SessionManager`,
  which is the difference between *containing* a misbehaving client
  (the cooperative scheduler's job) and *refusing* it.
* :meth:`AccessPolicy.overload_acquire` — the load-shed gate: an
  optional :class:`~repro.serve.resilience.CircuitBreaker` (fed from
  dispatch outcomes via :meth:`record_result`) plus an optional cap on
  concurrently executing fetches.  A shed request is answered 503 /
  ``ERR_OVERLOADED`` with a ``Retry-After`` hint; unlike throttling,
  this protects against *server-side* distress (persistent engine
  failures, fetch pile-ups), not client misbehavior.

The policy is thread-safe: the TCP server and the gateway may run on
different event loops in different threads over one shared policy.
"""

from __future__ import annotations

import hmac
import threading
import time
from typing import Any, Callable, Hashable

from repro.obs.metrics import Counter, MetricsRegistry
from repro.serve.resilience import CircuitBreaker

#: Ops subject to the overload gate (the expensive ones); stats, ping,
#: explain, and close stay open so operators can inspect a shedding
#: server.
_SHEDDABLE_OPS = ("prepare", "fetch")

#: Retry-After hint (seconds) when shedding on the in-flight cap: the
#: backlog turns over at slice granularity, so "soon" is honest.
_IN_FLIGHT_RETRY_S = 0.05


class _Bucket:
    """One client's token-bucket state."""

    __slots__ = ("tokens", "stamp")

    def __init__(self, tokens: float, stamp: float):
        self.tokens = tokens
        self.stamp = stamp


class AccessPolicy:
    """Shared auth + admission-control configuration for the serve layer.

    ``auth_token``
        The bearer token every request must present (``None`` = open).
    ``rate_limit``
        Sustained requests/second allowed per client (``None`` =
        unlimited).  Enforced as a token bucket, so short bursts up to
        ``burst`` requests are absorbed before throttling starts.
    ``burst``
        Bucket capacity; defaults to ``max(1, rate_limit)`` so a
        client may always issue at least one request immediately.
    ``clock``
        Injectable monotonic clock (tests refill buckets manually).
    """

    def __init__(
        self,
        auth_token: str | None = None,
        rate_limit: float | None = None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 4096,
        breaker: CircuitBreaker | None = None,
        max_in_flight: int | None = None,
    ):
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {rate_limit}")
        if burst is not None and burst < 1:
            raise ValueError(f"burst must be at least 1, got {burst}")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be positive, got {max_in_flight}"
            )
        self.auth_token = auth_token
        self.rate_limit = None if rate_limit is None else float(rate_limit)
        if burst is not None:
            self.burst = float(burst)
        else:
            self.burst = (
                None if self.rate_limit is None else max(1.0, self.rate_limit)
            )
        self._clock = clock
        self._max_clients = max_clients
        self._lock = threading.Lock()
        self._buckets: dict[Hashable, _Bucket] = {}
        #: Optional circuit breaker over dispatch outcomes (None = no
        #: breaker; :meth:`overload_acquire` then only enforces the
        #: in-flight cap).
        self.breaker = breaker
        #: Cap on concurrently executing fetches (None = unlimited).
        self.max_in_flight = max_in_flight
        self._in_flight = 0
        #: Requests that failed the bearer-token check.
        self.denied_auth = Counter(
            "repro_policy_denied_auth_total",
            "Requests that failed the bearer-token check.",
        )
        #: Requests rejected by the rate limiter.
        self.throttled = Counter(
            "repro_policy_throttled_total",
            "Requests rejected by the rate limiter.",
        )
        #: Requests that passed both checks.
        self.admitted = Counter(
            "repro_policy_admitted_total",
            "Requests that passed auth and rate limiting.",
        )
        #: Requests shed by the overload gate (breaker or in-flight cap).
        self.shed = Counter(
            "repro_policy_shed_total",
            "Requests shed by the overload gate.",
        )

    # -- auth ------------------------------------------------------------------

    def authorize(self, token: Any) -> bool:
        """Whether ``token`` grants access (constant-time comparison)."""
        if self.auth_token is None:
            return True
        ok = isinstance(token, str) and hmac.compare_digest(
            token, self.auth_token
        )
        if not ok:
            with self._lock:
                self.denied_auth += 1
        return ok

    # -- admission control -----------------------------------------------------

    def _bucket_locked(self, client: Hashable, now: float) -> _Bucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self._max_clients:
                # Drop the longest-idle bucket: a returning client then
                # starts from a full bucket, which only errs permissive.
                oldest = min(self._buckets, key=lambda c: self._buckets[c].stamp)
                del self._buckets[oldest]
            bucket = self._buckets[client] = _Bucket(self.burst, now)
        return bucket

    def admit(self, client: Hashable) -> bool:
        """Take one token from ``client``'s bucket; False = throttle now."""
        if self.rate_limit is None:
            with self._lock:
                self.admitted += 1
            return True
        with self._lock:
            now = self._clock()
            bucket = self._bucket_locked(client, now)
            bucket.tokens = min(
                self.burst,
                bucket.tokens + (now - bucket.stamp) * self.rate_limit,
            )
            bucket.stamp = now
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                self.admitted += 1
                return True
            self.throttled += 1
            return False

    def retry_after(self, client: Hashable) -> float:
        """Seconds until ``client``'s bucket next holds a full token."""
        if self.rate_limit is None:
            return 0.0
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                return 0.0
            missing = max(0.0, 1.0 - bucket.tokens)
            return missing / self.rate_limit

    # -- overload gate ---------------------------------------------------------

    def overload_acquire(self, op: Any) -> tuple[bool, float]:
        """Admit or shed one ``op`` at the overload gate.

        Returns ``(admitted, retry_after_seconds)``.  An admitted fetch
        holds an in-flight slot that MUST be released via
        :meth:`overload_release` (the dispatcher does this in a
        ``finally``).  Cheap/diagnostic ops pass unconditionally.
        """
        if op not in _SHEDDABLE_OPS:
            return True, 0.0
        if self.breaker is not None and not self.breaker.allow():
            with self._lock:
                self.shed += 1
            return False, self.breaker.retry_after()
        if op == "fetch" and self.max_in_flight is not None:
            with self._lock:
                if self._in_flight >= self.max_in_flight:
                    self.shed += 1
                    return False, _IN_FLIGHT_RETRY_S
                self._in_flight += 1
        return True, 0.0

    def overload_release(self, op: Any) -> None:
        """Return the in-flight slot taken by an admitted fetch."""
        if op == "fetch" and self.max_in_flight is not None:
            with self._lock:
                self._in_flight = max(0, self._in_flight - 1)

    def record_result(self, succeeded: bool) -> None:
        """Feed one dispatch outcome to the breaker (no-op without one)."""
        if self.breaker is None:
            return
        if succeeded:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    # -- observability ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Counter snapshot for ``/metrics`` and the ``stats`` op."""
        with self._lock:
            snapshot = {
                "auth_required": self.auth_token is not None,
                "rate_limit": self.rate_limit,
                "burst": self.burst,
                "admitted": int(self.admitted),
                "denied_auth": int(self.denied_auth),
                "throttled": int(self.throttled),
                "tracked_clients": len(self._buckets),
                "shed": int(self.shed),
                "max_in_flight": self.max_in_flight,
                "in_flight": self._in_flight,
            }
        if self.breaker is not None:
            snapshot["breaker"] = self.breaker.snapshot()
        return snapshot

    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Attach this policy's instruments to a deployment registry."""
        registry.attach(self.admitted)
        registry.attach(self.denied_auth)
        registry.attach(self.throttled)
        registry.attach(self.shed)
        registry.gauge(
            "repro_policy_in_flight",
            "Fetches currently holding an in-flight slot.",
            fn=lambda: self._in_flight,
        )
        registry.gauge(
            "repro_policy_tracked_clients",
            "Token buckets currently tracked.",
            fn=lambda: len(self._buckets),
        )
        if self.breaker is not None:
            registry.attach(self.breaker.rejected)
            registry.attach(self.breaker.opened)
            registry.gauge(
                "repro_breaker_open",
                "1 when the circuit breaker is not closed.",
                fn=lambda: 0 if self.breaker.state == self.breaker.CLOSED else 1,
            )

    def __repr__(self) -> str:
        auth = "token" if self.auth_token is not None else "open"
        return f"AccessPolicy({auth}, rate_limit={self.rate_limit})"
