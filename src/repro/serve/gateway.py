"""The HTTP/WebSocket production front door (stdlib only).

:class:`GatewayServer` layers an HTTP/1.1 gateway over the same
:class:`~repro.serve.session.SessionManager` the TCP JSON-lines server
uses, adding what a deployment-facing edge needs and a raw socket
protocol cannot give:

* **Bearer-token auth** (``Authorization: Bearer <token>`` or
  ``?token=``) and **per-client token-bucket rate limiting** via a
  shared :class:`~repro.serve.policy.AccessPolicy` — the *same object*
  the TCP server enforces, so the two front doors cannot drift.  A
  rejected request is answered ``401``/``429`` at the edge without
  touching the session manager or consuming a scheduler slice.
* **Observability**: a ``/metrics`` endpoint exposing engine cache and
  compiled-core counters (``stream_hits``/``misses``, ``core_hits``),
  session/eviction counts, admission counters, tracer stats, and
  rolling p50/p95/p99 fetch latency (a
  :class:`~repro.obs.latency.LatencyWindow` over the
  :class:`~repro.obs.latency.LatencyStats` machinery) — as JSON, or as
  Prometheus text exposition via content negotiation (``Accept:
  text/plain`` or ``?format=prometheus``).  Structured JSON request
  logging on ``repro.serve.gateway`` carries a per-request
  ``request_id`` (honouring a client's ``X-Request-Id``, echoed back in
  the response header) and the request's wall-clock ``ms``.
* **Two client shapes over one semantics**: request/response JSON
  endpoints (``POST /v1/prepare`` …) for stateless HTTP clients, and a
  WebSocket upgrade (``GET /v1/ws``) that speaks the *exact* JSON-lines
  protocol of :mod:`repro.serve.protocol`, one message per text frame.
  Both paths dispatch through the TCP server's
  :class:`~repro.serve.server.OpDispatcher`, so validation, error
  codes, and result framing are bit-identical across transports.

Endpoints
---------

====================  ======================================================
``GET  /healthz``     liveness (never authenticated, never throttled)
``GET  /metrics``     engine/session/latency/admission counters
``GET  /debug``       HTML status page (sessions, latency, memory)
``GET  /v1/stats``    the ``stats`` op (full per-session detail)
``POST /v1/prepare``  the ``prepare`` op; body = op fields sans ``op``
``POST /v1/fetch``    the ``fetch`` op; results buffered into ``results``
``POST /v1/explain``  the ``explain`` op
``POST /v1/close``    the ``close`` op (cursor or whole session)
``GET  /v1/ws``       WebSocket upgrade to the JSON-lines protocol
====================  ======================================================

Everything is implemented on ``asyncio`` streams with the standard
library only — no web framework — matching the repo's zero-dependency
serving stack.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import logging
import time
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.engine.engine import Engine
from repro.obs.latency import LatencyWindow
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.top import debug_html
from repro.obs.trace import new_request_id
from repro.serve import protocol
from repro.serve.policy import AccessPolicy
from repro.serve.resilience import COUNTERS as RESILIENCE_COUNTERS
from repro.serve.server import OpDispatcher, ServerThread
from repro.serve.session import SessionManager
from repro.util import faults

logger = logging.getLogger("repro.serve.gateway")

#: Protocol error code → HTTP status.
HTTP_STATUS = {
    protocol.ERR_BAD_REQUEST: 400,
    protocol.ERR_UNKNOWN_OP: 400,
    protocol.ERR_QUERY: 400,
    protocol.ERR_UNAUTHORIZED: 401,
    protocol.ERR_BUDGET: 403,
    protocol.ERR_UNKNOWN_SESSION: 404,
    protocol.ERR_UNKNOWN_CURSOR: 404,
    protocol.ERR_THROTTLED: 429,
    protocol.ERR_INTERNAL: 500,
    protocol.ERR_OVERLOADED: 503,
    protocol.ERR_DEADLINE: 504,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    101: "Switching Protocols",
}

#: RFC 6455 handshake GUID.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
_WS_TEXT, _WS_CLOSE, _WS_PING, _WS_PONG = 0x1, 0x8, 0x9, 0xA

#: Paths → protocol ops for the request/response endpoints.
_POST_OPS = {
    "/v1/prepare": "prepare",
    "/v1/fetch": "fetch",
    "/v1/explain": "explain",
    "/v1/close": "close",
}


def ws_accept_key(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def ws_encode_frame(payload: bytes, opcode: int = _WS_TEXT) -> bytes:
    """One server→client (unmasked) WebSocket frame."""
    head = bytearray([0x80 | opcode])
    n = len(payload)
    if n < 126:
        head.append(n)
    elif n < 1 << 16:
        head.append(126)
        head += n.to_bytes(2, "big")
    else:
        head.append(127)
        head += n.to_bytes(8, "big")
    return bytes(head) + payload


async def ws_read_frame(
    reader: asyncio.StreamReader, max_bytes: int
) -> tuple[bool, int, bytes]:
    """Read one frame: (fin, opcode, unmasked payload)."""
    head = await reader.readexactly(2)
    fin = bool(head[0] & 0x80)
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    if length > max_bytes:
        raise ValueError(f"frame of {length} bytes exceeds {max_bytes}")
    mask = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length)
    if mask:
        payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return fin, opcode, payload


class _CollectWriter:
    """Writer shim that collects protocol lines for a buffered response.

    The op dispatcher writes complete ``protocol.encode`` lines; HTTP
    request/response endpoints collect them and fold the stream into a
    single JSON body.  ``is_closing`` proxies the real transport so a
    client that disconnects mid-fetch still aborts the enumeration
    (the scheduler rewinds the undelivered slice).
    """

    def __init__(self, transport_writer: asyncio.StreamWriter):
        self._writer = transport_writer
        self.lines: list[dict] = []

    def write(self, data: bytes) -> None:
        self.lines.append(protocol.decode(data))

    async def drain(self) -> None:
        return None

    def is_closing(self) -> bool:
        return self._writer.is_closing()


class _WsWriter:
    """Writer shim that wraps each protocol line into a text frame."""

    def __init__(self, transport_writer: asyncio.StreamWriter):
        self._writer = transport_writer

    def write(self, data: bytes) -> None:
        faults.hit("gateway.write")
        self._writer.write(ws_encode_frame(data.rstrip(b"\n")))

    async def drain(self) -> None:
        await self._writer.drain()

    def is_closing(self) -> bool:
        return self._writer.is_closing()


class _HttpRequest:
    """One parsed HTTP/1.1 request."""

    __slots__ = (
        "method", "path", "query", "headers", "body", "keep_alive",
        "request_id",
    )

    def __init__(self, method, path, query, headers, body, keep_alive):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive
        #: Set by the connection handler: the client's ``X-Request-Id``
        #: or a freshly generated id; echoed on the response and logged.
        self.request_id: str | None = None


class GatewayServer:
    """A stdlib HTTP/1.1 + WebSocket gateway over one session manager.

    Pass ``manager=`` to share sessions (and edge policy) with a
    running :class:`~repro.serve.server.ServeServer`; otherwise a
    private manager is built over ``engine`` with the same knobs the
    TCP server takes.
    """

    def __init__(
        self,
        engine: Engine | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        manager: SessionManager | None = None,
        policy: AccessPolicy | None = None,
        max_sessions: int = 64,
        ttl_seconds: float | None = None,
        result_budget: int | None = None,
        slice_size: int = 64,
        max_frame_bytes: int = 1 << 20,
        latency_window: int = 2048,
        log_requests: bool = True,
        drain_s: float = 0.0,
    ):
        if drain_s < 0:
            raise ValueError(f"drain_s must be non-negative, got {drain_s}")
        if manager is None:
            if engine is None:
                raise ValueError("GatewayServer needs an engine or a manager")
            manager = SessionManager(
                engine,
                max_sessions=max_sessions,
                ttl_seconds=ttl_seconds,
                result_budget=result_budget,
                slice_size=slice_size,
            )
        self.manager = manager
        self.engine = manager.engine
        self.policy = policy if policy is not None else AccessPolicy()
        self.dispatcher = OpDispatcher(manager, self.policy)
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.log_requests = log_requests
        #: Default grace period for :meth:`stop`.
        self.drain_s = drain_s
        #: The engine's tracer: gateway request spans open here, so
        #: engine spans created while dispatching nest under them and
        #: the whole request is one trace (request-ID propagation).
        self.tracer = self.engine.tracer
        #: Rolling fetch-latency window surfaced by ``/metrics``.
        self.fetch_latency = LatencyWindow(latency_window)
        self._server: asyncio.AbstractServer | None = None
        self.started_at = time.time()
        self.http_requests = Counter(
            "repro_gateway_http_requests_total", "HTTP requests received."
        )
        self.ws_connections = Counter(
            "repro_gateway_ws_connections_total", "WebSocket upgrades."
        )
        self.ws_messages = Counter(
            "repro_gateway_ws_messages_total", "WebSocket messages received."
        )
        #: Requests currently inside dispatch (drain watches this).
        #: A plain int (goes down as well as up); exported as a gauge.
        self.active_requests = 0
        #: Cumulative fetch-latency histogram (Prometheus ``le`` buckets)
        #: alongside the rolling window's percentiles.
        self.fetch_latency_histogram = Histogram(
            "repro_fetch_latency_seconds",
            "End-to-end fetch latency at the gateway.",
        )
        #: The deployment's typed-instrument registry behind
        #: ``GET /metrics?format=prometheus``.  Per-gateway, never
        #: process-global: two gateways (or two test fixtures) each see
        #: exactly their own deployment's instruments.
        self.registry = MetricsRegistry()
        self._register_metrics()

    def _register_metrics(self) -> None:
        registry = self.registry
        registry.attach(self.http_requests)
        registry.attach(self.ws_connections)
        registry.attach(self.ws_messages)
        registry.attach(self.fetch_latency_histogram)
        registry.attach(self.dispatcher.requests)
        registry.attach(RESILIENCE_COUNTERS.family)
        self.policy.register_metrics(registry)
        self.manager.register_metrics(registry)
        self.engine.register_metrics(registry)
        registry.gauge(
            "repro_gateway_uptime_seconds",
            "Seconds since the gateway started.",
            fn=lambda: round(time.time() - self.started_at, 3),
        )
        registry.gauge(
            "repro_gateway_active_requests",
            "Requests currently inside dispatch.",
            fn=lambda: self.active_requests,
        )
        tracer_stats = self.tracer.stats
        registry.gauge(
            "repro_tracing_enabled",
            "1 when the engine tracer records spans.",
            fn=lambda: 1 if tracer_stats().get("enabled") else 0,
        )
        for field in ("recorded", "dropped", "buffered"):
            registry.gauge(
                f"repro_tracing_{field}",
                f"Engine tracer: spans {field}.",
                fn=lambda field=field: tracer_stats().get(field, 0),
            )

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(
        self, close_sessions: bool = True, drain_s: float | None = None
    ) -> None:
        """Stop accepting, drain in-flight dispatches, drop sessions.

        Same drain semantics as :meth:`ServeServer.stop`: during the
        grace period a mid-fetch client still receives its full page.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drain_s = self.drain_s if drain_s is None else drain_s
        if drain_s > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + drain_s
            while self.active_requests > 0 and loop.time() < deadline:
                await asyncio.sleep(0.005)
        if close_sessions:
            self.manager.close()

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    # -- HTTP plumbing ---------------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> _HttpRequest | None:
        """Parse one request; ``None`` on clean EOF, ValueError on junk."""
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=300.0
            )
        except asyncio.TimeoutError:
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError(f"malformed request line {request_line!r}")
        method, target, version = parts
        split = urlsplit(target)
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > self.max_frame_bytes:
                raise ValueError("header section too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.max_frame_bytes:
            raise ValueError(
                f"body of {length} bytes exceeds {self.max_frame_bytes}"
            )
        body = await reader.readexactly(length) if length else b""
        keep_alive = version == "HTTP/1.1" and (
            headers.get("connection", "").lower() != "close"
        )
        return _HttpRequest(method, split.path, query, headers, body, keep_alive)

    def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool = True,
        extra_headers: dict[str, str] | None = None,
        request_id: str | None = None,
    ) -> int:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        return self._respond_raw(
            writer, status, body, "application/json", keep_alive,
            extra_headers, request_id,
        )

    def _respond_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        keep_alive: bool = True,
        extra_headers: dict[str, str] | None = None,
        request_id: str | None = None,
    ) -> int:
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if request_id:
            headers.append(f"X-Request-Id: {request_id}")
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        faults.hit("gateway.write")
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + body)
        return len(body)

    def _log(
        self,
        request: _HttpRequest | None,
        peer: str,
        status: int,
        elapsed: float,
        **extra: Any,
    ) -> None:
        if not self.log_requests:
            return
        record = {
            "event": "request",
            "client": peer,
            "method": request.method if request else "-",
            "path": request.path if request else "-",
            "status": status,
            "ms": round(elapsed * 1e3, 3),
        }
        record.update(extra)
        logger.info(json.dumps(record, separators=(",", ":")))

    # -- auth / admission ------------------------------------------------------

    def _request_token(self, request: _HttpRequest) -> str | None:
        auth = request.headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return request.query.get("token")

    def _edge_check(self, request: _HttpRequest, peer: str) -> dict | None:
        """Auth + admission; an error dict means "reject at the edge"."""
        if request.path == "/healthz":
            return None
        if not self.policy.authorize(self._request_token(request)):
            return protocol.error(
                protocol.ERR_UNAUTHORIZED, "missing or invalid auth token"
            )
        if not self.policy.admit(peer):
            retry = self.policy.retry_after(peer)
            return protocol.error(
                protocol.ERR_THROTTLED,
                f"rate limit exceeded; retry in {retry:.3f}s",
            )
        return None

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else str(peername)
        try:
            while True:
                started = time.perf_counter()
                request_id = new_request_id()
                try:
                    request = await self._read_request(reader)
                except (ValueError, asyncio.IncompleteReadError) as exc:
                    self.http_requests += 1
                    self._respond(
                        writer,
                        400,
                        protocol.error(protocol.ERR_BAD_REQUEST, str(exc)),
                        keep_alive=False,
                        request_id=request_id,
                    )
                    await writer.drain()
                    self._log(
                        None, peer, 400, time.perf_counter() - started,
                        request_id=request_id,
                    )
                    break
                if request is None:
                    break
                # Honour a client-supplied id (trace continuation across
                # services); otherwise the generated one stands.
                request.request_id = (
                    request.headers.get("x-request-id") or request_id
                )
                self.http_requests += 1
                rejection = self._edge_check(request, peer)
                if rejection is not None:
                    status = HTTP_STATUS[rejection["error"]]
                    extra = {}
                    if status == 429:
                        extra["Retry-After"] = str(
                            max(1, round(self.policy.retry_after(peer)))
                        )
                    self._respond(
                        writer, status, rejection,
                        keep_alive=request.keep_alive, extra_headers=extra,
                        request_id=request.request_id,
                    )
                    await writer.drain()
                    self._log(
                        request, peer, status, time.perf_counter() - started,
                        request_id=request.request_id,
                    )
                    if not request.keep_alive:
                        break
                    continue
                if self._is_ws_upgrade(request):
                    self._log(
                        request, peer, 101, time.perf_counter() - started,
                        request_id=request.request_id,
                    )
                    await self._serve_websocket(request, reader, writer, peer)
                    break
                status = await self._route(request, writer)
                await writer.drain()
                self._log(
                    request, peer, status, time.perf_counter() - started,
                    request_id=request.request_id,
                )
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    # -- routing ---------------------------------------------------------------

    async def _route(
        self, request: _HttpRequest, writer: asyncio.StreamWriter
    ) -> int:
        if request.path == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed(request, writer, "GET")
            self._respond(
                writer,
                200,
                {"ok": True, "status": "serving"},
                keep_alive=request.keep_alive,
                request_id=request.request_id,
            )
            return 200
        if request.path == "/metrics":
            if request.method != "GET":
                return self._method_not_allowed(request, writer, "GET")
            # Content negotiation: Prometheus scrapers ask for
            # text/plain (or ?format=prometheus) and get the typed
            # registry exposition; everyone else keeps the JSON
            # document.
            accept = request.headers.get("accept", "")
            if (
                "text/plain" in accept
                or request.query.get("format") == "prometheus"
            ):
                self._respond_raw(
                    writer,
                    200,
                    self.registry.render().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                    keep_alive=request.keep_alive,
                    request_id=request.request_id,
                )
            else:
                self._respond(
                    writer, 200, self.metrics(),
                    keep_alive=request.keep_alive,
                    request_id=request.request_id,
                )
            return 200
        if request.path == "/debug":
            if request.method != "GET":
                return self._method_not_allowed(request, writer, "GET")
            self._respond_raw(
                writer,
                200,
                debug_html(self.metrics()).encode("utf-8"),
                "text/html; charset=utf-8",
                keep_alive=request.keep_alive,
                request_id=request.request_id,
            )
            return 200
        if request.path == "/v1/stats":
            if request.method != "GET":
                return self._method_not_allowed(request, writer, "GET")
            return await self._dispatch_http(request, writer, {"op": "stats"})
        op = _POST_OPS.get(request.path)
        if op is not None:
            if request.method != "POST":
                return self._method_not_allowed(request, writer, "POST")
            try:
                fields = (
                    json.loads(request.body.decode("utf-8"))
                    if request.body
                    else {}
                )
                if not isinstance(fields, dict):
                    raise ValueError("request body must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                self._respond(
                    writer,
                    400,
                    protocol.error(protocol.ERR_BAD_REQUEST, str(exc)),
                    keep_alive=request.keep_alive,
                    request_id=request.request_id,
                )
                return 400
            fields.pop("token", None)
            fields["op"] = op
            return await self._dispatch_http(request, writer, fields)
        self._respond(
            writer,
            404,
            protocol.error(
                protocol.ERR_BAD_REQUEST, f"no route for {request.path!r}"
            ),
            keep_alive=request.keep_alive,
            request_id=request.request_id,
        )
        return 404

    def _method_not_allowed(
        self, request: _HttpRequest, writer: asyncio.StreamWriter, allow: str
    ) -> int:
        self._respond(
            writer,
            405,
            protocol.error(
                protocol.ERR_BAD_REQUEST,
                f"{request.method} not allowed on {request.path}",
            ),
            keep_alive=request.keep_alive,
            extra_headers={"Allow": allow},
            request_id=request.request_id,
        )
        return 405

    async def _dispatch_http(
        self,
        request: _HttpRequest,
        writer: asyncio.StreamWriter,
        wire_request: dict,
    ) -> int:
        """Run one protocol op, folding its line stream into one body.

        Results stream through the same scheduler slices (and abort on
        client disconnect) as on the TCP path; they are simply buffered
        into a single JSON response at the end, because an HTTP
        response needs its status line first.
        """
        collector = _CollectWriter(writer)
        started = time.perf_counter()
        # The request span roots the trace: dispatch runs in this task,
        # so session/engine spans opened below nest under it and carry
        # the edge's request id end to end.
        self.active_requests += 1
        try:
            with self.tracer.span(
                "gateway.request",
                method=request.method,
                path=request.path,
                op=wire_request["op"],
                request_id=request.request_id,
            ):
                await self.dispatcher.dispatch(wire_request, collector)
        finally:
            self.active_requests -= 1
        elapsed = time.perf_counter() - started
        if wire_request["op"] == "fetch":
            self.fetch_latency.record(elapsed)
            self.fetch_latency_histogram.observe(elapsed)
        results = [
            line["result"] for line in collector.lines if "result" in line
        ]
        terminator = collector.lines[-1] if collector.lines else protocol.error(
            protocol.ERR_INTERNAL, "op produced no response"
        )
        extra_headers: dict[str, str] = {}
        if terminator.get("ok"):
            status = 200
            payload = dict(terminator)
            if results or wire_request["op"] == "fetch":
                payload["results"] = results
            if payload.get("deadline_exceeded") and not results:
                # Zero progress before the deadline: that is a timeout,
                # not a page.  (With any results at all the partial page
                # goes out as 200 + deadline_exceeded — any-k's
                # bounded time-to-first-answer means losing a computed
                # ranked prefix to a timeout would be strictly worse.)
                status = 504
                payload = protocol.error(
                    protocol.ERR_DEADLINE,
                    "deadline expired before any result was enumerated",
                )
        else:
            status = HTTP_STATUS.get(terminator.get("error"), 400)
            payload = terminator
            if status in (429, 503):
                retry = terminator.get("retry_after")
                extra_headers["Retry-After"] = str(
                    max(1, round(retry)) if retry else 1
                )
        self._respond(
            writer, status, payload, keep_alive=request.keep_alive,
            extra_headers=extra_headers, request_id=request.request_id,
        )
        return status

    # -- websocket -------------------------------------------------------------

    @staticmethod
    def _is_ws_upgrade(request: _HttpRequest) -> bool:
        return (
            request.path == "/v1/ws"
            and "upgrade" in request.headers.get("connection", "").lower()
            and request.headers.get("upgrade", "").lower() == "websocket"
        )

    async def _serve_websocket(
        self,
        request: _HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer: str,
    ) -> None:
        """Upgrade and speak the JSON-lines protocol, one op per frame.

        Auth already happened at the upgrade request; admission control
        is then enforced per message, exactly like the TCP server.
        """
        key = request.headers.get("sec-websocket-key")
        if not key:
            self._respond(
                writer,
                400,
                protocol.error(
                    protocol.ERR_BAD_REQUEST, "missing Sec-WebSocket-Key"
                ),
                keep_alive=False,
            )
            return
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {ws_accept_key(key)}\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        self.ws_connections += 1
        ws_writer = _WsWriter(writer)
        message = bytearray()
        try:
            while True:
                try:
                    fin, opcode, payload = await ws_read_frame(
                        reader, self.max_frame_bytes
                    )
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                except ValueError as exc:
                    ws_writer.write(
                        protocol.encode(
                            protocol.error(protocol.ERR_BAD_REQUEST, str(exc))
                        )
                    )
                    await writer.drain()
                    break
                if opcode == _WS_CLOSE:
                    writer.write(ws_encode_frame(payload[:2], _WS_CLOSE))
                    await writer.drain()
                    break
                if opcode == _WS_PING:
                    writer.write(ws_encode_frame(payload, _WS_PONG))
                    await writer.drain()
                    continue
                if opcode == _WS_PONG:
                    continue
                message += payload
                if not fin:
                    continue
                frame, message = bytes(message), bytearray()
                if len(frame) > self.max_frame_bytes:
                    ws_writer.write(
                        protocol.encode(
                            protocol.error(
                                protocol.ERR_BAD_REQUEST,
                                f"message exceeds {self.max_frame_bytes} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    continue
                self.ws_messages += 1
                try:
                    wire_request = protocol.decode(frame)
                except ValueError as exc:
                    ws_writer.write(
                        protocol.encode(
                            protocol.error(protocol.ERR_BAD_REQUEST, str(exc))
                        )
                    )
                    await writer.drain()
                    continue
                if wire_request.get("op") != "ping" and not self.policy.admit(
                    peer
                ):
                    retry = self.policy.retry_after(peer)
                    ws_writer.write(
                        protocol.encode(
                            protocol.error(
                                protocol.ERR_THROTTLED,
                                f"rate limit exceeded; retry in {retry:.3f}s",
                            )
                        )
                    )
                    await writer.drain()
                    continue
                started = time.perf_counter()
                self.active_requests += 1
                try:
                    with self.tracer.span(
                        "gateway.ws",
                        op=wire_request.get("op"),
                        request_id=(
                            wire_request.get("request_id") or request.request_id
                        ),
                    ):
                        await self.dispatcher.dispatch(wire_request, ws_writer)
                finally:
                    self.active_requests -= 1
                if wire_request.get("op") == "fetch":
                    elapsed = time.perf_counter() - started
                    self.fetch_latency.record(elapsed)
                    self.fetch_latency_histogram.observe(elapsed)
                await writer.drain()
        except (BrokenPipeError, asyncio.CancelledError):
            pass

    # -- observability ---------------------------------------------------------

    def metrics(self) -> dict:
        """The ``/metrics`` JSON payload (also what ``repro top`` polls)."""
        manager_stats = self.manager.stats()
        memory = self.engine.memory_stats()
        session_detail = {
            name: {
                "served": entry["served"],
                "cursors": len(entry["cursors"]),
                "memory_bytes": entry["memory_bytes"],
                "idle_seconds": entry["idle_seconds"],
            }
            for name, entry in manager_stats["sessions"].items()
        }
        return {
            "ok": True,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "gateway": {
                "http_requests": int(self.http_requests),
                "ws_connections": int(self.ws_connections),
                "ws_messages": int(self.ws_messages),
                "dispatched": int(self.dispatcher.requests),
                "active_requests": self.active_requests,
            },
            "policy": self.policy.snapshot(),
            "latency": {
                "fetch": self.fetch_latency.snapshot(),
                "fetch_histogram": self.fetch_latency_histogram.snapshot(),
            },
            "sessions": {
                "session_count": manager_stats["session_count"],
                "evictions": manager_stats["evictions"],
                "expirations": manager_stats["expirations"],
                "detail": session_detail,
            },
            "memory": {
                **memory,
                "session_bytes": sum(
                    entry["memory_bytes"] for entry in session_detail.values()
                ),
                "memory_budget_bytes": manager_stats["memory_budget_bytes"],
            },
            "scheduler": manager_stats["scheduler"],
            "engine": manager_stats["engine"],
            "tracing": self.tracer.stats(),
            "resilience": {
                **RESILIENCE_COUNTERS.snapshot(),
                "shed": int(self.policy.shed),
                "deadline_stops": manager_stats["scheduler"].get(
                    "deadline_stops", 0
                ),
                "faults": faults.counters(),
            },
        }


class GatewayThread(ServerThread):
    """A :class:`GatewayServer` hosted on a daemon-thread event loop.

    Mirrors :class:`~repro.serve.server.ServerThread`::

        with GatewayThread(engine, policy=policy) as (host, port):
            ...
    """

    server_class = GatewayServer
    thread_name = "repro-gateway"
