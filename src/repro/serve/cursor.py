"""Resumable cursors: pagination handles over shared ranked streams.

A :class:`Cursor` is the serving-side face of any-k's anytime property:
after one preprocessing pass, "the next page" costs only the incremental
enumeration delay of the page itself.  Cursors are thin — position plus
bookkeeping — because all heavy state lives in the shared
:class:`~repro.engine.stream.PrefixStream`:

* pausing is free (a cursor *is* its position; nothing runs between
  fetches);
* resuming replays nothing — the stream extends from wherever its memo
  ends, so a cursor's concatenated pages are bit-identical to one
  uninterrupted enumeration;
* many cursors over the same prepared query (overlapping pages, a
  re-read after a client retry) share one underlying enumeration.

A cursor pins the stream of the database version it was opened at:
mutations mid-pagination never shift pages under a client (snapshot
semantics — append-only backends keep witness ids stable, so replayed
pages stay valid).  Open a new cursor, or call :meth:`refresh`, to see
new data.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterator

from repro.engine.engine import PreparedQuery
from repro.engine.stream import PrefixStream
from repro.enumeration.result import QueryResult
from repro.util.counters import OpCounter


class CursorBudgetExceeded(Exception):
    """Raised when a fetch would push a cursor past its result budget."""

    def __init__(self, budget: int, requested: int, served: int):
        self.budget = budget
        self.requested = requested
        self.served = served
        super().__init__(
            f"cursor budget of {budget} results exhausted "
            f"({served} served, {requested} more requested)"
        )


class Cursor:
    """A pausable, resumable reader over one prepared query's answers.

    ``fetch(n)`` returns the next ``n`` ranked answers and advances;
    an empty list means the output is exhausted.  ``budget`` caps the
    total number of answers this cursor may ever serve (the serving
    layer's per-session defence against a client paginating a
    combinatorial output to the bottom).
    """

    __slots__ = ("prepared", "_stream", "_position", "budget", "fetches", "_lock")

    def __init__(
        self,
        prepared: PreparedQuery,
        budget: int | None = None,
    ):
        self.prepared = prepared
        self._stream: PrefixStream = prepared.stream()
        self._position = 0
        self.budget = budget
        #: Number of fetch calls served (observability).
        self.fetches = 0
        #: Serialises position updates: a cursor id may legitimately be
        #: consumed from several connections/threads, and interleaved
        #: fetches must partition the stream into contiguous,
        #: exactly-once pages (never corrupt or double-serve one).
        self._lock = threading.Lock()

    # -- state -----------------------------------------------------------------

    @property
    def position(self) -> int:
        """Rank of the next answer this cursor will yield (0-based)."""
        return self._position

    @property
    def exhausted(self) -> bool:
        """Whether the cursor has consumed the complete ranked output."""
        return (
            self._stream.exhausted
            and self._position >= self._stream.produced
        )

    @property
    def stream(self) -> PrefixStream:
        """The shared memoized stream this cursor reads from."""
        return self._stream

    @property
    def remaining_budget(self) -> int | None:
        """Answers this cursor may still serve (None = unlimited)."""
        if self.budget is None:
            return None
        return max(0, self.budget - self._position)

    # -- consumption -----------------------------------------------------------

    def fetch(
        self, n: int, counter: OpCounter | None = None
    ) -> list[QueryResult]:
        """The next ``n`` ranked answers (empty when exhausted).

        Raises :class:`CursorBudgetExceeded` only when honouring the
        request would actually overrun the budget — i.e. the output
        still has more answers than the budget allows to serve.  A page
        that merely *asks* past the budget but is truncated by the end
        of the output is served normally, so fixed-size pagination
        never trips on a small result set.
        """
        if n < 0:
            raise ValueError(f"fetch size must be non-negative, got {n}")
        with self._lock:
            if self.budget is not None and self._position + n > self.budget:
                allowed = max(0, self.budget - self._position)
                # Probe one answer past the allowance (memoized, not
                # served): only a genuinely larger output is an overrun.
                available = self._stream.ensure(
                    self._position + allowed + 1, counter=counter
                )
                if available > self._position + allowed:
                    raise CursorBudgetExceeded(self.budget, n, self._position)
                n = allowed
            results = self._stream.slice(
                self._position, self._position + n, counter=counter
            )
            self._position += len(results)
            self.fetches += 1
            return results

    def unfetch(self, start: int, count: int) -> bool:
        """Undo one fetch that began at ``start`` and served ``count``.

        Atomic take-back for a page that never reached its consumer
        (e.g. the client disconnected while the server streamed it):
        succeeds only when nothing else advanced the cursor since, so a
        concurrent reader's consumption is never rolled back.  Returns
        whether the position was restored.
        """
        with self._lock:
            if self._position == start + count:
                self._position = start
                return True
            return False

    def peek(self, counter: OpCounter | None = None) -> QueryResult | None:
        """The next answer without advancing (None when exhausted)."""
        return self._stream.get(self._position, counter=counter)

    def skip(self, n: int) -> int:
        """Advance past ``n`` answers without returning them.

        The skipped prefix is still enumerated (ranked enumeration has
        no random access), but it is memoized, so a later ``rewind`` +
        ``fetch`` replays it for free.  Returns the number actually
        skipped (less than ``n`` at the end of the output).
        """
        if n < 0:
            raise ValueError(f"skip count must be non-negative, got {n}")
        with self._lock:
            available = self._stream.ensure(self._position + n)
            skipped = max(0, min(n, available - self._position))
            self._position += skipped
            return skipped

    def rewind(self, position: int = 0) -> None:
        """Reset to an earlier rank; re-reads replay the shared memo."""
        with self._lock:
            if position < 0 or position > self._position:
                raise ValueError(
                    f"cannot rewind to {position} "
                    f"(cursor is at {self._position})"
                )
            self._position = position

    def refresh(self) -> None:
        """Re-pin to the current database version, restarting at rank 0."""
        with self._lock:
            self._stream = self.prepared.stream()
            self._position = 0

    def clamped(self, n: int) -> int:
        """``n`` trimmed to the remaining budget (used by every drain
        loop and the scheduler, so the trim rule lives in one place)."""
        remaining = self.remaining_budget
        return n if remaining is None else min(n, remaining)

    def __iter__(self) -> Iterator[QueryResult]:
        """Drain the remaining answers, stopping at the budget."""
        while self.clamped(1):
            page = self.fetch(1)
            if not page:
                return
            yield page[0]

    def pages(self, size: int) -> Iterator[list[QueryResult]]:
        """Iterate the remaining answers in fetch-sized pages.

        A budgeted cursor yields what the budget allows and stops —
        unlike :meth:`fetch`, which treats an over-budget request as
        the caller's error.
        """
        if size < 1:
            raise ValueError(f"page size must be positive, got {size}")
        while True:
            clamped = self.clamped(size)
            if clamped == 0:
                return
            page = self.fetch(clamped)
            if not page:
                return
            yield page
            if len(page) < clamped:
                return

    def __repr__(self) -> str:
        state = "exhausted" if self.exhausted else "open"
        return (
            f"Cursor({self.prepared.logical.query.name} @ {self._position}, "
            f"{state})"
        )


def fetch_all(cursor: Cursor, page_size: int = 64) -> list[QueryResult]:
    """Drain ``cursor`` in pages (test/bench helper)."""
    return list(
        itertools.chain.from_iterable(cursor.pages(page_size))
    )
