"""The asyncio streaming query server (stdlib only).

:class:`ServeServer` exposes one :class:`~repro.engine.Engine` over a
TCP JSON-lines protocol (see :mod:`repro.serve.protocol`).  Design
points that matter for serving ranked enumeration:

* **Streaming with backpressure** — fetch results are written (and
  ``drain()``-ed) per scheduler slice while the enumeration advances,
  so the first answers of a page reach a slow client before the last
  ones are computed, and a client that stops reading suspends its own
  enumeration instead of buffering the server into the ground.
* **Cooperative fairness** — every fetch runs through the session
  manager's :class:`~repro.serve.session.CooperativeScheduler`, which
  yields to the event loop between bounded slices.  Concurrent
  connections therefore interleave at slice granularity: a worst-case
  cycle query grinding through its output cannot starve a cheap path
  query on another connection.
* **Edge admission** — an optional shared
  :class:`~repro.serve.policy.AccessPolicy` authenticates and
  rate-limits every request *before* it reaches the session manager:
  an unauthorized or over-limit client is refused without consuming a
  scheduler slice.  The same policy object serves the HTTP gateway
  (:mod:`repro.serve.gateway`), so both transports enforce one config.
* **Shared work** — connections are stateless transports; all state
  (sessions, cursors, memoized prefixes) lives behind the engine, so
  two clients paginating the same query share one enumeration.

The protocol op handlers live in :class:`OpDispatcher`, which is
transport-agnostic (it only needs a ``write``/``drain`` writer): the
TCP server and the gateway's WebSocket endpoint dispatch through the
same object, so validation and semantics cannot drift between them.

:class:`ServerThread` hosts the server's event loop in a daemon thread,
which is how the tests, the load benchmark, and the example embed a
live server without blocking.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.engine.engine import Engine
from repro.obs.metrics import Counter
from repro.serve import protocol
from repro.serve.cursor import CursorBudgetExceeded
from repro.serve.policy import AccessPolicy
from repro.serve.session import (
    ServeError,
    SessionBudgetExceeded,
    SessionManager,
    UnknownCursor,
    UnknownSession,
)

#: ServeError subclasses → protocol error codes.
_ERROR_CODES = {
    UnknownSession: protocol.ERR_UNKNOWN_SESSION,
    UnknownCursor: protocol.ERR_UNKNOWN_CURSOR,
    SessionBudgetExceeded: protocol.ERR_BUDGET,
}

#: Bytes read from the transport per loop iteration (not a frame cap).
_READ_CHUNK = 1 << 16


class OpDispatcher:
    """Protocol op handlers over one session manager, transport-agnostic.

    ``dispatch`` takes a decoded request and a stream-writer-like object
    (``write(bytes)``, ``async drain()``, ``is_closing()``); every
    transport — the TCP server, the gateway's WebSocket endpoint, and
    the gateway's buffered HTTP endpoints — routes through one instance,
    so a validation rule fixed here is fixed everywhere at once.
    """

    def __init__(self, manager: SessionManager, policy: AccessPolicy | None = None):
        self.manager = manager
        #: Shared edge policy; when set, its overload gate (circuit
        #: breaker + in-flight cap) sheds prepare/fetch requests here —
        #: after auth/throttle but before any engine work — and its
        #: breaker is fed from dispatch outcomes.
        self.policy = policy
        #: Requests dispatched (all transports sharing this dispatcher).
        self.requests = Counter(
            "repro_dispatched_requests_total",
            "Requests dispatched across all transports.",
        )

    def _record(self, succeeded: bool) -> None:
        if self.policy is not None:
            self.policy.record_result(succeeded)

    async def dispatch(self, request: dict, writer: Any) -> None:
        self.requests += 1
        op = request.get("op")
        handler = getattr(self, f"op_{op}", None) if op in protocol.OPS else None
        if handler is None:
            writer.write(
                protocol.encode(
                    protocol.error(
                        protocol.ERR_UNKNOWN_OP, f"unknown op {op!r}"
                    )
                )
            )
            return
        acquired = False
        if self.policy is not None:
            admitted, retry = self.policy.overload_acquire(op)
            if not admitted:
                writer.write(
                    protocol.encode(
                        protocol.error(
                            protocol.ERR_OVERLOADED,
                            f"server overloaded; retry in {retry:.3f}s",
                            retry_after=round(retry, 3),
                        )
                    )
                )
                return
            acquired = True
        try:
            await handler(request, writer)
            self._record(True)
        except (ConnectionResetError, BrokenPipeError):
            # Transport-level failures end the connection (handled by
            # the caller); writing an error line would be pointless.
            # They say nothing about engine health, so the breaker is
            # not fed either.
            raise
        except ServeError as exc:
            writer.write(
                protocol.encode(
                    protocol.error(
                        _ERROR_CODES.get(type(exc), protocol.ERR_BAD_REQUEST),
                        str(exc),
                    )
                )
            )
        except CursorBudgetExceeded as exc:
            writer.write(
                protocol.encode(protocol.error(protocol.ERR_BUDGET, str(exc)))
            )
        except (ValueError, KeyError, TypeError) as exc:
            # Planner/parser rejections (bad query text, unknown
            # relation, unsupported algorithm) — the client's fault.
            writer.write(
                protocol.encode(protocol.error(protocol.ERR_QUERY, str(exc)))
            )
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            # Server-side failure: this is what the circuit breaker
            # counts — enough of these in a row and the edge starts
            # shedding instead of queueing doomed work.
            self._record(False)
            writer.write(
                protocol.encode(
                    protocol.error(protocol.ERR_INTERNAL, repr(exc))
                )
            )
        finally:
            if acquired:
                self.policy.overload_release(op)

    # -- ops -------------------------------------------------------------------

    @staticmethod
    def _require(request: dict, *fields: str) -> list[Any]:
        values = []
        for name in fields:
            if name not in request:
                raise ServeError(f"missing field {name!r}")
            values.append(request[name])
        return values

    async def op_prepare(self, request: dict, writer: Any) -> None:
        from repro.ranking.dioid import NAMED_DIOIDS

        session_name, query = self._require(request, "session", "query")
        dioid_name = request.get("dioid", "tropical")
        if dioid_name not in NAMED_DIOIDS:
            raise ServeError(
                f"unknown dioid {dioid_name!r} "
                f"(expected one of {sorted(NAMED_DIOIDS)})"
            )
        shards = request.get("shards")
        if shards is not None and (
            not protocol.valid_int(shards) or shards < 1
        ):
            raise ServeError(
                f"shards must be a positive int, got {shards!r}"
            )
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None and not protocol.valid_ms(deadline_ms):
            raise ServeError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            )
        session, cursor_id = self.manager.open_cursor(
            session_name,
            query,
            algorithm=request.get("algorithm", "take2"),
            dioid=NAMED_DIOIDS[dioid_name],
            projection=request.get("projection", "all_weight"),
            budget=request.get("budget"),
            shards=shards,
            shard_tie_break=request.get("shard_tie_break", "arrival"),
            shard_strategy=request.get("shard_strategy", "range"),
            shard_parallel=request.get("shard_parallel", "auto"),
            deadline_ms=deadline_ms,
        )
        cursor = session.cursor(cursor_id)
        shard = cursor.prepared.logical.shard
        writer.write(
            protocol.encode(
                protocol.ok(
                    "prepare",
                    session=session.name,
                    cursor=cursor_id,
                    strategy=cursor.prepared.logical.strategy,
                    algorithm=cursor.prepared.logical.algorithm,
                    shards=None if shard is None else shard.shards,
                )
            )
        )

    async def op_fetch(self, request: dict, writer: Any) -> None:
        session_name, cursor_id = self._require(request, "session", "cursor")
        n = request.get("n", 10)
        if not protocol.valid_int(n) or n < 0:
            raise ServeError(f"fetch size must be a non-negative int, got {n!r}")
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None and not protocol.valid_ms(deadline_ms):
            raise ServeError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            )

        # Stream slice by slice: the sink runs after every scheduler
        # slice, so results go out (and drain() applies transport
        # backpressure) while the enumeration is still advancing.
        # Budget clamping/reservation all happens inside fetch_async —
        # one slice loop for the sync, async, and wire paths.
        async def sink(start_rank: int, page) -> None:
            if writer.is_closing():
                # Client went away mid-stream: abort the fetch now (the
                # scheduler rewinds the undelivered slice) instead of
                # enumerating and writing the rest into a dead socket.
                raise ConnectionResetError("client disconnected mid-fetch")
            for offset, result in enumerate(page):
                writer.write(
                    protocol.encode(
                        protocol.result_message(start_rank + offset, result)
                    )
                )
            await writer.drain()

        outcome = await self.manager.fetch_async(
            session_name, cursor_id, n, sink=sink, deadline_ms=deadline_ms
        )
        terminator = protocol.ok(
            "fetch",
            served=len(outcome.results),
            position=outcome.position,
            exhausted=outcome.exhausted,
        )
        if outcome.deadline_exceeded:
            # Only present on early stops: the partial page already
            # streamed is valid, the flag tells the client not to treat
            # short-of-n as exhaustion.
            terminator["deadline_exceeded"] = True
        writer.write(protocol.encode(terminator))

    async def op_explain(self, request: dict, writer: Any) -> None:
        session_name, cursor_id = self._require(request, "session", "cursor")
        plan = self.manager.explain(session_name, cursor_id)
        writer.write(protocol.encode(protocol.ok("explain", plan=plan)))

    async def op_close(self, request: dict, writer: Any) -> None:
        (session_name,) = self._require(request, "session")
        cursor_id = request.get("cursor")
        if cursor_id is None:
            self.manager.close_session(session_name)
        else:
            self.manager.close_cursor(session_name, cursor_id)
        writer.write(protocol.encode(protocol.ok("close")))

    async def op_stats(self, request: dict, writer: Any) -> None:
        stats = self.manager.stats()
        extra = getattr(self, "extra_stats", None)
        if extra is not None:
            stats.update(extra())
        writer.write(protocol.encode(protocol.ok("stats", stats=stats)))

    async def op_ping(self, request: dict, writer: Any) -> None:
        writer.write(protocol.encode(protocol.ok("ping")))


class ServeServer:
    """A TCP JSON-lines front end over one engine's prepared queries."""

    def __init__(
        self,
        engine: Engine,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 64,
        ttl_seconds: float | None = None,
        result_budget: int | None = None,
        slice_size: int = 64,
        policy: AccessPolicy | None = None,
        max_frame_bytes: int = 1 << 20,
        drain_s: float = 0.0,
    ):
        if max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be positive, got {max_frame_bytes}"
            )
        if drain_s < 0:
            raise ValueError(f"drain_s must be non-negative, got {drain_s}")
        self.engine = engine
        self.host = host
        self.port = port
        self.manager = SessionManager(
            engine,
            max_sessions=max_sessions,
            ttl_seconds=ttl_seconds,
            result_budget=result_budget,
            slice_size=slice_size,
        )
        self.dispatcher = OpDispatcher(self.manager, policy)
        self.dispatcher.extra_stats = self._extra_stats
        #: Shared edge policy (None = open deployment, no checks).
        self.policy = policy
        #: Largest accepted request line; longer frames are answered
        #: with ``ERR_BAD_REQUEST`` and skipped, the connection lives on.
        self.max_frame_bytes = max_frame_bytes
        #: Default grace period for :meth:`stop`: how long to let
        #: in-flight requests finish before sessions are dropped.
        self.drain_s = drain_s
        self._server: asyncio.AbstractServer | None = None
        self.connections = Counter(
            "repro_server_connections_total", "TCP connections accepted."
        )
        self.requests = Counter(
            "repro_server_requests_total", "Request lines received."
        )
        self.oversized_frames = Counter(
            "repro_server_oversized_frames_total",
            "Request frames rejected for exceeding the frame cap.",
        )
        #: Requests currently inside dispatch (drain watches this).
        #: A plain int, not an instrument: it goes down as well as up.
        self.active_requests = 0

    def _extra_stats(self) -> dict:
        extra = {
            "connections": int(self.connections),
            "requests": int(self.requests),
        }
        if self.policy is not None:
            extra["policy"] = self.policy.snapshot()
        return extra

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(
        self, close_sessions: bool = True, drain_s: float | None = None
    ) -> None:
        """Stop accepting, optionally drain in-flight work, drop sessions.

        ``drain_s`` (defaulting to the constructor's value) bounds a
        grace period in which requests already inside dispatch — e.g. a
        fetch mid-stream — run to completion before their sessions are
        closed under them.  New connections are refused immediately.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._drain(self.drain_s if drain_s is None else drain_s)
        if close_sessions:
            # Drop every session and its cursors so engine streams are
            # not pinned by a dead server across restarts (the engine's
            # own memo cache stays warm — that is its job, not ours).
            self.manager.close()

    async def _drain(self, drain_s: float) -> None:
        if drain_s <= 0:
            return
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_s
        while self.active_requests > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    # -- connection handling ---------------------------------------------------

    def _edge_check(self, request: dict, peer: Any) -> dict | None:
        """Run the shared policy; an error message means "reject now".

        Runs before dispatch, so a rejected request never reaches the
        session manager or consumes a cooperative-scheduler slice.
        ``ping`` stays open (liveness probes, like the gateway's
        ``/healthz``).
        """
        if self.policy is None or request.get("op") == "ping":
            return None
        if not self.policy.authorize(request.get("token")):
            return protocol.error(
                protocol.ERR_UNAUTHORIZED, "missing or invalid auth token"
            )
        if not self.policy.admit(peer):
            retry = self.policy.retry_after(peer)
            return protocol.error(
                protocol.ERR_THROTTLED,
                f"rate limit exceeded; retry in {retry:.3f}s",
            )
        return None

    async def _handle_line(
        self, line: bytes, peer: Any, writer: asyncio.StreamWriter
    ) -> None:
        stripped = line.strip()
        if not stripped:
            return
        self.requests += 1
        try:
            request = protocol.decode(stripped)
        except ValueError as exc:
            writer.write(
                protocol.encode(
                    protocol.error(protocol.ERR_BAD_REQUEST, str(exc))
                )
            )
            await writer.drain()
            return
        rejection = self._edge_check(request, peer)
        if rejection is not None:
            writer.write(protocol.encode(rejection))
            await writer.drain()
            return
        # Clients may tag requests with an opaque ``request_id`` field;
        # handlers ignore it, but the span carries it so a wire request
        # can be matched against the engine spans it caused.
        self.active_requests += 1
        try:
            with self.engine.tracer.span(
                "server.request",
                op=request.get("op"),
                request_id=request.get("request_id"),
            ):
                await self.dispatcher.dispatch(request, writer)
        finally:
            self.active_requests -= 1
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else str(peername)
        # Framing is done here with an explicit buffer instead of
        # ``reader.readline()``: readline raises an uncatchable-in-place
        # ValueError once a line outgrows the stream limit (64 KiB by
        # default), which used to kill the handler task silently.  The
        # explicit buffer makes the frame cap a first-class, configurable
        # protocol error: the client gets ERR_BAD_REQUEST, the rest of
        # the oversized line is discarded, and the connection survives.
        buffer = bytearray()
        discarding = False
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break
                buffer += chunk
                while True:
                    newline = buffer.find(b"\n")
                    if newline < 0:
                        break
                    line = bytes(buffer[:newline])
                    del buffer[: newline + 1]
                    if discarding:
                        # Tail of a frame already reported oversized.
                        discarding = False
                        continue
                    if len(line) > self.max_frame_bytes:
                        await self._reject_oversized(writer)
                        continue
                    await self._handle_line(line, peer, writer)
                if not discarding and len(buffer) > self.max_frame_bytes:
                    await self._reject_oversized(writer)
                    discarding = True
                if discarding:
                    buffer.clear()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown: finish quietly so the drained task does
            # not surface a cancellation to the streams machinery.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _reject_oversized(self, writer: asyncio.StreamWriter) -> None:
        self.requests += 1
        self.oversized_frames += 1
        writer.write(
            protocol.encode(
                protocol.error(
                    protocol.ERR_BAD_REQUEST,
                    f"request frame exceeds {self.max_frame_bytes} bytes",
                )
            )
        )
        await writer.drain()


class ServerThread:
    """A :class:`ServeServer` hosted on a daemon-thread event loop.

    Lets synchronous code (tests, benchmarks, the example script) run a
    live server in-process::

        with ServerThread(engine) as address:
            client = ServeClient(*address)
            ...

    Subclasses swap :attr:`server_class` to host a different asyncio
    server with the same lifecycle (see
    :class:`~repro.serve.gateway.GatewayThread`).
    """

    server_class = ServeServer
    thread_name = "repro-serve"

    def __init__(self, engine: Engine, **server_options: Any):
        self.server = self.server_class(engine, **server_options)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop_requested: asyncio.Event | None = None

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        """Start the loop thread; blocks until the socket is bound."""
        self._thread = threading.Thread(
            target=self._run, name=self.thread_name, daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server failed to start in time")
        return self.server.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        self._stop_requested = asyncio.Event()

        async def main() -> None:
            await self.server.start()
            self._started.set()
            try:
                await self._stop_requested.wait()
            finally:
                await self.server.stop()

        try:
            loop.run_until_complete(main())
            # Drain connection handlers before closing the loop so open
            # sockets shut down cleanly instead of being destroyed.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the loop thread; a no-op if the server never started.

        Safe to call when :meth:`start` was never invoked or timed out
        (``_stop_requested`` may then still be ``None``), and when the
        loop already finished on its own.
        """
        loop, self._loop = self._loop, None
        stop_requested = self._stop_requested
        if loop is not None and stop_requested is not None:
            try:
                loop.call_soon_threadsafe(stop_requested.set)
            except RuntimeError:
                pass  # loop already closed: nothing left to signal
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
