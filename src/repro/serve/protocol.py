"""The JSON-lines wire protocol of the streaming query server.

One request per line, JSON-encoded; responses are one or more lines.
Every request carries ``op`` plus op-specific fields:

``prepare``
    ``{"op": "prepare", "session": "s1", "query": "Q(x,z) :- R(x,y), S(y,z)",
    "algorithm": "take2", "dioid": "tropical", "projection": "all_weight",
    "budget": 1000}`` → ``{"ok": true, "op": "prepare", "cursor": "c0",
    "strategy": "acyclic-tdp", "shards": null}``.  Opens (or touches)
    the session and returns a cursor positioned at rank 0.  Optional
    ``"shards": N`` binds through the parallel execution layer
    (fragment-sharded T-DPs merged by a ranked k-way merge; see
    :mod:`repro.parallel`), with optional ``shard_tie_break``
    (``"arrival"``/``"canonical"``), ``shard_strategy``
    (``"range"``/``"hash"``), and ``shard_parallel`` (``"auto"``/
    ``"fused"``/``"thread"``/``"process"``) refinements; the
    per-session ``stats`` entries then report the cursor's shard
    configuration.

``fetch``
    ``{"op": "fetch", "session": "s1", "cursor": "c0", "n": 10}`` →
    ten ``{"result": {"index": i, "weight": w, "assignment": {...}}}``
    lines (streamed as they are enumerated, honouring transport
    backpressure) followed by the terminator ``{"ok": true, "op":
    "fetch", "served": 10, "position": 10, "exhausted": false}``.
    Repeating the request returns the *next* page — pagination is the
    default, no offset bookkeeping client-side.

``explain``
    → ``{"ok": true, "op": "explain", "plan": "..."}`` (the bound
    physical plan report).

``close``
    With ``cursor``: closes one cursor.  Without: closes the whole
    session.  → ``{"ok": true, "op": "close"}``.

``stats`` / ``ping``
    Server observability and liveness.

Errors are single lines ``{"ok": false, "error": "<code>", "message":
"..."}``; the connection stays usable (one bad request does not tear
down the session).

Weights may be floats, ints, bools, or tuples (lexicographic dioids);
tuples are transported as JSON arrays.
"""

from __future__ import annotations

import json
from typing import Any

from repro.enumeration.result import QueryResult

#: Protocol error codes (mirrored by ServeError subclasses).
ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_OP = "unknown_op"
ERR_UNKNOWN_SESSION = "unknown_session"
ERR_UNKNOWN_CURSOR = "unknown_cursor"
ERR_BUDGET = "budget_exceeded"
ERR_QUERY = "bad_query"
ERR_INTERNAL = "internal"
#: Edge rejections (see :mod:`repro.serve.policy`): the request never
#: reached the session manager or consumed a scheduler slice.
ERR_UNAUTHORIZED = "unauthorized"
ERR_THROTTLED = "throttled"
#: Load shed at the edge (circuit breaker open or too many in-flight
#: fetches); responses carry ``retry_after`` seconds.  HTTP: 503.
ERR_OVERLOADED = "overloaded"
#: A fetch whose deadline expired before enumerating a single result.
#: Partial pages are *not* errors — they return ``ok`` terminators with
#: ``"deadline_exceeded": true``.  HTTP: 504.
ERR_DEADLINE = "deadline_exceeded"

#: Ops a server must implement.
OPS = ("prepare", "fetch", "explain", "close", "stats", "ping")


def valid_int(value: Any) -> bool:
    """Whether ``value`` is a JSON integer (rejecting booleans).

    ``bool`` is an ``int`` subclass in Python, so a bare ``isinstance``
    check lets JSON ``true``/``false`` masquerade as ``1``/``0`` — e.g.
    ``{"shards": true}`` silently preparing a 1-shard plan.  Every
    integer-valued protocol field validates through here instead.
    """
    return isinstance(value, int) and not isinstance(value, bool)


def valid_ms(value: Any) -> bool:
    """Whether ``value`` is a positive JSON number (for ``deadline_ms``)."""
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and value > 0
    )


def _jsonable(value: Any) -> Any:
    """Map result values onto the JSON data model (tuples → arrays)."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def encode(message: dict) -> bytes:
    """One protocol line: compact JSON plus the newline terminator.

    No ``default=`` hook: tuples encode as arrays natively, and a value
    json cannot represent should fail with the standard, descriptive
    ``TypeError`` (a hook returning the object unchanged would turn it
    into an opaque circular-reference error instead).
    """
    return (
        json.dumps(message, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one protocol line; raises ``ValueError`` on malformed input."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError(f"protocol messages are JSON objects, got {line!r}")
    return message


def result_message(index: int, result: QueryResult) -> dict:
    """The wire form of one ranked answer."""
    payload: dict[str, Any] = {
        "index": index,
        "weight": _jsonable(result.weight),
        "assignment": {
            var: _jsonable(value)
            for var, value in result.assignment.items()
        },
    }
    if result.witness_ids is not None:
        payload["witness_ids"] = _jsonable(result.witness_ids)
    return {"result": payload}


def ok(op: str, **fields: Any) -> dict:
    """A success terminator/response line."""
    message = {"ok": True, "op": op}
    message.update(fields)
    return message


def error(code: str, message: str, **fields: Any) -> dict:
    """An error response line (extra fields ride along, e.g.
    ``retry_after`` on throttled/overloaded rejections)."""
    payload = {"ok": False, "error": code, "message": message}
    payload.update(fields)
    return payload
