"""Resilience primitives: retry/backoff, circuit breaking, deadlines.

Small, dependency-free building blocks threaded through the stack by
PR 9 — all of them with injectable clocks and sleeps so chaos tests
drive every state transition deterministically:

* :class:`Retrier` — bounded retry with exponential backoff and
  deterministic-seeded jitter; used around transient SQLite errors
  (``database is locked`` / ``busy``), ``.core`` mmap reads, and
  process-pool builds.  Retries preserve bit-identical output because
  they only re-run *idempotent* reads/builds — never a partial write.
* :class:`CircuitBreaker` — classic closed → open → half-open cycle
  over a failure counter, consulted at the serving edge so a persistent
  engine failure sheds load fast (503 + ``Retry-After``) instead of
  queueing doomed work.
* :class:`Deadline` — a monotonic-clock deadline carried from the wire
  (``deadline_ms``) into the cooperative scheduler, which stops at a
  slice boundary and returns a partial page instead of hanging.

Cross-cutting counters land in the module-level :data:`COUNTERS`
registry, which the gateway's ``/metrics`` and the engine's stats
mirror — the acceptance signal that recovery paths actually ran
(fault injection off ⇒ every counter stays zero).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable

from ..obs.metrics import Counter, Family


class _Counters:
    """A thread-safe named-counter registry backed by a labeled family.

    The legacy ``bump``/``get``/``snapshot``/``reset`` API is unchanged;
    underneath, each name is a child of the
    ``repro_resilience_events_total{event=...}`` counter family, so the
    gateway registry renders recovery events as typed counters.
    """

    def __init__(self):
        self.family = Family(
            Counter,
            "repro_resilience_events_total",
            "Recovery events (retries, respawns, downgrades) by name.",
            labelnames=("event",),
        )

    def bump(self, name: str, by: int = 1) -> None:
        self.family.labels(name).inc(by)

    def get(self, name: str) -> int:
        child = self.family.get(name)
        return int(child) if child is not None else 0

    def snapshot(self) -> dict[str, int]:
        return {
            key[0]: int(child)
            for key, child in self.family.children().items()
        }

    def reset(self) -> None:
        """Test hook: zero every counter."""
        self.family.clear()


#: Process-wide recovery counters (``retries_*``, ``worker_respawns``,
#: ``pool_downgrades``, ...).  Exported on ``/metrics`` under
#: ``resilience`` and mirrored into ``EngineStats``.
COUNTERS = _Counters()


def transient_sqlite(exc: BaseException) -> bool:
    """Whether ``exc`` is a retryable transient SQLite error."""
    import sqlite3

    if not isinstance(exc, sqlite3.OperationalError):
        return False
    text = str(exc).lower()
    return "locked" in text or "busy" in text


class Retrier:
    """Bounded retry with exponential backoff plus seeded jitter.

    ``attempts`` counts *total* tries (1 = no retry).  ``retryable``
    filters which exceptions earn another try; anything else — and the
    final failure — propagates unchanged, so callers never see a new
    exception type.  ``sleep``/``rng`` are injectable: tests freeze them
    and assert the exact backoff schedule.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.01,
        max_delay: float = 0.25,
        jitter: float = 0.5,
        retryable: Callable[[BaseException], bool] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        seed: int = 0,
        label: str | None = None,
    ):
        if attempts < 1:
            raise ValueError(f"attempts must be at least 1, got {attempts}")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.retryable = retryable or (lambda _exc: True)
        self._sleep = sleep
        self._rng = random.Random(seed)
        self.label = label
        #: Retries performed by this instance (total over all calls).
        self.retries = 0

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based), with jitter."""
        delay = min(self.max_delay, self.base_delay * (2 ** attempt))
        if self.jitter:
            delay *= 1.0 + self.jitter * self._rng.random()
        return delay

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` with retries; re-raises its last exception."""
        for attempt in range(self.attempts):
            try:
                return fn(*args, **kwargs)
            except Exception as exc:
                if attempt == self.attempts - 1 or not self.retryable(exc):
                    raise
                self.retries += 1
                if self.label:
                    COUNTERS.bump(f"retries_{self.label}")
                self._sleep(self.backoff(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def __repr__(self) -> str:
        return (
            f"Retrier(attempts={self.attempts}, base={self.base_delay}, "
            f"label={self.label!r})"
        )


class CircuitBreaker:
    """Closed → open → half-open breaker over consecutive failures.

    ``record_failure`` trips the breaker open after
    ``failure_threshold`` consecutive failures; while open, ``allow``
    refuses everything until ``reset_timeout`` seconds pass, then lets
    ``half_open_max`` probe requests through.  A probe success closes
    the breaker, a probe failure re-opens it (and restarts the timer).
    All transitions run on the injectable ``clock`` — the chaos suite
    walks the full cycle with a frozen clock.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        #: Requests refused while open (load shed by the breaker).
        self.rejected = Counter(
            "repro_breaker_rejected_total",
            "Requests refused while the breaker was open.",
        )
        #: Times the breaker tripped open (incl. re-opens from half-open).
        self.opened = Counter(
            "repro_breaker_opened_total",
            "Times the breaker tripped open.",
        )

    # -- state machine ---------------------------------------------------------

    def _transition_locked(self, now: float) -> None:
        if (
            self._state == self.OPEN
            and now - self._opened_at >= self.reset_timeout
        ):
            self._state = self.HALF_OPEN
            self._probes = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._transition_locked(self._clock())
            return self._state

    def allow(self) -> bool:
        """Whether a request may proceed right now (False = shed it)."""
        with self._lock:
            now = self._clock()
            self._transition_locked(now)
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and self._probes < self.half_open_max:
                self._probes += 1
                return True
            self.rejected += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state == self.HALF_OPEN:
                self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            now = self._clock()
            self._transition_locked(now)
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = now
                self.opened += 1
                return
            self._failures += 1
            if self._state == self.CLOSED and self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = now
                self.opened += 1

    def retry_after(self) -> float:
        """Seconds until the breaker next admits a probe (0 if it would now)."""
        with self._lock:
            now = self._clock()
            self._transition_locked(now)
            if self._state != self.OPEN:
                return 0.0
            return max(0.0, self.reset_timeout - (now - self._opened_at))

    def snapshot(self) -> dict:
        with self._lock:
            self._transition_locked(self._clock())
            return {
                "state": self._state,
                "open": self._state != self.CLOSED,
                "failures": self._failures,
                "opened": int(self.opened),
                "rejected": int(self.rejected),
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.state}, failures={self._failures})"


class Deadline:
    """A monotonic-clock deadline carried through a fetch.

    Built from the wire-level ``deadline_ms`` at the edge; the
    cooperative scheduler consults :meth:`expired` at every slice
    boundary, so an expired deadline costs at most one more slice —
    the partial page already enumerated is returned, never discarded.
    """

    __slots__ = ("at", "_clock")

    def __init__(self, at: float, clock: Callable[[], float] = time.monotonic):
        self.at = at
        self._clock = clock

    @classmethod
    def after_ms(
        cls, ms: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(clock() + ms / 1000.0, clock)

    def expired(self) -> bool:
        return self._clock() >= self.at

    def remaining(self) -> float:
        return max(0.0, self.at - self._clock())

    def __repr__(self) -> str:
        return f"Deadline(in {self.remaining() * 1e3:.1f} ms)"
