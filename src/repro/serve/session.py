"""Named serving sessions: cursors, budgets, eviction, fair scheduling.

One :class:`SessionManager` wraps one :class:`~repro.engine.Engine` and
multiplexes it across many clients:

* a :class:`Session` is a named bundle of open cursors with its own
  result budget and last-used stamp; sessions are LRU-ordered and
  evicted past ``max_sessions`` or after ``ttl_seconds`` idle;
* every fetch is routed through a :class:`CooperativeScheduler`, which
  splits it into bounded slices (``slice_size`` results at a time).  In
  the asyncio server each slice is followed by a yield to the event
  loop, so a heavy request — say a cycle query enumerating its
  worst-case output — cannot starve cheap path queries queued behind
  it: they interleave at slice granularity, each paying only its own
  incremental any-k delay;
* budgets are enforced per session across all its cursors, which is the
  backstop that keeps one client from walking a combinatorial output to
  the bottom through the memoizing prefix cache.

The manager is thread-safe (one lock for the session table; streams and
engine caches have their own), so the same object serves an asyncio
event loop, worker threads, or both.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.engine.engine import Engine
from repro.enumeration.result import QueryResult
from repro.obs.metrics import Counter, MetricsRegistry
from repro.serve.cursor import Cursor, CursorBudgetExceeded
from repro.serve.resilience import Deadline
from repro.util import faults


class ServeError(Exception):
    """Base class for serving-layer errors (carries a protocol code)."""

    code = "serve_error"


class UnknownSession(ServeError):
    code = "unknown_session"


class UnknownCursor(ServeError):
    code = "unknown_cursor"


class SessionBudgetExceeded(ServeError):
    code = "budget_exceeded"


@dataclass
class FetchOutcome:
    """One fetch's results plus the cursor state the client needs."""

    results: list[QueryResult]
    position: int
    exhausted: bool
    #: Scheduler slices this fetch was split into (observability).
    slices: int = 1
    #: True when the fetch stopped early at its deadline; the results
    #: already enumerated form a valid (partial) ranked prefix.
    deadline_exceeded: bool = False


class CooperativeScheduler:
    """Time-slices fetches into bounded batches for fair interleaving.

    The synchronous :meth:`run` keeps the slicing (so budget checks and
    accounting are identical on every path); the asynchronous
    :meth:`run_async` additionally yields to the event loop between
    slices — that yield is the entire fairness mechanism, and it works
    precisely because any-k enumeration is incremental: a slice of
    ``slice_size`` results costs only those results' delays, never a
    full re-ranking.
    """

    def __init__(self, slice_size: int = 64):
        if slice_size < 1:
            raise ValueError(f"slice size must be positive, got {slice_size}")
        self.slice_size = slice_size
        #: Total slices executed (over all fetches).
        self.slices = Counter(
            "repro_scheduler_slices_total", "Scheduler slices executed."
        )
        #: Total event-loop yields taken between slices.
        self.yields = Counter(
            "repro_scheduler_yields_total",
            "Event-loop yields taken between slices.",
        )
        #: Fetches that stopped early because their deadline expired.
        self.deadline_stops = Counter(
            "repro_scheduler_deadline_stops_total",
            "Fetches stopped early at their deadline.",
        )

    def _slices(self, n: int) -> Iterator[int]:
        full, rest = divmod(n, self.slice_size)
        for _ in range(full):
            yield self.slice_size
        if rest:
            yield rest


    def _fetch_slice(
        self, cursor: Cursor, size: int
    ) -> list[QueryResult] | None:
        """One budget-tolerant slice; ``None`` means "stop serving now".

        The upfront clamp can be raced by another consumer of the same
        cursor (two connections may share a cursor id), so a budget trip
        *mid-slicing* is treated as end-of-page — the results already
        served stay served — rather than an error that would discard
        them.
        """
        faults.hit("fetch.slice")
        try:
            return cursor.fetch(size)
        except CursorBudgetExceeded:
            remaining = cursor.remaining_budget or 0
            if not remaining:
                return None
            try:
                return cursor.fetch(remaining)
            except CursorBudgetExceeded:
                return None

    def run(
        self, cursor: Cursor, n: int, deadline: Deadline | None = None
    ) -> tuple[list[QueryResult], int, bool]:
        """Fetch ``n`` results as a sequence of bounded slices.

        A ``deadline`` is checked before every slice — an expired fetch
        stops at the slice boundary and the prefix enumerated so far is
        returned as a partial page (third element of the return value
        flags the early stop).
        """
        out: list[QueryResult] = []
        used = 0
        expired = False
        for size in self._slices(cursor.clamped(n)):
            if deadline is not None and deadline.expired():
                expired = True
                self.deadline_stops += 1
                break
            page = self._fetch_slice(cursor, size)
            if page is None:
                break
            out.extend(page)
            self.slices += 1
            used += 1
            if len(page) < size:
                break
        return out, max(1, used), expired

    async def run_async(
        self,
        cursor: Cursor,
        n: int,
        sink: "Callable | None" = None,
        deadline: Deadline | None = None,
    ) -> tuple[list[QueryResult], int, bool]:
        """Like :meth:`run`, yielding to the event loop between slices.

        ``sink`` (``async def sink(start_rank, page)``) is awaited after
        every slice — the server streams each page out (with transport
        backpressure) while the enumeration is still advancing.
        """
        out: list[QueryResult] = []
        used = 0
        expired = False
        for size in self._slices(cursor.clamped(n)):
            if deadline is not None and deadline.expired():
                expired = True
                self.deadline_stops += 1
                break
            start = cursor.position
            page = self._fetch_slice(cursor, size)
            if page is None:
                break
            self.slices += 1
            used += 1
            out.extend(page)
            if sink is not None:
                try:
                    await sink(start, page)
                except BaseException:
                    # Slice never reached the client (disconnect mid
                    # stream): take it back so the cursor's position
                    # reflects *delivered* results — a reconnecting
                    # client re-fetches this page instead of silently
                    # losing it (the memo makes the replay free).
                    # unfetch is conditional: it never rolls back a
                    # concurrent reader's consumption of this cursor.
                    cursor.unfetch(start, len(page))
                    raise
            if len(page) < size:
                break
            self.yields += 1
            await asyncio.sleep(0)
        return out, max(1, used), expired


@dataclass
class Session:
    """One client's named state: open cursors plus a result budget."""

    name: str
    budget: int | None = None
    created: float = 0.0
    last_used: float = 0.0
    served: int = 0
    cursors: dict[str, Cursor] = field(default_factory=dict)
    queries: dict[str, str] = field(default_factory=dict)
    #: Per-cursor default fetch deadline in milliseconds (from
    #: ``prepare``'s ``deadline_ms``); a fetch-level value overrides it.
    deadlines: dict[str, float] = field(default_factory=dict)
    _next_cursor: int = 0

    def check_budget(self, n: int) -> None:
        """Raise if serving ``n`` more results would overrun the budget.

        Checked *before* any enumeration work: an over-budget request
        fails fast instead of advancing the cursor and discarding the
        page.
        """
        if self.budget is not None and self.served + n > self.budget:
            raise SessionBudgetExceeded(
                f"session {self.name!r}: budget of {self.budget} results "
                f"exhausted ({self.served} served, {n} more requested)"
            )

    def new_cursor_id(self) -> str:
        cursor_id = f"c{self._next_cursor}"
        self._next_cursor += 1
        return cursor_id

    def cursor(self, cursor_id: str) -> Cursor:
        try:
            return self.cursors[cursor_id]
        except KeyError:
            raise UnknownCursor(
                f"session {self.name!r} has no cursor {cursor_id!r}"
            ) from None


class SessionManager:
    """Named sessions over one engine, with eviction and fair fetches.

    ``result_budget`` is the default per-session cap (None = unlimited);
    ``ttl_seconds`` expires idle sessions lazily (on any access) and via
    :meth:`evict_expired`; ``max_sessions`` LRU-evicts the
    least-recently-used session, closing its cursors.  Evicting a
    session drops its cursors but not the engine's memoized streams —
    a re-opened session over the same query resumes from the shared
    prefix without re-enumerating.
    """

    def __init__(
        self,
        engine: Engine,
        max_sessions: int = 64,
        ttl_seconds: float | None = None,
        result_budget: int | None = None,
        slice_size: int = 64,
        clock: Callable[[], float] = time.monotonic,
        memory_budget_bytes: int | None = None,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be positive")
        self.engine = engine
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self.result_budget = result_budget
        #: Per-session cap on estimated bytes held by memoized prefixes
        #: (None = unenforced; estimates are still exported as gauges).
        self.memory_budget_bytes = memory_budget_bytes
        self.scheduler = CooperativeScheduler(slice_size)
        self._clock = clock
        self._lock = threading.RLock()
        self._sessions: dict[str, Session] = {}
        self.evictions = Counter(
            "repro_sessions_evicted_total", "Sessions LRU-evicted."
        )
        self.expirations = Counter(
            "repro_sessions_expired_total", "Sessions expired by TTL."
        )

    # -- session lifecycle -----------------------------------------------------

    def session(self, name: str, create: bool = True) -> Session:
        """Fetch (and LRU-touch) the named session, creating it if asked."""
        with self._lock:
            self._sweep_expired_locked()
            session = self._sessions.get(name)
            if session is None:
                if not create:
                    raise UnknownSession(f"no session named {name!r}")
                now = self._clock()
                session = Session(
                    name,
                    budget=self.result_budget,
                    created=now,
                    last_used=now,
                )
                self._sessions[name] = session
                while len(self._sessions) > self.max_sessions:
                    evicted = min(
                        self._sessions.values(), key=lambda s: s.last_used
                    )
                    self._drop_locked(evicted.name)
                    self.evictions += 1
            else:
                session.last_used = self._clock()
            return session

    def _sweep_expired_locked(self) -> None:
        if self.ttl_seconds is None:
            return
        deadline = self._clock() - self.ttl_seconds
        for name in [
            name
            for name, session in self._sessions.items()
            if session.last_used < deadline
        ]:
            self._drop_locked(name)
            self.expirations += 1

    def evict_expired(self) -> int:
        """Expire idle sessions now; returns how many were dropped."""
        with self._lock:
            before = len(self._sessions)
            self._sweep_expired_locked()
            return before - len(self._sessions)

    def _drop_locked(self, name: str) -> None:
        session = self._sessions.pop(name, None)
        if session is not None:
            session.cursors.clear()

    def close_session(self, name: str) -> None:
        """Drop the named session and all its cursors."""
        with self._lock:
            if name not in self._sessions:
                raise UnknownSession(f"no session named {name!r}")
            self._drop_locked(name)

    def session_names(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def close(self) -> int:
        """Drop every session (and its cursors); returns how many.

        Called by server shutdown so a stopped server does not keep
        engine streams pinned through orphaned cursors.  The engine's
        own memoized prefixes are untouched — a restarted server over
        the same engine still resumes warm.
        """
        with self._lock:
            names = list(self._sessions)
            for name in names:
                self._drop_locked(name)
            return len(names)

    # -- cursors ---------------------------------------------------------------

    def open_cursor(
        self,
        session_name: str,
        query: str,
        algorithm: str = "take2",
        dioid=None,
        projection: str = "all_weight",
        budget: int | None = None,
        shards: int | None = None,
        shard_tie_break: str = "arrival",
        shard_strategy: str = "range",
        shard_parallel: str = "auto",
        deadline_ms: float | None = None,
    ) -> tuple[Session, str]:
        """Prepare ``query`` in the session; returns its new cursor id.

        Preparation goes through the engine's caches, so many sessions
        opening cursors on the same query share one plan, one bound
        T-DP, and one memoized stream.  ``shards`` routes the prepare
        through the parallel execution layer; cursors over the same
        query with *different* shard configurations get distinct plans
        and distinct memoized prefixes (the shard spec is part of every
        engine cache key).
        """
        from repro.ranking.dioid import TROPICAL

        # Prepare/bind runs outside the manager lock (it can be the
        # slow part); the session is resolved *atomically with* cursor
        # registration below, so an eviction or TTL expiry racing the
        # prepare can never leave the cursor on an orphaned session.
        prepared = self.engine.prepare(
            query,
            dioid=TROPICAL if dioid is None else dioid,
            algorithm=algorithm,
            projection=projection,
            shards=shards,
            shard_tie_break=shard_tie_break,
            shard_strategy=shard_strategy,
            shard_parallel=shard_parallel,
        )
        cursor = prepared.cursor(budget=budget)
        with self._lock:
            session = self.session(session_name)
            cursor_id = session.new_cursor_id()
            session.cursors[cursor_id] = cursor
            session.queries[cursor_id] = (
                query if isinstance(query, str) else repr(query)
            )
            if deadline_ms is not None:
                session.deadlines[cursor_id] = float(deadline_ms)
        return session, cursor_id

    def cursor(self, session_name: str, cursor_id: str) -> Cursor:
        return self.session(session_name, create=False).cursor(cursor_id)

    def close_cursor(self, session_name: str, cursor_id: str) -> None:
        session = self.session(session_name, create=False)
        with self._lock:
            session.cursor(cursor_id)
            del session.cursors[cursor_id]
            session.queries.pop(cursor_id, None)
            session.deadlines.pop(cursor_id, None)

    # -- fetching --------------------------------------------------------------

    def reserve_budget(self, session: Session, n: int) -> None:
        """Atomically check *and reserve* ``n`` results of budget.

        Reservation (instead of check-then-record around the fetch)
        closes the overrun race: two concurrent over-half-budget
        fetches on one session cannot both pass the check, whether they
        interleave across threads or across the event loop's awaits.
        Unused reservation is returned via :meth:`settle_budget`.
        """
        with self._lock:
            session.check_budget(n)
            session.served += n

    def settle_budget(self, session: Session, reserved: int, served: int) -> None:
        """Refund the unused part of a reservation (``served <= reserved``)."""
        with self._lock:
            session.served -= reserved - served

    def _fetch_prologue(
        self, session_name: str, cursor_id: str, n: int
    ) -> tuple[Session, Cursor, int]:
        """Resolve the cursor, clamp ``n`` to its budget, reserve session
        budget for the clamped amount (refunded after the fetch)."""
        if n < 0:
            raise ServeError(f"fetch size must be non-negative, got {n}")
        session = self.session(session_name, create=False)
        cursor = session.cursor(cursor_id)
        n = cursor.clamped(n)
        if self.memory_budget_bytes is not None:
            held = self.session_memory_bytes(session)
            if held > self.memory_budget_bytes:
                raise SessionBudgetExceeded(
                    f"session {session.name!r}: memory budget of "
                    f"{self.memory_budget_bytes} bytes exceeded "
                    f"(~{held} bytes held by memoized prefixes)"
                )
        self.reserve_budget(session, n)
        return session, cursor, n

    def _fetch_epilogue(
        self,
        session: Session,
        cursor: Cursor,
        results: list[QueryResult],
        slices: int,
        deadline_exceeded: bool = False,
    ) -> FetchOutcome:
        return FetchOutcome(
            results=results,
            position=cursor.position,
            exhausted=cursor.exhausted,
            slices=slices,
            deadline_exceeded=deadline_exceeded,
        )

    def _deadline(
        self, session: Session, cursor_id: str, deadline_ms: float | None
    ) -> Deadline | None:
        """The effective deadline of one fetch, on the manager's clock.

        A per-fetch ``deadline_ms`` wins; otherwise the cursor's default
        from ``prepare`` applies; otherwise there is no deadline.  The
        countdown starts *now* — at fetch start, not cursor open.
        """
        if deadline_ms is None:
            deadline_ms = session.deadlines.get(cursor_id)
        if deadline_ms is None:
            return None
        return Deadline(self._clock() + deadline_ms / 1000.0, self._clock)

    def fetch(
        self,
        session_name: str,
        cursor_id: str,
        n: int,
        deadline_ms: float | None = None,
    ) -> FetchOutcome:
        """Serve the next ``n`` answers of a cursor (synchronous path)."""
        session, cursor, n = self._fetch_prologue(session_name, cursor_id, n)
        deadline = self._deadline(session, cursor_id, deadline_ms)
        begin = cursor.position
        served = 0
        expired = False
        with self.engine.tracer.span(
            "session.fetch", session=session_name, cursor=cursor_id, n=n
        ) as span:
            try:
                results, slices, expired = self.scheduler.run(
                    cursor, n, deadline=deadline
                )
                served = len(results)
            finally:
                # Exception path: charge whatever the cursor actually
                # consumed (delivered slices), not zero — a client that
                # aborts fetches mid-flight must still spend its budget.
                if served == 0:
                    served = max(0, cursor.position - begin)
                self.settle_budget(session, n, served)
                span.set(served=served, deadline_exceeded=expired)
        return self._fetch_epilogue(session, cursor, results, slices, expired)

    async def fetch_async(
        self,
        session_name: str,
        cursor_id: str,
        n: int,
        sink: "Callable | None" = None,
        deadline_ms: float | None = None,
    ) -> FetchOutcome:
        """Serve the next ``n`` answers, time-sliced across the event loop.

        ``sink`` streams each slice as it is enumerated (see
        :meth:`CooperativeScheduler.run_async`) — the server's
        backpressure path.
        """
        session, cursor, n = self._fetch_prologue(session_name, cursor_id, n)
        deadline = self._deadline(session, cursor_id, deadline_ms)
        begin = cursor.position
        served = 0
        expired = False
        with self.engine.tracer.span(
            "session.fetch", session=session_name, cursor=cursor_id, n=n
        ) as span:
            try:
                results, slices, expired = await self.scheduler.run_async(
                    cursor, n, sink=sink, deadline=deadline
                )
                served = len(results)
            finally:
                # Exception path: the scheduler rewound the undelivered
                # slice, so the position delta is exactly what the client
                # received — charge that, never zero, against the budget.
                if served == 0:
                    served = max(0, cursor.position - begin)
                self.settle_budget(session, n, served)
                span.set(served=served, deadline_exceeded=expired)
        return self._fetch_epilogue(session, cursor, results, slices, expired)

    # -- observability ---------------------------------------------------------

    def session_memory_bytes(self, session: Session) -> int:
        """Estimated bytes of memoized prefix held by one session.

        Cursors over the same query share one memoized stream, so
        streams are deduplicated by identity — a session with ten
        cursors on one query is charged for one prefix, not ten.
        """
        seen: set[int] = set()
        total = 0
        for cursor in list(session.cursors.values()):
            try:
                stream = cursor.stream
            except Exception:
                continue
            if stream is None or id(stream) in seen:
                continue
            seen.add(id(stream))
            total += stream.memory_bytes()
        return total

    def memory_by_session(self) -> dict[str, int]:
        """``{session name: estimated prefix bytes}`` (scrape-time)."""
        with self._lock:
            return {
                name: self.session_memory_bytes(session)
                for name, session in self._sessions.items()
            }

    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Attach session/scheduler instruments to a deployment registry."""
        registry.attach(self.scheduler.slices)
        registry.attach(self.scheduler.yields)
        registry.attach(self.scheduler.deadline_stops)
        registry.attach(self.evictions)
        registry.attach(self.expirations)
        registry.gauge(
            "repro_sessions_open",
            "Sessions currently open.",
            fn=lambda: len(self._sessions),
        )
        registry.gauge(
            "repro_cursors_open",
            "Cursors currently open across all sessions.",
            fn=lambda: sum(
                len(s.cursors) for s in list(self._sessions.values())
            ),
        )
        registry.callback(
            "repro_session_memory_bytes",
            self.memory_by_session,
            kind="gauge",
            help="Estimated memoized-prefix bytes held per session.",
            labelnames=("session",),
        )

    def explain(self, session_name: str, cursor_id: str) -> str:
        """The (bound) plan report of a cursor's prepared query."""
        return self.cursor(session_name, cursor_id).prepared.explain()

    def stats(self) -> dict[str, Any]:
        """Snapshot across sessions, scheduler, and engine caches."""
        with self._lock:
            def cursor_stats(session: Session, cursor_id: str, cursor: Cursor) -> dict:
                entry = {
                    "query": session.queries.get(cursor_id, ""),
                    "position": cursor.position,
                    "exhausted": cursor.exhausted,
                }
                shard = cursor.prepared.logical.shard
                if shard is not None:
                    entry["shards"] = shard.shards
                    entry["shard_tie_break"] = shard.tie_break
                return entry

            sessions = {
                name: {
                    "cursors": {
                        cursor_id: cursor_stats(session, cursor_id, cursor)
                        for cursor_id, cursor in session.cursors.items()
                    },
                    "served": session.served,
                    "budget": session.budget,
                    "memory_bytes": self.session_memory_bytes(session),
                    "idle_seconds": round(
                        self._clock() - session.last_used, 3
                    ),
                }
                for name, session in self._sessions.items()
            }
            return {
                "sessions": sessions,
                "session_count": len(sessions),
                "evictions": int(self.evictions),
                "expirations": int(self.expirations),
                "memory_budget_bytes": self.memory_budget_bytes,
                "scheduler": {
                    "slice_size": self.scheduler.slice_size,
                    "slices": int(self.scheduler.slices),
                    "yields": int(self.scheduler.yields),
                    "deadline_stops": int(self.scheduler.deadline_stops),
                },
                "engine": self.engine.stats.as_dict(),
            }

    def __repr__(self) -> str:
        return (
            f"SessionManager({len(self._sessions)} sessions, "
            f"max={self.max_sessions}, ttl={self.ttl_seconds})"
        )
