"""Minimum-cost homomorphism and ranked homomorphism enumeration (§8.2).

The paper closes with the observation that CQ evaluation, constraint
satisfaction, and hypergraph homomorphism are the same problem: this
package reduces the (ranked) homomorphism problem between hypergraphs
to ranked CQ enumeration, inheriting all optimality guarantees —
acyclic patterns get linear-time top-1 (Algorithm 3's DP over a pinned
decomposition), cyclic patterns go through the decompositions.
"""

from repro.homomorphism.mch import (
    min_cost_homomorphism,
    pattern_query,
    ranked_homomorphisms,
)
from repro.homomorphism.patterns import (
    best_subgraph_match,
    ranked_subgraph_matches,
)

__all__ = [
    "min_cost_homomorphism",
    "ranked_homomorphisms",
    "pattern_query",
    "ranked_subgraph_matches",
    "best_subgraph_match",
]
