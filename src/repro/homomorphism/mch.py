"""Ranked enumeration of hypergraph homomorphisms (Section 8.2).

A *pattern* hypergraph is given as a list of ordered hyperedges over
named vertices; a *target* as a list of same-arity edges over values,
each with a weight (``w: E(G) -> R``).  A homomorphism maps pattern
vertices to target values such that the image of every pattern edge is
a target edge; its cost aggregates the images' weights with the dioid's
``times`` (Definition 26 generalised from sums to any selective dioid).

The reduction to CQ evaluation is the classical one [30, 70]: one atom
per pattern edge, all atoms of arity ``k`` referencing the relation of
``k``-ary target edges (a big self-join).  Ranked enumeration of the
resulting full CQ *is* ranked enumeration of homomorphisms, so:

* acyclic patterns get the Algorithm 3 guarantees — the top (minimum
  cost) homomorphism after one linear bottom-up pass, then any-k;
* cyclic patterns route through the decompositions, whose weight
  *pinning* (each pattern edge's weight charged to exactly one bag) is
  exactly the paper's pinned hypertree decomposition (Definition 25).

Loops (repeated vertices within one pattern edge) are supported through
the repeated-variable atom machinery.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.enumeration.api import ranked_enumerate
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import TROPICAL, SelectiveDioid
from repro.util.counters import OpCounter

#: A pattern edge: an ordered tuple of vertex names, e.g. ("u", "v").
PatternEdge = Sequence[str]
#: A target edge: an ordered tuple of values.
TargetEdge = Sequence


def pattern_query(pattern_edges: Sequence[PatternEdge]) -> ConjunctiveQuery:
    """The CQ whose answers are the homomorphisms of the pattern.

    Pattern edges of arity ``k`` become atoms over the relation ``G_k``;
    the query head lists every pattern vertex, so each answer *is* a
    vertex mapping.
    """
    if not pattern_edges:
        raise ValueError("pattern needs at least one edge")
    atoms = [
        Atom(f"G{len(edge)}", tuple(edge)) for edge in pattern_edges
    ]
    return ConjunctiveQuery(head=None, atoms=atoms, name="Hom")


def target_database(
    target_edges: Sequence[TargetEdge],
    weights: Sequence[Any] | None = None,
) -> Database:
    """Group target edges by arity into the relations ``G_k``."""
    if weights is None:
        weights = [0.0] * len(target_edges)
    if len(weights) != len(target_edges):
        raise ValueError("one weight per target edge required")
    by_arity: dict[int, Relation] = {}
    for edge, weight in zip(target_edges, weights):
        edge = tuple(edge)
        relation = by_arity.get(len(edge))
        if relation is None:
            relation = Relation(f"G{len(edge)}", len(edge))
            by_arity[len(edge)] = relation
        relation.add(edge, weight)
    return Database(list(by_arity.values()))


def ranked_homomorphisms(
    pattern_edges: Sequence[PatternEdge],
    target_edges: Sequence[TargetEdge],
    weights: Sequence[Any] | None = None,
    dioid: SelectiveDioid = TROPICAL,
    algorithm: str = "take2",
    counter: OpCounter | None = None,
) -> Iterator[tuple[Any, dict[str, Any]]]:
    """Yield ``(cost, vertex_mapping)`` in increasing cost order.

    The pattern may be cyclic; arities of pattern and target edges must
    correspond (a pattern edge of arity ``k`` can only map onto ``k``-ary
    target edges).
    """
    query = pattern_query(pattern_edges)
    missing = {
        atom.relation_name
        for atom in query.atoms
    } - {f"G{len(e)}" for e in target_edges}
    if missing:
        raise ValueError(
            f"target has no edges for pattern arities {sorted(missing)}"
        )
    database = target_database(target_edges, weights)
    results = ranked_enumerate(
        database, query, dioid=dioid, algorithm=algorithm, counter=counter
    )
    for result in results:
        yield result.weight, dict(result.assignment)


def min_cost_homomorphism(
    pattern_edges: Sequence[PatternEdge],
    target_edges: Sequence[TargetEdge],
    weights: Sequence[Any] | None = None,
    dioid: SelectiveDioid = TROPICAL,
) -> tuple[Any, dict[str, Any]] | None:
    """The Definition 26 problem: decide existence, return the optimum.

    Returns ``None`` when no homomorphism exists, otherwise the pair
    ``(minimum cost, witnessing vertex mapping)``.  For acyclic patterns
    this takes one linear DP pass (Algorithm 3 / Theorem 27); for cyclic
    patterns the decomposition bound applies.
    """
    stream = ranked_homomorphisms(
        pattern_edges, target_edges, weights, dioid=dioid, algorithm="lazy"
    )
    return next(stream, None)
