"""Ranked graph-pattern matching on top of homomorphisms.

The any-k line of work the paper builds on ([101], [31]) targets
*graph-pattern* retrieval: rank the embeddings of a small pattern in a
large labelled graph.  This module wraps the homomorphism reduction for
that use case and adds the option the graph-pattern literature usually
wants: **injective** matching (subgraph isomorphism), where distinct
pattern vertices must map to distinct graph nodes.

Injectivity is not expressible inside the CQ framework without
inequality atoms, so it is applied as a post-filter on the ranked
homomorphism stream.  Ranking order is preserved; the delay guarantee
degrades to the number of consecutive non-injective results skipped
(the classic trade-off — [101] makes the same choice).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.data.relation import Relation
from repro.homomorphism.mch import ranked_homomorphisms
from repro.ranking.dioid import TROPICAL, SelectiveDioid


def ranked_subgraph_matches(
    pattern_edges: Sequence[Sequence[str]],
    graph: Relation | Sequence[tuple],
    weights: Sequence[Any] | None = None,
    injective: bool = True,
    dioid: SelectiveDioid = TROPICAL,
    algorithm: str = "take2",
) -> Iterator[tuple[Any, dict[str, Any]]]:
    """Yield ``(cost, vertex_mapping)`` for pattern embeddings, ranked.

    ``graph`` is either a weighted binary :class:`Relation` (weights
    taken from it) or a plain edge list (then pass ``weights``).  With
    ``injective=True`` (the default, subgraph-isomorphism semantics),
    mappings that collapse pattern vertices are skipped.
    """
    if isinstance(graph, Relation):
        if graph.arity != 2:
            raise ValueError("graph relation must be binary")
        target_edges: Sequence[tuple] = graph.tuples
        edge_weights = graph.weights if weights is None else weights
    else:
        target_edges = [tuple(e) for e in graph]
        edge_weights = weights
    stream = ranked_homomorphisms(
        pattern_edges,
        target_edges,
        edge_weights,
        dioid=dioid,
        algorithm=algorithm,
    )
    if not injective:
        yield from stream
        return
    for cost, mapping in stream:
        values = list(mapping.values())
        if len(set(values)) == len(values):
            yield cost, mapping


def best_subgraph_match(
    pattern_edges: Sequence[Sequence[str]],
    graph: Relation | Sequence[tuple],
    weights: Sequence[Any] | None = None,
    injective: bool = True,
    dioid: SelectiveDioid = TROPICAL,
) -> tuple[Any, dict[str, Any]] | None:
    """The cheapest (injective) embedding, or ``None``."""
    stream = ranked_subgraph_matches(
        pattern_edges, graph, weights, injective=injective, dioid=dioid,
        algorithm="lazy",
    )
    return next(stream, None)
