"""Workload builders for every experiment in the paper.

Sizes are scaled down from the paper's Java setup (10^4–10^6 tuples) to
pure-Python-friendly sizes (10^2–10^4 tuples); the *relationships*
between workloads (path vs star vs cycle, small-TTL vs large-top-k,
synthetic vs graph data) are preserved.  Every builder is deterministic
(fixed seeds) so benchmark runs are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data.database import Database
from repro.data.generators import (
    uniform_database,
    worst_case_cycle_database,
)
from repro.data.graphs import bitcoin_otc_like, twitter_like
from repro.query.builders import cycle_query, path_query, star_query
from repro.query.cq import ConjunctiveQuery


@dataclass
class Workload:
    """A named experiment cell: database + query + requested k."""

    name: str
    database: Database
    query: ConjunctiveQuery
    k: int | None  # None = enumerate everything (TTL experiment)

    def __repr__(self) -> str:
        n = self.database.max_cardinality(
            set(self.query.relation_names())
        )
        suffix = "all" if self.k is None else f"top-{self.k}"
        return f"Workload({self.name}, n={n}, {suffix})"


def _graph_db(relation) -> Database:
    return Database([relation.rename("E")])


def synthetic_small(shape: str, size: int) -> Workload:
    """TTL cells (Figs 10a/e/i, 11a/e, 12a/e, 13a): full enumeration.

    Sized so the full output is a few tens of thousands of tuples.
    """
    if shape == "cycle":
        n = {3: 400, 4: 300, 6: 60}[size]
        db = worst_case_cycle_database(size, n, seed=97)
        return Workload(f"{size}-{shape}/syn-small", db, cycle_query(size), None)
    fanout = 4
    n = {3: 2_000, 4: 800, 6: 80}[size]
    db = uniform_database(size, n, domain_size=max(2, n // fanout), seed=97)
    query = path_query(size) if shape == "path" else star_query(size)
    return Workload(f"{size}-{shape}/syn-small", db, query, None)


def synthetic_large(shape: str, size: int, k: int | None = None) -> Workload:
    """Top-k cells (Figs 10b/f/j, ...): top n/2 of a huge output."""
    if shape == "cycle":
        n = 4_000
        db = worst_case_cycle_database(size, n, seed=93)
        return Workload(
            f"{size}-{shape}/syn-large", db, cycle_query(size), k or n // 2
        )
    n = 10_000
    db = uniform_database(size, n, seed=93)
    query = path_query(size) if shape == "path" else star_query(size)
    return Workload(f"{size}-{shape}/syn-large", db, query, k or n // 2)


def bitcoin(shape: str, size: int, k: int | None = None) -> Workload:
    """Bitcoin-OTC-like trust network cells (Figs 10c/g/k, ...).

    Long cycles use a smaller sample, mirroring the paper's use of the
    smaller TwitterS for its (more expensive) cycle queries.
    """
    if shape == "cycle" and size >= 5:
        edges = bitcoin_otc_like(num_nodes=700, num_edges=3_500, seed=7)
    else:
        edges = bitcoin_otc_like(num_nodes=1_200, num_edges=7_000, seed=7)
    db = _graph_db(edges)
    if shape == "cycle":
        query = cycle_query(size, relation="E")
        default_k = 2 * len(edges)
    else:
        query = (
            path_query(size, relation="E")
            if shape == "path"
            else star_query(size, relation="E")
        )
        default_k = len(edges) // 2
    return Workload(f"{size}-{shape}/bitcoin", db, query, k or default_k)


def twitter(shape: str, size: int, k: int | None = None) -> Workload:
    """Twitter-like PageRank-weighted cells (Figs 10d/h/l, ...)."""
    if shape == "cycle":
        num_edges = 3_000 if size >= 5 else 5_000
        edges = twitter_like(num_nodes=900, num_edges=num_edges, seed=11)
        query = cycle_query(size, relation="E")
        default_k = 2 * len(edges)
    else:
        edges = twitter_like(num_nodes=1_500, num_edges=12_000, seed=11)
        query = (
            path_query(size, relation="E")
            if shape == "path"
            else star_query(size, relation="E")
        )
        default_k = len(edges) // 2
    return Workload(
        f"{size}-{shape}/twitter", _graph_db(edges), query, k or default_k
    )


#: Figure -> list of workload builders, mirroring the paper's panels.
WORKLOADS: dict[str, list[Callable[[], Workload]]] = {
    "fig10": [
        lambda: synthetic_small("path", 4),
        lambda: synthetic_large("path", 4),
        lambda: bitcoin("path", 4),
        lambda: twitter("path", 4),
        lambda: synthetic_small("star", 4),
        lambda: synthetic_large("star", 4),
        lambda: bitcoin("star", 4),
        lambda: twitter("star", 4),
        lambda: synthetic_small("cycle", 4),
        lambda: synthetic_large("cycle", 4),
        lambda: bitcoin("cycle", 4),
        lambda: twitter("cycle", 4),
    ],
    "fig11": [
        lambda: synthetic_small("path", 3),
        lambda: synthetic_large("path", 3),
        lambda: bitcoin("path", 3),
        lambda: twitter("path", 3),
        lambda: synthetic_small("path", 6),
        lambda: synthetic_large("path", 6),
        lambda: bitcoin("path", 6),
        lambda: twitter("path", 6),
    ],
    "fig12": [
        lambda: synthetic_small("star", 3),
        lambda: synthetic_large("star", 3),
        lambda: bitcoin("star", 3),
        lambda: twitter("star", 3),
        lambda: synthetic_small("star", 6),
        lambda: synthetic_large("star", 6),
        lambda: bitcoin("star", 6),
        lambda: twitter("star", 6),
    ],
    "fig13": [
        lambda: synthetic_small("cycle", 6),
        lambda: synthetic_large("cycle", 6),
        lambda: bitcoin("cycle", 6),
        lambda: twitter("cycle", 6),
    ],
}
