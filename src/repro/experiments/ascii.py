"""Plain-text charts for TT(k) curves (no plotting dependencies).

The paper's figures plot "#results returned" against time per
algorithm; :func:`ascii_chart` renders the same series as a terminal
chart so benchmark reports stay self-contained text files.
"""

from __future__ import annotations

from typing import Sequence

#: One marker per series, cycled.
MARKERS = "RTLEAB*#%@"


def ascii_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 14,
    x_label: str = "k",
    y_label: str = "seconds",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII scatter chart.

    The x axis spans the union of all x values, the y axis the union of
    all y values; each series gets one marker character (first letter of
    its label when unambiguous). Points that collide keep the earlier
    series' marker; a legend follows the chart.
    """
    points = [
        (x, y) for values in series.values() for x, y in values
    ]
    if not points:
        return "(no data)"
    x_min = min(x for x, _ in points)
    x_max = max(x for x, _ in points)
    y_min = min(y for _, y in points)
    y_max = max(y for _, y in points)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend: list[str] = []
    used_markers: set[str] = set()
    for index, (label, values) in enumerate(series.items()):
        marker = label[:1].upper()
        if not marker.strip() or marker in used_markers:
            marker = MARKERS[index % len(MARKERS)]
        if marker in used_markers:
            marker = chr(ord("a") + index % 26)
        used_markers.add(marker)
        legend.append(f"{marker} = {label}")
        for x, y in values:
            column = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            if grid[row][column] == " ":
                grid[row][column] = marker

    lines = [f"{y_label} (top={y_max:.3g}, bottom={y_min:.3g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}")
    lines.append(" legend: " + "   ".join(legend))
    return "\n".join(lines)


def curve_chart(results, width: int = 64, height: int = 14) -> str:
    """Chart a list of :class:`~repro.experiments.runner.TTKResult`."""
    series = {result.algorithm: result.curve for result in results}
    return ascii_chart(series, width=width, height=height)
