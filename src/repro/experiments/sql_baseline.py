"""SQL-engine baseline via stdlib SQLite (the Fig 14 substitution).

The paper validates its hand-rolled Batch implementation against
PostgreSQL 9.5 on the synthetic workloads (Appendix B lists the SQL).
PostgreSQL is unavailable offline, so we run the *same SQL* on an
in-memory SQLite database: like the paper's setup, the engine fully
materialises the join, sorts it, and returns either the top-k or the
whole result.  The comparison plays the same role — grounding Batch's
absolute numbers against a real SQL engine.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Iterable

from repro.data.backend import quote_identifier
from repro.data.database import Database
from repro.query.cq import ConjunctiveQuery


def load_sqlite(database: Database, names: Iterable[str]) -> sqlite3.Connection:
    """Create an in-memory SQLite DB with one table per relation.

    Tables get columns ``a1..a_arity`` plus ``w`` (the tuple weight),
    matching the paper's Appendix B schema, and an index on ``a1``.
    Relation names are validated and quoted before they reach the SQL
    text (they cannot be bound as placeholders), so a hostile name
    raises ``ValueError`` instead of rewriting the statements.
    """
    conn = sqlite3.connect(":memory:")
    cursor = conn.cursor()
    for name in dict.fromkeys(names):
        relation = database[name]
        table = quote_identifier(name)
        index = quote_identifier(f"idx_{name}_a1")
        columns = ", ".join(f"a{i + 1}" for i in range(relation.arity))
        cursor.execute(f"CREATE TABLE {table} ({columns}, w REAL)")
        placeholders = ", ".join("?" for _ in range(relation.arity + 1))
        cursor.executemany(
            f"INSERT INTO {table} VALUES ({placeholders})",
            (t + (w,) for t, w in relation.rows()),
        )
        cursor.execute(f"CREATE INDEX {index} ON {table} (a1)")
    conn.commit()
    return conn


def query_to_sql(query: ConjunctiveQuery, limit: int | None = None) -> str:
    """Translate a full CQ into the paper's Appendix-B-style SQL."""
    aliases = [f"t{i}" for i in range(query.num_atoms)]
    from_clause = ", ".join(
        f"{quote_identifier(atom.relation_name)} {alias}"
        for atom, alias in zip(query.atoms, aliases)
    )
    # Equality predicates from shared variables.
    first_site: dict[str, str] = {}
    predicates: list[str] = []
    selects: list[str] = []
    for atom, alias in zip(query.atoms, aliases):
        for position, var in enumerate(atom.variables):
            site = f"{alias}.a{position + 1}"
            if var in first_site:
                predicates.append(f"{first_site[var]} = {site}")
            else:
                first_site[var] = site
    for var in query.head:
        selects.append(f"{first_site[var]} AS {var}")
    weight = " + ".join(f"{alias}.w" for alias in aliases)
    sql = (
        f"SELECT {', '.join(selects)}, {weight} AS weight "
        f"FROM {from_clause} "
    )
    if predicates:
        sql += f"WHERE {' AND '.join(predicates)} "
    sql += "ORDER BY weight ASC"
    if limit is not None:
        sql += f" LIMIT {limit}"
    return sql


def time_sqlite(
    database: Database,
    query: ConjunctiveQuery,
    limit: int | None = None,
) -> tuple[float, int]:
    """Seconds to load + execute + fetch the ranked SQL result."""
    conn = load_sqlite(database, query.relation_names())
    sql = query_to_sql(query, limit=limit)
    start = time.perf_counter()
    rows = conn.execute(sql).fetchall()
    elapsed = time.perf_counter() - start
    conn.close()
    return elapsed, len(rows)
