"""Experiment harness: workloads, TT(k) measurement, and table printers.

This package regenerates the paper's evaluation (Section 7 and the
Section 9.1 micro-comparisons): every figure/table has a workload
builder in :mod:`repro.experiments.workloads`, timing drivers in
:mod:`repro.experiments.runner`, and the SQLite stand-in for the
PostgreSQL comparison in :mod:`repro.experiments.sql_baseline`.
The ``benchmarks/`` directory at the repository root wires these into
pytest-benchmark, one module per paper figure/table.
"""

from repro.experiments.runner import (
    curve_table,
    measure_full_enumeration,
    measure_ttk,
)
from repro.experiments.workloads import Workload, WORKLOADS

__all__ = [
    "measure_ttk",
    "measure_full_enumeration",
    "curve_table",
    "Workload",
    "WORKLOADS",
]
