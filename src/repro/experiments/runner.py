"""Timing drivers: TT(k) curves, TTF, TTL (Section 7 methodology).

Cold-start timings (:func:`measure_ttk` without a prepared query)
include preprocessing — join tree or decomposition, T-DP bottom-up,
data-structure initialisation — exactly like the paper's TT(k).  Since
the engine refactor the two phases are timed *separately*: every
:class:`TTKResult` carries ``preprocess`` (seconds spent before
enumeration could start) next to the total, and
:func:`measure_enumeration` measures the warm path of a
:class:`~repro.engine.engine.PreparedQuery`, where preprocessing has
already been paid and only the enumeration phase runs.

Checkpoint curves record the elapsed time after every ``checkpoint``
results, which is exactly what the paper's "#Results vs Time" plots
show.

For the serving layer, :class:`LatencyStats` summarises request
latencies measured under concurrent load (p50/p95/p99 plus
answers-per-second throughput) — the numbers a paginated top-k service
is judged on, as opposed to the single-run TT(k) curves above.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.data.database import Database
from repro.engine import Engine, PreparedQuery
from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import TROPICAL, SelectiveDioid


@dataclass
class TTKResult:
    """Outcome of one TT(k) run."""

    algorithm: str
    ttf: float
    ttk: float
    k: int
    produced: int
    curve: list[tuple[int, float]] = field(default_factory=list)
    #: Seconds spent in the preprocessing phase (0.0 on warm runs).
    preprocess: float = 0.0
    #: Seconds spent loading/opening the database before the query ran
    #: (only set by :func:`measure_cold_start`; excluded from ``ttk``,
    #: mirroring how the paper excludes data loading from TT(k)).
    load: float = 0.0

    @property
    def enumeration(self) -> float:
        """Seconds spent in the enumeration phase (total - preprocessing)."""
        return max(0.0, self.ttk - self.preprocess)

    def row(self) -> str:
        text = (
            f"{self.algorithm:>10}  TTF={self.ttf * 1e3:9.2f} ms  "
            f"TT({self.produced})={self.ttk:8.3f} s  "
            f"(pre={self.preprocess * 1e3:7.2f} ms)"
        )
        if self.load:
            text += f"  (load={self.load * 1e3:7.2f} ms)"
        return text


def _drain(
    iterator: Iterator,
    k: int | None,
    checkpoints: int,
    start: float,
) -> tuple[float, int, list[tuple[int, float]]]:
    """Pull up to ``k`` results, recording TTF and the checkpoint curve."""
    produced = 0
    ttf = 0.0
    curve: list[tuple[int, float]] = []
    # Fixed k: evenly spaced checkpoints.  Full enumeration (k = None):
    # the total is unknown up front, so checkpoint at powers of two —
    # matching the log-scale reading of the paper's TT(k) plots.
    step = max(1, (k or 0) // max(1, checkpoints))
    geometric_checkpoint = 2
    for _result in iterator:
        produced += 1
        if produced == 1:
            ttf = time.perf_counter() - start
            curve.append((1, ttf))
        elif k is None:
            if produced == geometric_checkpoint:
                curve.append((produced, time.perf_counter() - start))
                geometric_checkpoint *= 2
        elif produced % step == 0:
            curve.append((produced, time.perf_counter() - start))
        if k is not None and produced >= k:
            break
    return ttf, produced, curve


def measure_ttk(
    database: Database,
    query: ConjunctiveQuery,
    algorithm: str,
    k: int | None,
    checkpoints: int = 8,
    dioid: SelectiveDioid = TROPICAL,
    prepared: PreparedQuery | None = None,
) -> TTKResult:
    """Run one enumeration up to ``k`` results (None = all).

    Without ``prepared`` this is a cold start (preprocessing included in
    the total, as in the paper, but also reported separately).  With a
    bound ``prepared`` query, preprocessing is skipped and the run
    measures the enumeration phase only (``preprocess`` ≈ 0).
    """
    start = time.perf_counter()
    if prepared is None:
        prepared = Engine(database).prepare(
            query, dioid=dioid, algorithm=algorithm
        )
    was_bound = prepared.is_bound
    prepared.bind()
    preprocess = 0.0 if was_bound else time.perf_counter() - start
    iterator = prepared.iter()
    ttf, produced, curve = _drain(iterator, k, checkpoints, start)
    ttk = time.perf_counter() - start
    if not curve or curve[-1][0] != produced:
        curve.append((produced, ttk))
    return TTKResult(
        prepared.logical.algorithm, ttf, ttk, k or produced, produced, curve,
        preprocess=preprocess,
    )


def measure_cold_start(
    database_factory,
    query: ConjunctiveQuery,
    algorithm: str,
    k: int | None,
    checkpoints: int = 8,
    dioid: SelectiveDioid = TROPICAL,
) -> TTKResult:
    """Cold start *including* database load/open.

    ``database_factory`` builds or opens the database (CSV parse, SQLite
    ingestion, or a bare reopen of a populated ``.db`` file); its
    wall-clock lands in ``TTKResult.load``, kept separate from the
    TT(k) total so backends can be compared on all three phases:
    cold load, preprocessing (plan bind), and enumeration.
    """
    start = time.perf_counter()
    database = database_factory()
    load = time.perf_counter() - start
    result = measure_ttk(
        database, query, algorithm, k, checkpoints=checkpoints, dioid=dioid
    )
    result.load = load
    return result


def measure_enumeration(
    prepared: PreparedQuery,
    k: int | None,
    checkpoints: int = 8,
) -> TTKResult:
    """Warm-path TT(k): bind outside the timer, measure enumeration only.

    This is the per-request cost of a served prepared query: the
    reported TTF is the *enumeration delay* to the first result, with
    preprocessing amortised away (``preprocess == 0.0`` by definition).
    """
    prepared.bind()
    return measure_ttk(
        prepared.engine.database,
        prepared.query,
        prepared.logical.algorithm,
        k,
        checkpoints=checkpoints,
        prepared=prepared,
    )


def measure_full_enumeration(
    database: Database,
    query: ConjunctiveQuery,
    algorithm: str,
    dioid: SelectiveDioid = TROPICAL,
) -> TTKResult:
    """TTL: cold-start enumeration of the complete ranked output."""
    return measure_ttk(database, query, algorithm, k=None, dioid=dioid)


# The latency summaries grew up here but now live in repro.obs.latency
# (one implementation behind the runner, the gateway's /metrics, and
# EXPLAIN ANALYZE); re-exported so existing imports keep working.
from repro.obs.latency import (  # noqa: E402
    LatencyStats,
    LatencyWindow,
    percentile,
)

__all__ = [
    "TTKResult",
    "LatencyStats",
    "LatencyWindow",
    "percentile",
    "measure_ttk",
    "measure_cold_start",
    "measure_enumeration",
    "measure_full_enumeration",
    "curve_table",
    "run_workload",
]


def curve_table(results: list[TTKResult], label: str = "") -> str:
    """Render TT(k) curves as the paper's '#Results vs Time' series."""
    lines = [f"== {label} ==" if label else "=="]
    for result in results:
        lines.append(result.row())
        series = "  ".join(f"({k}, {t:.3f}s)" for k, t in result.curve)
        lines.append(f"{'':>12}curve: {series}")
    return "\n".join(lines)


def run_workload(
    workload,
    algorithms: list[str],
    dioid: SelectiveDioid = TROPICAL,
    repetitions: int = 1,
    reuse_plan: bool = False,
) -> list[TTKResult]:
    """Measure all ``algorithms`` on a workload.

    Default (``reuse_plan=False``): cold start for every measurement,
    the paper's methodology.  With ``reuse_plan=True`` a single
    :class:`~repro.engine.Engine` serves every run: the physical plan
    (built T-DPs) is algorithm-independent and shared, so preprocessing
    is paid exactly once per *workload* — reported on the very first
    result; every later result (other algorithms included) reports
    ``preprocess`` ≈ 0 — which is how a serving deployment behaves.
    """
    results: list[TTKResult] = []
    if not reuse_plan:
        for algorithm in algorithms:
            for _ in range(repetitions):
                results.append(
                    measure_ttk(
                        workload.database, workload.query, algorithm,
                        workload.k, dioid=dioid,
                    )
                )
        return results
    engine = Engine(workload.database)
    for algorithm in algorithms:
        prepared = engine.prepare(
            workload.query, dioid=dioid, algorithm=algorithm
        )
        for _ in range(repetitions):
            results.append(
                measure_ttk(
                    workload.database, workload.query, algorithm,
                    workload.k, dioid=dioid, prepared=prepared,
                )
            )
    return results
