"""Timing drivers: TT(k) curves, TTF, TTL (Section 7 methodology).

All timings include preprocessing (join tree or decomposition, T-DP
bottom-up, data-structure initialisation) — the paper's TT(k) always
measures from a cold start.  Checkpoint curves record the elapsed time
after every ``checkpoint`` results, which is exactly what the paper's
"#Results vs Time" plots show.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.data.database import Database
from repro.enumeration.api import ranked_enumerate
from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import TROPICAL, SelectiveDioid


@dataclass
class TTKResult:
    """Outcome of one TT(k) run."""

    algorithm: str
    ttf: float
    ttk: float
    k: int
    produced: int
    curve: list[tuple[int, float]] = field(default_factory=list)

    def row(self) -> str:
        return (
            f"{self.algorithm:>10}  TTF={self.ttf * 1e3:9.2f} ms  "
            f"TT({self.produced})={self.ttk:8.3f} s"
        )


def _iterate(
    database: Database,
    query: ConjunctiveQuery,
    algorithm: str,
    dioid: SelectiveDioid,
) -> Iterator[Any]:
    return ranked_enumerate(database, query, dioid=dioid, algorithm=algorithm)


def measure_ttk(
    database: Database,
    query: ConjunctiveQuery,
    algorithm: str,
    k: int | None,
    checkpoints: int = 8,
    dioid: SelectiveDioid = TROPICAL,
) -> TTKResult:
    """Run one cold-start enumeration up to ``k`` results (None = all)."""
    start = time.perf_counter()
    iterator = _iterate(database, query, algorithm, dioid)
    produced = 0
    ttf = 0.0
    curve: list[tuple[int, float]] = []
    # Fixed k: evenly spaced checkpoints.  Full enumeration (k = None):
    # the total is unknown up front, so checkpoint at powers of two —
    # matching the log-scale reading of the paper's TT(k) plots.
    step = max(1, (k or 0) // max(1, checkpoints))
    geometric_checkpoint = 2
    for _result in iterator:
        produced += 1
        if produced == 1:
            ttf = time.perf_counter() - start
            curve.append((1, ttf))
        elif k is None:
            if produced == geometric_checkpoint:
                curve.append((produced, time.perf_counter() - start))
                geometric_checkpoint *= 2
        elif produced % step == 0:
            curve.append((produced, time.perf_counter() - start))
        if k is not None and produced >= k:
            break
    ttk = time.perf_counter() - start
    if not curve or curve[-1][0] != produced:
        curve.append((produced, ttk))
    return TTKResult(algorithm, ttf, ttk, k or produced, produced, curve)


def measure_full_enumeration(
    database: Database,
    query: ConjunctiveQuery,
    algorithm: str,
    dioid: SelectiveDioid = TROPICAL,
) -> TTKResult:
    """TTL: cold-start enumeration of the complete ranked output."""
    return measure_ttk(database, query, algorithm, k=None, dioid=dioid)


def curve_table(results: list[TTKResult], label: str = "") -> str:
    """Render TT(k) curves as the paper's '#Results vs Time' series."""
    lines = [f"== {label} ==" if label else "=="]
    for result in results:
        lines.append(result.row())
        series = "  ".join(f"({k}, {t:.3f}s)" for k, t in result.curve)
        lines.append(f"{'':>12}curve: {series}")
    return "\n".join(lines)


def run_workload(
    workload,
    algorithms: list[str],
    dioid: SelectiveDioid = TROPICAL,
) -> list[TTKResult]:
    """Measure all ``algorithms`` on a workload, cold start each."""
    return [
        measure_ttk(
            workload.database, workload.query, algorithm, workload.k,
            dioid=dioid,
        )
        for algorithm in algorithms
    ]
