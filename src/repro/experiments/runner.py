"""Timing drivers: TT(k) curves, TTF, TTL (Section 7 methodology).

Cold-start timings (:func:`measure_ttk` without a prepared query)
include preprocessing — join tree or decomposition, T-DP bottom-up,
data-structure initialisation — exactly like the paper's TT(k).  Since
the engine refactor the two phases are timed *separately*: every
:class:`TTKResult` carries ``preprocess`` (seconds spent before
enumeration could start) next to the total, and
:func:`measure_enumeration` measures the warm path of a
:class:`~repro.engine.engine.PreparedQuery`, where preprocessing has
already been paid and only the enumeration phase runs.

Checkpoint curves record the elapsed time after every ``checkpoint``
results, which is exactly what the paper's "#Results vs Time" plots
show.

For the serving layer, :class:`LatencyStats` summarises request
latencies measured under concurrent load (p50/p95/p99 plus
answers-per-second throughput) — the numbers a paginated top-k service
is judged on, as opposed to the single-run TT(k) curves above.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.data.database import Database
from repro.engine import Engine, PreparedQuery
from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import TROPICAL, SelectiveDioid


@dataclass
class TTKResult:
    """Outcome of one TT(k) run."""

    algorithm: str
    ttf: float
    ttk: float
    k: int
    produced: int
    curve: list[tuple[int, float]] = field(default_factory=list)
    #: Seconds spent in the preprocessing phase (0.0 on warm runs).
    preprocess: float = 0.0
    #: Seconds spent loading/opening the database before the query ran
    #: (only set by :func:`measure_cold_start`; excluded from ``ttk``,
    #: mirroring how the paper excludes data loading from TT(k)).
    load: float = 0.0

    @property
    def enumeration(self) -> float:
        """Seconds spent in the enumeration phase (total - preprocessing)."""
        return max(0.0, self.ttk - self.preprocess)

    def row(self) -> str:
        text = (
            f"{self.algorithm:>10}  TTF={self.ttf * 1e3:9.2f} ms  "
            f"TT({self.produced})={self.ttk:8.3f} s  "
            f"(pre={self.preprocess * 1e3:7.2f} ms)"
        )
        if self.load:
            text += f"  (load={self.load * 1e3:7.2f} ms)"
        return text


def _drain(
    iterator: Iterator,
    k: int | None,
    checkpoints: int,
    start: float,
) -> tuple[float, int, list[tuple[int, float]]]:
    """Pull up to ``k`` results, recording TTF and the checkpoint curve."""
    produced = 0
    ttf = 0.0
    curve: list[tuple[int, float]] = []
    # Fixed k: evenly spaced checkpoints.  Full enumeration (k = None):
    # the total is unknown up front, so checkpoint at powers of two —
    # matching the log-scale reading of the paper's TT(k) plots.
    step = max(1, (k or 0) // max(1, checkpoints))
    geometric_checkpoint = 2
    for _result in iterator:
        produced += 1
        if produced == 1:
            ttf = time.perf_counter() - start
            curve.append((1, ttf))
        elif k is None:
            if produced == geometric_checkpoint:
                curve.append((produced, time.perf_counter() - start))
                geometric_checkpoint *= 2
        elif produced % step == 0:
            curve.append((produced, time.perf_counter() - start))
        if k is not None and produced >= k:
            break
    return ttf, produced, curve


def measure_ttk(
    database: Database,
    query: ConjunctiveQuery,
    algorithm: str,
    k: int | None,
    checkpoints: int = 8,
    dioid: SelectiveDioid = TROPICAL,
    prepared: PreparedQuery | None = None,
) -> TTKResult:
    """Run one enumeration up to ``k`` results (None = all).

    Without ``prepared`` this is a cold start (preprocessing included in
    the total, as in the paper, but also reported separately).  With a
    bound ``prepared`` query, preprocessing is skipped and the run
    measures the enumeration phase only (``preprocess`` ≈ 0).
    """
    start = time.perf_counter()
    if prepared is None:
        prepared = Engine(database).prepare(
            query, dioid=dioid, algorithm=algorithm
        )
    was_bound = prepared.is_bound
    prepared.bind()
    preprocess = 0.0 if was_bound else time.perf_counter() - start
    iterator = prepared.iter()
    ttf, produced, curve = _drain(iterator, k, checkpoints, start)
    ttk = time.perf_counter() - start
    if not curve or curve[-1][0] != produced:
        curve.append((produced, ttk))
    return TTKResult(
        prepared.logical.algorithm, ttf, ttk, k or produced, produced, curve,
        preprocess=preprocess,
    )


def measure_cold_start(
    database_factory,
    query: ConjunctiveQuery,
    algorithm: str,
    k: int | None,
    checkpoints: int = 8,
    dioid: SelectiveDioid = TROPICAL,
) -> TTKResult:
    """Cold start *including* database load/open.

    ``database_factory`` builds or opens the database (CSV parse, SQLite
    ingestion, or a bare reopen of a populated ``.db`` file); its
    wall-clock lands in ``TTKResult.load``, kept separate from the
    TT(k) total so backends can be compared on all three phases:
    cold load, preprocessing (plan bind), and enumeration.
    """
    start = time.perf_counter()
    database = database_factory()
    load = time.perf_counter() - start
    result = measure_ttk(
        database, query, algorithm, k, checkpoints=checkpoints, dioid=dioid
    )
    result.load = load
    return result


def measure_enumeration(
    prepared: PreparedQuery,
    k: int | None,
    checkpoints: int = 8,
) -> TTKResult:
    """Warm-path TT(k): bind outside the timer, measure enumeration only.

    This is the per-request cost of a served prepared query: the
    reported TTF is the *enumeration delay* to the first result, with
    preprocessing amortised away (``preprocess == 0.0`` by definition).
    """
    prepared.bind()
    return measure_ttk(
        prepared.engine.database,
        prepared.query,
        prepared.logical.algorithm,
        k,
        checkpoints=checkpoints,
        prepared=prepared,
    )


def measure_full_enumeration(
    database: Database,
    query: ConjunctiveQuery,
    algorithm: str,
    dioid: SelectiveDioid = TROPICAL,
) -> TTKResult:
    """TTL: cold-start enumeration of the complete ranked output."""
    return measure_ttk(database, query, algorithm, k=None, dioid=dioid)


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` (nearest-rank method).

    Nearest-rank (as opposed to interpolation) reports a latency that
    some request actually experienced, the convention for serving tail
    latencies.  ``q`` is in percent, e.g. ``99`` for p99.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass
class LatencyStats:
    """Request-latency summary under (possibly concurrent) load."""

    count: int
    p50: float
    p95: float
    p99: float
    mean: float
    #: Total answers delivered across all timed requests.
    answers: int = 0
    #: Wall-clock of the whole load run (for throughput; 0 = unknown).
    elapsed: float = 0.0

    @classmethod
    def from_samples(
        cls,
        samples: list[float],
        answers: int = 0,
        elapsed: float = 0.0,
    ) -> "LatencyStats":
        """Summarise per-request latencies (seconds)."""
        return cls(
            count=len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            mean=sum(samples) / len(samples),
            answers=answers,
            elapsed=elapsed,
        )

    @property
    def answers_per_second(self) -> float:
        """Aggregate throughput across the measured window."""
        return self.answers / self.elapsed if self.elapsed > 0 else 0.0

    def row(self) -> str:
        text = (
            f"{self.count:5d} fetches  "
            f"p50={self.p50 * 1e3:8.2f} ms  "
            f"p95={self.p95 * 1e3:8.2f} ms  "
            f"p99={self.p99 * 1e3:8.2f} ms"
        )
        if self.elapsed > 0:
            text += f"  {self.answers_per_second:10.0f} answers/s"
        return text

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "p50_ms": round(self.p50 * 1e3, 3),
            "p95_ms": round(self.p95 * 1e3, 3),
            "p99_ms": round(self.p99 * 1e3, 3),
            "mean_ms": round(self.mean * 1e3, 3),
            "answers": self.answers,
            "answers_per_second": round(self.answers_per_second, 1),
        }


class LatencyWindow:
    """A rolling window of request latencies for live ``/metrics``.

    The offline path summarises a finished load run with
    :meth:`LatencyStats.from_samples`; a *serving* process instead needs
    percentiles over its recent history while requests keep arriving.
    ``record`` is O(1) (bounded deque), ``snapshot`` sorts the window on
    demand — cheap at metric-scrape frequency for the default size.
    Thread-safe: transports on different event loops share one window.
    """

    def __init__(self, maxlen: int = 2048):
        if maxlen < 1:
            raise ValueError(f"window size must be positive, got {maxlen}")
        self._samples: deque[float] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        #: Lifetime number of recorded requests (window evictions
        #: included), so rates stay meaningful past one window.
        self.total = 0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.total += 1

    def snapshot(self) -> dict:
        """Percentiles over the current window (zeros when empty)."""
        with self._lock:
            samples = list(self._samples)
            total = self.total
        if not samples:
            return {
                "count": 0,
                "total": total,
                "p50_ms": 0.0,
                "p95_ms": 0.0,
                "p99_ms": 0.0,
                "mean_ms": 0.0,
            }
        stats = LatencyStats.from_samples(samples)
        return {
            "count": stats.count,
            "total": total,
            "p50_ms": round(stats.p50 * 1e3, 3),
            "p95_ms": round(stats.p95 * 1e3, 3),
            "p99_ms": round(stats.p99 * 1e3, 3),
            "mean_ms": round(stats.mean * 1e3, 3),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


def curve_table(results: list[TTKResult], label: str = "") -> str:
    """Render TT(k) curves as the paper's '#Results vs Time' series."""
    lines = [f"== {label} ==" if label else "=="]
    for result in results:
        lines.append(result.row())
        series = "  ".join(f"({k}, {t:.3f}s)" for k, t in result.curve)
        lines.append(f"{'':>12}curve: {series}")
    return "\n".join(lines)


def run_workload(
    workload,
    algorithms: list[str],
    dioid: SelectiveDioid = TROPICAL,
    repetitions: int = 1,
    reuse_plan: bool = False,
) -> list[TTKResult]:
    """Measure all ``algorithms`` on a workload.

    Default (``reuse_plan=False``): cold start for every measurement,
    the paper's methodology.  With ``reuse_plan=True`` a single
    :class:`~repro.engine.Engine` serves every run: the physical plan
    (built T-DPs) is algorithm-independent and shared, so preprocessing
    is paid exactly once per *workload* — reported on the very first
    result; every later result (other algorithms included) reports
    ``preprocess`` ≈ 0 — which is how a serving deployment behaves.
    """
    results: list[TTKResult] = []
    if not reuse_plan:
        for algorithm in algorithms:
            for _ in range(repetitions):
                results.append(
                    measure_ttk(
                        workload.database, workload.query, algorithm,
                        workload.k, dioid=dioid,
                    )
                )
        return results
    engine = Engine(workload.database)
    for algorithm in algorithms:
        prepared = engine.prepare(
            workload.query, dioid=dioid, algorithm=algorithm
        )
        for _ in range(repetitions):
            results.append(
                measure_ttk(
                    workload.database, workload.query, algorithm,
                    workload.k, dioid=dioid, prepared=prepared,
                )
            )
    return results
