"""Generic hypertree-style decomposition for arbitrary cyclic CQs.

The paper uses submodular-width decompositions (PANDA) as a black box;
those are out of scope, so arbitrary cyclic queries fall back to a
single-tree *generalized hypertree decomposition*: a greedy tree
decomposition of the query's primal graph (min-fill-in heuristic via
networkx), whose bags are materialised with our worst-case-optimal
Generic-Join and whose atom weights are *pinned* to exactly one bag
(the Section 8.2 pinned-decomposition condition), so T-DP solution
weights equal original witness weights.

Assumes set semantics per relation (no duplicate tuples); the simple
cycle decomposition, which the experiments use, has no such restriction.
"""

from __future__ import annotations

import networkx as nx
from networkx.algorithms.approximation import treewidth_min_fill_in

from repro.data.database import Database
from repro.data.relation import Relation
from repro.decomposition.base import TreeTask
from repro.joins.generic_join import generic_join
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import TROPICAL, SelectiveDioid


def _tree_decomposition(query: ConjunctiveQuery) -> list[frozenset]:
    """Bags of a tree decomposition of the primal graph (deduplicated)."""
    graph = nx.Graph()
    graph.add_nodes_from(query.variables)
    graph.add_edges_from(query.hypergraph().primal_edges())
    _width, td = treewidth_min_fill_in(graph)
    bags = [frozenset(bag) for bag in td.nodes()]
    # Drop bags subsumed by others (networkx may emit redundant bags);
    # the remaining bags still cover all vertices and atom cliques.
    bags.sort(key=len, reverse=True)
    kept: list[frozenset] = []
    for bag in bags:
        if not any(bag <= other for other in kept):
            kept.append(bag)
    return kept


def decompose_generic(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
) -> TreeTask:
    """Evaluate a cyclic CQ through a single acyclic bag query.

    Every query atom is contained in some bag (atoms are cliques of the
    primal graph); it is *pinned* to the first such bag, which accounts
    for its weight.  Bags are materialised by Generic-Join over the
    atoms they fully contain; a bag variable not covered by any
    contained atom is extended with its active domain (a correct, if
    potentially expensive, fallback — it never triggers for the query
    shapes in the paper).
    """
    bags = _tree_decomposition(query)
    atoms = query.atoms
    pinned_bag: list[int] = []
    for atom in atoms:
        vars_ = atom.variable_set()
        for index, bag in enumerate(bags):
            if vars_ <= bag:
                pinned_bag.append(index)
                break
        else:
            raise ValueError(f"no bag contains atom {atom!r}")

    bag_relations: list[Relation] = []
    bag_atoms: list[Atom] = []
    lineage: dict[str, list[tuple]] = {}
    times = dioid.times
    for index, bag in enumerate(bags):
        bag_vars = tuple(sorted(bag))
        covered = [a for a, atom in enumerate(atoms) if atom.variable_set() <= bag]
        pinned = [a for a in covered if pinned_bag[a] == index]
        name = f"GHD_B{index}"
        if covered:
            sub_query = ConjunctiveQuery(
                head=None, atoms=[atoms[a] for a in covered], name=name
            )
            rows = generic_join(database, sub_query, dioid=dioid)
            sub_vars = sub_query.variables
            positions = [sub_vars.index(v) for v in bag_vars if v in sub_vars]
            pinned_slots = [covered.index(a) for a in pinned]
            seen: dict[tuple, int] = {}
            tuples: list[tuple] = []
            weights: list = []
            lineages: list[tuple] = []
            for _weight, assignment, witness in rows:
                bag_tuple = tuple(assignment[p] for p in positions)
                if bag_tuple in seen:
                    continue
                weight = dioid.one
                for atom_index, slot in zip(pinned, pinned_slots):
                    relation = database[atoms[atom_index].relation_name]
                    weight = times(weight, relation.weights[witness[slot]])
                seen[bag_tuple] = len(tuples)
                tuples.append(bag_tuple)
                weights.append(weight)
                lineages.append(
                    tuple(sorted(
                        (atom_index, witness[slot])
                        for atom_index, slot in zip(pinned, pinned_slots)
                    ))
                )
            bound = {v for v in bag_vars if v in sub_vars}
        else:
            tuples, weights, lineages = [()], [dioid.one], [()]
            bound = set()
        # Extend with active domains for any variables the contained
        # atoms do not bind (correctness fallback).
        for var in bag_vars:
            if var in bound:
                continue
            domain = _active_domain(database, query, var)
            tuples = [t + (value,) for t in tuples for value in domain]
            weights = [w for w in weights for _ in domain]
            lineages = [ln for ln in lineages for _ in domain]
        if not tuples:
            tuples, weights, lineages = [], [], []
        # Reorder columns to the sorted bag_vars order.
        current_order = [v for v in bag_vars if v in bound] + [
            v for v in bag_vars if v not in bound
        ]
        reorder = [current_order.index(v) for v in bag_vars]
        tuples = [tuple(t[i] for i in reorder) for t in tuples]
        bag_relations.append(Relation(name, len(bag_vars), tuples, weights))
        bag_atoms.append(Atom(name, bag_vars))
        lineage[name] = lineages

    bag_query = ConjunctiveQuery(
        head=query.head, atoms=bag_atoms, name=f"{query.name}_GHD"
    )
    return TreeTask(
        database=Database(bag_relations),
        query=bag_query,
        lineage=lineage,
        label="ghd",
    )


def _active_domain(database: Database, query: ConjunctiveQuery, var: str) -> list:
    """Distinct values of ``var`` across all atoms containing it."""
    values: set = set()
    for atom in query.atoms:
        if var not in atom.variables:
            continue
        position = atom.variables.index(var)
        values.update(database[atom.relation_name].column_values(position))
    return sorted(values)
