"""The decomposition interface: one acyclic tree task per member."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.database import Database
from repro.query.cq import ConjunctiveQuery

#: Lineage of one bag tuple: the original (atom_index, tuple_id) pairs
#: whose weights are pinned to (i.e. accounted for by) this bag tuple.
Lineage = tuple[tuple[int, int], ...]


@dataclass
class TreeTask:
    """One acyclic member of a decomposition.

    ``query`` is a full acyclic CQ over the derived bag relations in
    ``database``; its head is the original query's variable list, so the
    T-DP results of the task are directly original query answers.
    ``lineage`` maps each bag relation name to the per-tuple lineage,
    which lets the enumeration API reconstruct original witnesses, and
    ``label`` identifies the member (e.g. ``"heavy@x3"``).
    """

    database: Database
    query: ConjunctiveQuery
    lineage: dict[str, list[Lineage]] = field(default_factory=dict)
    label: str = ""

    def witness_ids_of(self, bag_choices: dict[str, int]) -> Lineage:
        """Merge bag-tuple lineages into an original witness id vector.

        ``bag_choices`` maps bag relation names to chosen tuple
        positions.  Each original atom is pinned to exactly one bag, so
        the merged lineage covers every atom exactly once; the result is
        sorted by atom index.
        """
        merged: list[tuple[int, int]] = []
        for bag_name, position in bag_choices.items():
            merged.extend(self.lineage.get(bag_name, [()] * (position + 1))[position])
        merged.sort()
        return tuple(merged)

    def __repr__(self) -> str:
        sizes = {name: len(rel) for name, rel in self.database.relations.items()}
        return f"TreeTask({self.label or self.query.name}, bags={sizes})"
