"""The simple-cycle decomposition (Section 5.3.1, Fig 8).

An l-cycle query is split into l+1 database partitions by heavy/light
tuple classification: a tuple of cycle atom ``i`` is *heavy* iff its
entry-attribute value occurs at least ``n^(1/ceil(l/2))`` times in that
column (the paper's ``n^(2/l)`` for even l, balanced for odd l).
Partition ``T_p`` takes atoms before ``p`` light, atom ``p`` heavy, and
the rest unrestricted; ``T_(l+1)`` takes everything light.  Each output
witness falls in exactly one partition (classified by its first heavy
atom), so the union is disjoint.

Heavy partitions use the "fan" tree that breaks the cycle at the heavy
attribute (Fig 8b): bags ``B_j(a_0, a_j, a_j+1)`` sharing the heavy
attribute ``a_0``; the light partition uses the two-bag chain split
(Fig 8c).  All bags materialise in O(n^(2-1/ceil(l/2))) and each
original atom's weight is pinned to exactly one bag.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.decomposition.base import TreeTask
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import TROPICAL, SelectiveDioid


def detect_simple_cycle(query: ConjunctiveQuery) -> list[tuple[int, str]] | None:
    """Recognise a simple-cycle query, up to attribute orientation.

    Returns ``[(atom_index, entry_variable), ...]`` in cyclic order —
    atom ``i`` of the walk contains ``entry_i`` and ``entry_(i+1)`` —
    or ``None`` if the query is not a simple cycle of length >= 3.
    """
    atoms = query.atoms
    if len(atoms) < 3:
        return None
    var_atoms: dict[str, list[int]] = {}
    for index, atom in enumerate(atoms):
        if atom.arity != 2 or atom.has_repeated_variables():
            return None
        for var in atom.variables:
            var_atoms.setdefault(var, []).append(index)
    if len(var_atoms) != len(atoms):
        return None
    if any(len(holders) != 2 for holders in var_atoms.values()):
        return None
    # Walk the cycle starting from atom 0 entering through its first var.
    walk: list[tuple[int, str]] = []
    current = 0
    entry = atoms[0].variables[0]
    visited: set[int] = set()
    for _ in range(len(atoms)):
        walk.append((current, entry))
        visited.add(current)
        exit_var = next(v for v in atoms[current].variables if v != entry)
        holders = var_atoms[exit_var]
        nxt = holders[0] if holders[1] == current else holders[1]
        if nxt == current:
            return None
        current, entry = nxt, exit_var
    if current != 0 or entry != atoms[0].variables[0]:
        return None
    if len(visited) != len(atoms):
        return None
    return walk


def default_threshold(n: int, length: int) -> int:
    """Heavy/light occurrence threshold ``n^(1/ceil(l/2))`` (>= 2)."""
    return max(2, math.ceil(n ** (1.0 / math.ceil(length / 2))))


class _CycleAtom:
    """One atom of the cycle walk with its orientation resolved."""

    __slots__ = ("index", "relation", "entry_pos", "exit_pos", "entry_var", "exit_var")

    def __init__(self, index: int, relation: Relation, atom: Atom, entry_var: str):
        self.index = index
        self.relation = relation
        self.entry_var = entry_var
        self.entry_pos = atom.variables.index(entry_var)
        self.exit_pos = 1 - self.entry_pos
        self.exit_var = atom.variables[self.exit_pos]

    def rows(self, restriction: str, heavy: set) -> list[tuple[int, Any, Any, Any]]:
        """(tuple_id, entry_value, exit_value, weight) under a restriction."""
        entry_pos = self.entry_pos
        exit_pos = self.exit_pos
        out = []
        for tuple_id, (values, weight) in enumerate(self.relation.rows()):
            entry_value = values[entry_pos]
            if restriction == "heavy" and entry_value not in heavy:
                continue
            if restriction == "light" and entry_value in heavy:
                continue
            out.append((tuple_id, entry_value, values[exit_pos], weight))
        return out


def _heavy_values(
    cycle_atom: _CycleAtom, threshold: int, indexes=None
) -> set:
    """Entry-attribute values with >= ``threshold`` occurrences.

    With an :class:`~repro.data.index.IndexCache` the degree statistics
    come from :meth:`~repro.data.index.IndexCache.degrees`: a (possibly
    cached) hash index on the entry column for in-memory relations, or a
    server-side ``GROUP BY`` for backend-stored ones — so repeated
    decompositions of the same database skip the counting pass, and a
    SQLite-backed relation is not materialised just to be counted.
    """
    entry_pos = cycle_atom.entry_pos
    if indexes is not None:
        return {
            key[0]
            for key, count in indexes.degrees(
                cycle_atom.relation, (entry_pos,)
            ).items()
            if count >= threshold
        }
    counts: dict = {}
    for values in cycle_atom.relation.tuples:
        value = values[entry_pos]
        counts[value] = counts.get(value, 0) + 1
    return {value for value, count in counts.items() if count >= threshold}


def _chain_join(
    members: Sequence[list[tuple]],
    atom_indices: Sequence[int],
    dioid: SelectiveDioid,
) -> tuple[list[tuple], list[Any], list[tuple]]:
    """Join a chain of cycle atoms on exit = next entry.

    ``members[i]`` are ``(tuple_id, entry, exit, weight)`` rows.  Returns
    bag tuples ``(v_0, ..., v_m)``, their aggregated weights, and their
    lineages.
    """
    times = dioid.times
    indexes = []
    for rows in members[1:]:
        index: dict = {}
        for row in rows:
            index.setdefault(row[1], []).append(row)
        indexes.append(index)

    tuples: list[tuple] = []
    weights: list[Any] = []
    lineages: list[tuple] = []
    stack_rows: list[tuple] = [None] * len(members)

    def extend(depth: int, values: tuple, weight: Any) -> None:
        if depth == len(members):
            tuples.append(values)
            weights.append(weight)
            lineages.append(
                tuple(
                    (atom_indices[i], stack_rows[i][0])
                    for i in range(len(members))
                )
            )
            return
        for row in indexes[depth - 1].get(values[-1], []):
            stack_rows[depth] = row
            extend(depth + 1, values + (row[2],), times(weight, row[3]))

    for row in members[0]:
        stack_rows[0] = row
        extend(1, (row[1], row[2]), row[3])
    return tuples, weights, lineages


def decompose_cycle(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
    threshold: int | None = None,
    indexes=None,
    walk: list[tuple[int, str]] | None = None,
) -> list[TreeTask]:
    """Decompose a simple-cycle query into l heavy trees + 1 light tree.

    Raises ``ValueError`` if the query is not a simple cycle.  Member
    outputs are disjoint; empty members are dropped.  ``indexes`` is an
    optional :class:`~repro.data.index.IndexCache` for the heavy/light
    degree statistics, and ``walk`` a precomputed
    :func:`detect_simple_cycle` result (the planning layer passes the
    one it stored on the logical plan, skipping re-detection on rebind).
    """
    if walk is None:
        walk = detect_simple_cycle(query)
    if walk is None:
        raise ValueError(f"{query!r} is not a simple cycle")
    length = len(walk)
    cycle_atoms = [
        _CycleAtom(index, database[query.atoms[index].relation_name],
                   query.atoms[index], entry_var)
        for index, entry_var in walk
    ]
    n = max(len(ca.relation) for ca in cycle_atoms)
    if threshold is None:
        threshold = default_threshold(n, length)
    heavy_sets = [
        _heavy_values(ca, threshold, indexes=indexes) for ca in cycle_atoms
    ]

    tasks: list[TreeTask] = []
    for pivot in range(length):
        task = _heavy_partition(
            query, cycle_atoms, heavy_sets, pivot, dioid
        )
        if task is not None:
            tasks.append(task)
    light = _light_partition(query, cycle_atoms, heavy_sets, dioid)
    if light is not None:
        tasks.append(light)
    return tasks


def _restriction_for(position_in_walk: int, pivot: int) -> str:
    if position_in_walk < pivot:
        return "light"
    if position_in_walk == pivot:
        return "heavy"
    return "full"


def _heavy_partition(
    query: ConjunctiveQuery,
    cycle_atoms: list[_CycleAtom],
    heavy_sets: list[set],
    pivot: int,
    dioid: SelectiveDioid,
) -> TreeTask | None:
    """Partition T_pivot: the fan decomposition broken at atom ``pivot``."""
    length = len(cycle_atoms)
    times = dioid.times
    # Q_k = cycle atom at walk position (pivot + k) mod length, with its
    # restriction; a_k = Q_k's entry variable.
    rotated: list[_CycleAtom] = []
    rows: list[list[tuple]] = []
    for k in range(length):
        position = (pivot + k) % length
        ca = cycle_atoms[position]
        rotated.append(ca)
        rows.append(ca.rows(_restriction_for(position, pivot), heavy_sets[position]))
    if any(not r for r in rows):
        return None
    heavy_entry_values = sorted({row[1] for row in rows[0]})
    if not heavy_entry_values:
        return None
    heavy_entry_set = set(heavy_entry_values)
    variables = [ca.entry_var for ca in rotated]

    # Q_0H indexed by exit value: exit -> [(heavy entry, tuple_id, weight)].
    # Joining Q_1 against this index is output-driven and stays within
    # the paper's #heavy * n bound (a Q_1 tuple matches at most one Q_0H
    # tuple per distinct heavy value).
    q0_by_exit: dict = {}
    for tuple_id, entry, exit_value, weight in rows[0]:
        q0_by_exit.setdefault(exit_value, []).append((entry, tuple_id, weight))

    prefix = f"T{pivot}"
    bag_relations: list[Relation] = []
    bag_atoms: list[Atom] = []
    lineage: dict[str, list[tuple]] = {}

    def add_bag(j: int, vars_: tuple[str, ...], tuples, weights, lineages) -> bool:
        if not tuples:
            return False
        name = f"{prefix}_B{j}"
        bag_relations.append(Relation(name, len(vars_), tuples, weights))
        bag_atoms.append(Atom(name, vars_))
        lineage[name] = lineages
        return True

    if length == 3:
        q2_pairs: dict[tuple, list[tuple]] = {}
        for tuple_id, entry, exit_value, weight in rows[2]:
            q2_pairs.setdefault((entry, exit_value), []).append((tuple_id, weight))
        tuples, weights, lineages = [], [], []
        empty: list = []
        for tuple_id1, v1, v2, w1 in rows[1]:
            for v0, tuple_id0, w0 in q0_by_exit.get(v1, empty):
                for tuple_id2, w2 in q2_pairs.get((v2, v0), empty):
                    tuples.append((v0, v1, v2))
                    weights.append(times(times(w0, w1), w2))
                    lineages.append(
                        tuple(sorted((
                            (rotated[0].index, tuple_id0),
                            (rotated[1].index, tuple_id1),
                            (rotated[2].index, tuple_id2),
                        )))
                    )
        if not add_bag(1, (variables[0], variables[1], variables[2]),
                       tuples, weights, lineages):
            return None
    else:
        # B_1(a_0, a_1, a_2) = Q_0H joined with Q_1 on a_1.
        tuples, weights, lineages = [], [], []
        empty: list = []
        atom0 = rotated[0].index
        atom1 = rotated[1].index
        for tuple_id1, v1, v2, w1 in rows[1]:
            for v0, tuple_id0, w0 in q0_by_exit.get(v1, empty):
                tuples.append((v0, v1, v2))
                weights.append(times(w0, w1))
                lineages.append(
                    ((atom0, tuple_id0), (atom1, tuple_id1))
                    if atom0 < atom1
                    else ((atom1, tuple_id1), (atom0, tuple_id0))
                )
        if not add_bag(1, (variables[0], variables[1], variables[2]),
                       tuples, weights, lineages):
            return None
        # Middle bags B_j(a_0, a_j, a_j+1) = heavy values x Q_j.
        for j in range(2, length - 2):
            atom_j = rotated[j].index
            tuples = [
                (v0, u, u2)
                for (_tid, u, u2, _w) in rows[j]
                for v0 in heavy_entry_values
            ]
            weights = [
                w for (_tid, _u, _u2, w) in rows[j] for _v0 in heavy_entry_values
            ]
            lineages = [
                ((atom_j, tid),)
                for (tid, _u, _u2, _w) in rows[j]
                for _v0 in heavy_entry_values
            ]
            if not add_bag(j, (variables[0], variables[j], variables[j + 1]),
                           tuples, weights, lineages):
                return None
        # Last bag B_(l-2)(a_0, a_(l-2), a_(l-1)) joins Q_(l-2) with the
        # Q_(l-1) tuples that close the cycle on a heavy a_0 value.
        j = length - 2
        qlast_by_entry: dict = {}
        for tuple_id, entry, exit_value, weight in rows[length - 1]:
            if exit_value in heavy_entry_set:
                qlast_by_entry.setdefault(entry, []).append(
                    (exit_value, tuple_id, weight)
                )
        tuples, weights, lineages = [], [], []
        atom_a = rotated[j].index
        atom_b = rotated[length - 1].index
        for tuple_id_a, u, u2, w_a in rows[j]:
            for v0, tuple_id_b, w_b in qlast_by_entry.get(u2, empty):
                tuples.append((v0, u, u2))
                weights.append(times(w_a, w_b))
                lineages.append(
                    ((atom_a, tuple_id_a), (atom_b, tuple_id_b))
                    if atom_a < atom_b
                    else ((atom_b, tuple_id_b), (atom_a, tuple_id_a))
                )
        if not add_bag(j, (variables[0], variables[j], variables[(j + 1) % length]),
                       tuples, weights, lineages):
            return None

    bag_query = ConjunctiveQuery(
        head=query.head, atoms=bag_atoms, name=f"{query.name}_{prefix}"
    )
    return TreeTask(
        database=Database(bag_relations),
        query=bag_query,
        lineage=lineage,
        label=f"heavy@{variables[0]}",
    )


def _light_partition(
    query: ConjunctiveQuery,
    cycle_atoms: list[_CycleAtom],
    heavy_sets: list[set],
    dioid: SelectiveDioid,
) -> TreeTask | None:
    """Partition T_(l+1): the two-chain all-light decomposition (Fig 8c)."""
    length = len(cycle_atoms)
    split = math.ceil(length / 2)
    rows = [
        ca.rows("light", heavy_sets[position])
        for position, ca in enumerate(cycle_atoms)
    ]
    if any(not r for r in rows):
        return None
    variables = [ca.entry_var for ca in cycle_atoms]

    first_members = rows[:split]
    first_atoms = [cycle_atoms[i].index for i in range(split)]
    second_members = rows[split:]
    second_atoms = [cycle_atoms[i].index for i in range(split, length)]

    tuples1, weights1, lineages1 = _chain_join(first_members, first_atoms, dioid)
    if not tuples1:
        return None
    tuples2, weights2, lineages2 = _chain_join(second_members, second_atoms, dioid)
    if not tuples2:
        return None

    vars1 = tuple(variables[: split + 1])
    vars2 = tuple(variables[split:] + [variables[0]])
    rel1 = Relation("TL_C1", len(vars1), tuples1, weights1)
    rel2 = Relation("TL_C2", len(vars2), tuples2, weights2)
    bag_query = ConjunctiveQuery(
        head=query.head,
        atoms=[Atom("TL_C1", vars1), Atom("TL_C2", vars2)],
        name=f"{query.name}_TL",
    )
    return TreeTask(
        database=Database([rel1, rel2]),
        query=bag_query,
        lineage={"TL_C1": lineages1, "TL_C2": lineages2},
        label="all-light",
    )
