"""Decompositions of cyclic queries into unions of acyclic queries (§5.3).

The ranked-enumeration framework consumes any decomposition as a black
box: each member tree is an acyclic CQ over derived "bag" relations
whose tuple weights aggregate the pinned original-tuple weights, so that
T-DP solution weights equal original witness weights.

* :func:`repro.decomposition.cycle.decompose_cycle` — the paper's
  simple-cycle heavy/light decomposition (Section 5.3.1, Fig 8),
  producing l heavy trees plus one all-light tree with disjoint outputs
  and TTF O(n^(2-1/ceil(l/2))).
* :func:`repro.decomposition.generic.decompose_generic` — a greedy
  (generalized) hypertree decomposition for arbitrary cyclic CQs via
  tree-decomposition heuristics on the primal graph, with bags
  materialised by our worst-case-optimal Generic-Join and atom weights
  pinned to exactly one bag (Section 8.2's pinned decompositions).
"""

from repro.decomposition.base import TreeTask
from repro.decomposition.cycle import decompose_cycle, detect_simple_cycle
from repro.decomposition.generic import decompose_generic

__all__ = [
    "TreeTask",
    "decompose_cycle",
    "detect_simple_cycle",
    "decompose_generic",
]
