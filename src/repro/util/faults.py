"""Deterministic fault injection for chaos testing the serving stack.

A :class:`FaultPlan` is a registry of named *sites* — places in the
code that call :func:`hit` (or :func:`corrupt`) — and *rules* that make
the Nth arrival at a site raise, sleep, mangle bytes, or kill the
process.  Everything is deterministic: rules fire on hit counts, the
RNG is seeded, and the plan is injectable via constructor or the
``REPRO_FAULTS`` environment variable, so a chaos test (or a CI smoke
lane) replays the exact same failure every run.

The default plan is empty and the module-level entry points check that
with one attribute read, so instrumented production paths pay ~nothing
when no faults are configured (the same contract as
:data:`repro.obs.trace.NULL_TRACER`).

Instrumented sites in the tree:

=======================  ====================================================
``sqlite.execute``       every retried statement in ``SQLiteBackend``
``sqlite.executemany``   the unretried batch-insert path (callers roll back)
``pool.submit``          process-pool build submission (``parallel/build.py``)
``worker.scan``          inside a pool worker's fragment scan (fork-inherited)
``core.read``            ``CoreFile`` TOC read (mmap warm starts)
``core.write``           mid-rewrite of the ``.core`` container
``fetch.slice``          every cooperative-scheduler slice
``gateway.write``        every HTTP/WS response write
=======================  ====================================================

Rule syntax (``REPRO_FAULTS`` or :meth:`FaultPlan.parse`): a
comma-separated list of ``site=action[:after[:count[:param]]]``:

* ``action`` — ``raise``, ``delay``, ``corrupt``, or ``exit``;
* ``after`` — 1-based hit number at which the rule starts firing
  (default 1);
* ``count`` — consecutive hits that fire (default 1; ``0`` = forever);
* ``param`` — for ``raise``, the exception shape (``busy``, ``oserror``,
  ``reset``, ``broken``, or the default ``fault``); for ``delay``,
  seconds; for ``corrupt``, ``flip`` or ``truncate``; for ``exit``, an
  optional one-shot token-file path (the rule fires only while the file
  exists and consumes it — lets a forked pool worker die exactly once).

Example: ``REPRO_FAULTS="sqlite.execute=raise:1:2:busy"`` makes the
first two statements fail with ``database is locked`` — which the
backend's retrier then absorbs.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable


class FaultInjected(RuntimeError):
    """The default exception raised by a ``raise`` rule.

    A ``RuntimeError`` subclass on purpose: injected failures travel the
    same degradation paths real infrastructure failures do (e.g. the
    process-pool fallback catches ``RuntimeError``).
    """


def _make_exception(param: Any, site: str) -> BaseException:
    if param in ("busy", "locked"):
        import sqlite3

        return sqlite3.OperationalError("database is locked")
    if param == "oserror":
        return OSError(f"injected I/O error at {site}")
    if param == "reset":
        return ConnectionResetError(f"injected connection reset at {site}")
    if param == "broken":
        from concurrent.futures.process import BrokenProcessPool

        return BrokenProcessPool(f"injected broken pool at {site}")
    return FaultInjected(f"injected fault at {site}")


@dataclass
class FaultRule:
    """One deterministic rule: fire ``action`` on hits [after, after+count)."""

    site: str
    action: str  # "raise" | "delay" | "corrupt" | "exit"
    after: int = 1
    count: int = 1  # 0 = every hit from ``after`` on
    param: Any = None

    def fires(self, hit_number: int) -> bool:
        if hit_number < self.after:
            return False
        return self.count == 0 or hit_number < self.after + self.count


_ACTIONS = ("raise", "delay", "corrupt", "exit")


class FaultPlan:
    """A seeded, thread-safe registry of fault rules keyed by site name."""

    def __init__(
        self,
        rules: Iterable[FaultRule] = (),
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self._rules: dict[str, list[FaultRule]] = {}
        self._hits: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._lock = threading.Lock()
        self.rng = random.Random(seed)
        self._sleep = sleep
        for rule in rules:
            self.add(rule)

    # -- construction ----------------------------------------------------------

    def add(
        self,
        rule: FaultRule | str,
        action: str | None = None,
        after: int = 1,
        count: int = 1,
        param: Any = None,
    ) -> "FaultPlan":
        """Register one rule (a :class:`FaultRule` or field arguments)."""
        if not isinstance(rule, FaultRule):
            rule = FaultRule(rule, action, after, count, param)
        if rule.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {rule.action!r}")
        if rule.after < 1 or rule.count < 0:
            raise ValueError(f"bad fault window in {rule!r}")
        self._rules.setdefault(rule.site, []).append(rule)
        return self

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULTS`` rule syntax."""
        plan = cls(seed=seed)
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            site, _, rest = chunk.partition("=")
            if not rest:
                raise ValueError(f"fault rule {chunk!r} has no action")
            parts = rest.split(":")
            action = parts[0]
            after = int(parts[1]) if len(parts) > 1 and parts[1] else 1
            count = int(parts[2]) if len(parts) > 2 and parts[2] else 1
            param: Any = parts[3] if len(parts) > 3 and parts[3] else None
            if action == "delay" and param is not None:
                param = float(param)
            plan.add(site.strip(), action, after, count, param)
        return plan

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """The plan described by ``REPRO_FAULTS`` (empty when unset)."""
        environ = os.environ if environ is None else environ
        spec = environ.get("REPRO_FAULTS", "")
        seed = int(environ.get("REPRO_FAULTS_SEED", "0") or 0)
        return cls.parse(spec, seed=seed) if spec else cls(seed=seed)

    # -- firing ----------------------------------------------------------------

    def _arm(self, site: str) -> list[FaultRule]:
        """Count one arrival at ``site``; return the rules that fire."""
        with self._lock:
            number = self._hits.get(site, 0) + 1
            self._hits[site] = number
            fired = [
                rule
                for rule in self._rules.get(site, ())
                if rule.fires(number)
            ]
            if fired:
                self._fired[site] = self._fired.get(site, 0) + 1
        return fired

    def _consume_token(self, path: str) -> bool:
        """Atomically claim a one-shot token file (False if already gone)."""
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def hit(self, site: str) -> None:
        """One arrival at ``site``; may sleep, raise, or exit the process."""
        if not self._rules:
            return
        for rule in self._arm(site):
            if rule.action == "delay":
                self._sleep(0.01 if rule.param is None else float(rule.param))
            elif rule.action == "raise":
                raise _make_exception(rule.param, site)
            elif rule.action == "exit":
                if rule.param is None or self._consume_token(str(rule.param)):
                    os._exit(13)
            # "corrupt" rules are inert on hit(): they need the bytes.

    def corrupt(self, site: str, data: bytes) -> bytes:
        """Like :meth:`hit`, but ``corrupt`` rules mangle ``data``."""
        if not self._rules:
            return data
        for rule in self._arm(site):
            if rule.action == "delay":
                self._sleep(0.01 if rule.param is None else float(rule.param))
            elif rule.action == "raise":
                raise _make_exception(rule.param, site)
            elif rule.action == "exit":
                if rule.param is None or self._consume_token(str(rule.param)):
                    os._exit(13)
            elif rule.action == "corrupt":
                if rule.param == "truncate":
                    data = data[: len(data) // 2]
                else:
                    # Deterministic bit-flips through the middle of the
                    # payload: enough to break any framing/pickle, stable
                    # across runs (no RNG draw — replayable byte-for-byte).
                    mid = len(data) // 2
                    window = data[mid:mid + 64]
                    data = (
                        data[:mid]
                        + bytes(b ^ 0xFF for b in window)
                        + data[mid + len(window):]
                    )
        return data

    # -- observability ---------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self._rules

    def counters(self) -> dict:
        """``{"hits": {site: n}, "fired": {site: n}}`` snapshot."""
        with self._lock:
            return {"hits": dict(self._hits), "fired": dict(self._fired)}

    def __repr__(self) -> str:
        rules = sum(len(v) for v in self._rules.values())
        return f"FaultPlan({rules} rules over {len(self._rules)} sites)"


#: The process-wide active plan.  Populated from ``REPRO_FAULTS`` at
#: import; empty (every entry point a near-no-op) otherwise.
_ACTIVE: FaultPlan = FaultPlan.from_env()


def active() -> FaultPlan:
    """The currently active plan (never ``None``)."""
    return _ACTIVE


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide; returns the previous plan."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


@contextmanager
def injected(plan: FaultPlan | str):
    """Activate a plan (or rule string) for the duration of a block."""
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    previous = activate(plan)
    try:
        yield plan
    finally:
        activate(previous)


def enabled() -> bool:
    """Whether any fault rules are active (False in production)."""
    return not _ACTIVE.empty


def hit(site: str) -> None:
    """Module-level site entry point (one dict check when no faults)."""
    plan = _ACTIVE
    if plan._rules:
        plan.hit(site)


def corrupt(site: str, data: bytes) -> bytes:
    """Module-level byte-mangling entry point (identity when no faults)."""
    plan = _ACTIVE
    if plan._rules:
        return plan.corrupt(site, data)
    return data


def counters() -> dict:
    """Counter snapshot of the active plan (for ``/metrics`` and tests)."""
    return _ACTIVE.counters()
