"""Optional numpy acceleration gate.

The repo's hot loops keep a pure-``array``/list implementation as the
reference path; numpy is an *optional* accelerator.  Every vectorized
call site reads :data:`np` through this module at call time (``from
repro.util import vec`` ... ``vec.np``), which gives one switch that

* honours the ``REPRO_NO_NUMPY=1`` environment flag (the CI ``no-numpy``
  job, and containers where numpy is installed but must be bypassed),
* degrades silently when numpy is simply absent, and
* can be monkeypatched in tests (``monkeypatch.setattr(vec, "np",
  None)``) to run both paths of a differential suite in one process.

Vectorized kernels must stay bit-identical to the scalar path: they may
only reorder *bookkeeping*, never floating-point arithmetic — every
float operation performed must be the same operation, in the same
association order, as the scalar code (see ``repro/dp/flat.py`` for the
key-space contract that makes the additions associate identically).
"""

from __future__ import annotations

import os

np = None
if os.environ.get("REPRO_NO_NUMPY", "").strip() not in ("1", "true", "yes"):
    try:  # pragma: no cover - exercised via the no-numpy CI job
        import numpy as np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover
        np = None


def have_numpy() -> bool:
    """Whether the numpy fast paths are active right now."""
    return np is not None
