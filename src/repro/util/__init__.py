"""Utility data structures shared across the library.

The any-k algorithms of the paper are specified in terms of priority
queues, binary heaps used as *static partial orders* (Take2), and heaps
that are incrementally converted into sorted lists (Lazy).  This package
provides those structures plus the operation counters used by the
complexity-shape experiments.
"""

from repro.util.counters import OpCounter
from repro.util.heaps import LazySortedList, heap_children, heapify_entries

__all__ = [
    "OpCounter",
    "LazySortedList",
    "heap_children",
    "heapify_entries",
]
