"""Operation counters for complexity-shape experiments.

Wall-clock timings in pure Python are noisy and constant-factor heavy,
so the test suite and several benchmarks additionally assert *counted*
operations: priority-queue pushes/pops, candidates created, successor
calls, recursive ``next`` calls, and so on.  These counts track the
quantities that appear in the paper's Figure 5 complexity table.
"""

from __future__ import annotations


class OpCounter:
    """A mutable bag of named operation counts.

    Enumerators accept an optional ``OpCounter``; when present they
    increment the relevant counters at coarse-grained points (per result,
    per candidate, per priority-queue operation).  The counter favours
    plain attribute increments over dict lookups to keep the overhead of
    instrumented runs low.

    Counting is strictly opt-in on the hot path: the compiled flat
    enumerators (:mod:`repro.anyk.flat`) select a *counting loop
    variant* at construction when a counter is passed, and an entirely
    branch-free variant otherwise — disabled instrumentation costs
    zero per-operation tests.  Both variants count the same semantic
    events at the same points as the object-graph enumerators, so
    instrumented runs are comparable across cores.
    """

    __slots__ = (
        "pq_push",
        "pq_pop",
        "candidates_created",
        "successor_calls",
        "next_calls",
        "results",
        "comparisons",
        "expansions",
        "tuples_scanned",
        "intermediate_tuples",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero out every counter."""
        self.pq_push = 0
        self.pq_pop = 0
        self.candidates_created = 0
        self.successor_calls = 0
        self.next_calls = 0
        self.results = 0
        self.comparisons = 0
        self.expansions = 0
        self.tuples_scanned = 0
        self.intermediate_tuples = 0

    def total_pq_ops(self) -> int:
        """Total priority-queue traffic (pushes plus pops)."""
        return self.pq_push + self.pq_pop

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters, e.g. for report printing."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in self.__slots__
            if getattr(self, name)
        )
        return f"OpCounter({parts})"
