"""Heap utilities backing the any-k successor strategies.

Three access patterns appear in the paper (Section 4.1.3):

* **Eager** sorts each choice set up front — plain ``sorted``.
* **Lazy** (Chang et al.) builds a binary heap in linear time and pops
  elements into a growing sorted prefix on demand; over the run the heap
  drains and the structure converges to Eager's sorted list.
  :class:`LazySortedList` implements exactly this.
* **Take2** heapifies once and then *never mutates* the heap; the heap
  array is used as a static partial order where the successors of the
  element at position ``p`` are its children at ``2p+1`` and ``2p+2``.
  :func:`heapify_entries` and :func:`heap_children` support this.

Entries are ``(key, payload)`` tuples whose first component is the dioid
order key; ties fall through to the payload, which is an ``int`` state
identifier in all call sites, so tuple comparison is always well defined.

The compiled flat core (:mod:`repro.anyk.flat`) relies on one further
property of these structures: Take2's heap array and Eager's sorted
list are *never mutated after construction*, so ``CompiledTDP`` caches
them per connector and shares them across enumerator runs, algorithms,
and concurrent sessions — where the object-graph strategies rebuild a
private view per run.  ``heapify`` and ``sorted`` are deterministic
given the comparison outcomes, which is why the shared structures
preserve bit-identical candidate ordering.
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

Entry = tuple  # (key, payload[, ...]) — compared lexicographically


def heapify_entries(entries: list[Entry]) -> list[Entry]:
    """Heapify ``entries`` in place (linear time) and return the list.

    The returned list is a standard binary min-heap laid out in an array:
    the element at index ``p`` is no larger than its children at indexes
    ``2p + 1`` and ``2p + 2``.
    """
    heapq.heapify(entries)
    return entries


def heap_children(pos: int, size: int) -> tuple[int, ...]:
    """Positions of the (at most two) children of ``pos`` in a heap array."""
    left = 2 * pos + 1
    if left >= size:
        return ()
    right = left + 1
    if right >= size:
        return (left,)
    return (left, right)


class LazySortedList:
    """A heap that is incrementally drained into a sorted prefix.

    ``get(i)`` returns the ``i``-th smallest entry, materialising the
    sorted prefix up to ``i`` by popping from the internal heap.  Once the
    heap is empty the structure behaves like a fully sorted list.  This is
    the Lazy strategy's per-choice-set structure; the paper notes that on
    first access the top *two* entries are materialised because the first
    iteration of the expansion loop asks for the second-best choice.
    """

    __slots__ = ("_sorted", "_heap")

    def __init__(self, entries: Sequence[Entry], prefetch: int = 2):
        self._heap = list(entries)
        heapq.heapify(self._heap)
        self._sorted: list[Entry] = []
        self.ensure(prefetch - 1)

    def __len__(self) -> int:
        return len(self._sorted) + len(self._heap)

    def sorted_len(self) -> int:
        """Number of entries already moved into the sorted prefix."""
        return len(self._sorted)

    def ensure(self, index: int) -> None:
        """Materialise the sorted prefix up to ``index`` (inclusive)."""
        sorted_list = self._sorted
        heap = self._heap
        while len(sorted_list) <= index and heap:
            sorted_list.append(heapq.heappop(heap))

    def get(self, index: int) -> Any | None:
        """Return the ``index``-th smallest entry or ``None`` if exhausted."""
        if index >= len(self._sorted):
            self.ensure(index)
            if index >= len(self._sorted):
                return None
        return self._sorted[index]
