"""Plan introspection: what will ranked enumeration actually do?

``explain(db, query)`` renders a human-readable plan report: acyclicity
classification, the join tree (or decomposition members), per-stage
state and connector statistics after the bottom-up pass, and the
best-solution weight.  Used by the CLI and handy in notebooks when a
query is slower than expected (e.g. an unintended Cartesian product).
"""

from __future__ import annotations

from repro.data.database import Database
from repro.decomposition.cycle import decompose_cycle, detect_simple_cycle
from repro.decomposition.generic import decompose_generic
from repro.dp.builder import build_tdp
from repro.dp.graph import TDP
from repro.query.cq import ConjunctiveQuery
from repro.query.jointree import JoinTree, build_join_tree
from repro.ranking.dioid import TROPICAL, SelectiveDioid


def tree_ascii(tree: JoinTree) -> list[str]:
    """Indentation-based rendering of the join forest.

    Shared by this module's report and the engine's
    :meth:`~repro.engine.plan.LogicalPlan.explain`.
    """
    lines: list[str] = []
    atoms = tree.query.atoms

    def visit(node: int, depth: int) -> None:
        shared = tree.shared_variables(node)
        join = f" [join on {', '.join(shared)}]" if shared else ""
        lines.append("  " * depth + f"- {atoms[node]!r}{join}")
        for child in tree.children(node):
            visit(child, depth + 1)

    for root in tree.roots():
        visit(root, 0)
    return lines


def _tdp_stats(tdp: TDP) -> list[str]:
    stats = tdp.stats()
    lines = []
    for entry in stats["stages"]:
        atom = tdp.query.atoms[entry["atom"]]
        lines.append(
            f"  stage {entry['stage']} ({atom.relation_name}): "
            f"{entry['states']} alive states, "
            f"{entry['connectors']} child connectors"
        )
    lines.append(
        f"  total: {stats['states']} states, {stats['connectors']} connectors, "
        f"best weight {stats['best_weight']!r}"
    )
    return lines


def explain(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
) -> str:
    """A textual plan for ranked enumeration of ``query`` on ``database``."""
    lines = [f"query: {query!r}"]
    n = database.max_cardinality(set(query.relation_names()))
    lines.append(f"input: n = {n} (largest referenced relation)")
    if not query.is_full():
        lines.append(
            "projection query: head omits "
            f"{', '.join(query.existential_variables())}"
        )
        lines.append(
            f"free-connex: {query.is_free_connex()} "
            "(min-weight semantics available)" if query.is_acyclic()
            else "cyclic projection query"
        )
        query = ConjunctiveQuery(head=None, atoms=query.atoms, name=query.name)
    if query.is_acyclic():
        lines.append("plan: acyclic -> join tree -> T-DP -> any-k")
        tree = build_join_tree(query)
        lines.extend(tree_ascii(tree))
        tdp = build_tdp(database, tree, dioid=dioid)
        lines.append("bottom-up statistics:")
        lines.extend(_tdp_stats(tdp))
        if tdp.is_empty():
            lines.append("  output: EMPTY")
        return "\n".join(lines)

    if detect_simple_cycle(query) is not None:
        tasks = decompose_cycle(database, query, dioid=dioid)
        lines.append(
            f"plan: simple cycle -> heavy/light decomposition "
            f"({len(tasks)} non-empty members) -> UT-DP union"
        )
    else:
        tasks = [decompose_generic(database, query, dioid=dioid)]
        lines.append("plan: cyclic -> generic hypertree decomposition -> T-DP")
    for task in tasks:
        sizes = ", ".join(
            f"{rel.name}[{len(rel)}]" for rel in task.database
        )
        lines.append(f"  member {task.label or task.query.name}: bags {sizes}")
    return "\n".join(lines)
