"""Join queries with projections (Section 8.1).

Two semantics for a non-full query ``Q(y)``:

* **all-weight** (:func:`enumerate_all_weight`): enumerate the full
  query and project each output onto ``y``, keeping duplicates and their
  individual weights — trivially reduces to full-CQ enumeration.
* **min-weight** (:func:`enumerate_min_weight`): return each distinct
  head assignment once, weighted by the minimum over its witnesses;
  possible with optimal guarantees exactly for *free-connex* acyclic
  queries (Theorem 20 / Corollary 22).

The min-weight pipeline follows the paper's Example 19 construction:

1. extend the query with projected atoms ``a' = π_{free(a)}(a)`` for
   every atom mixing free and existential variables;
2. build a join tree of the extended query whose *free region* ``U``
   (projected atoms plus all-free atoms) sits at the top — achieved by
   biasing the GYO removal order to eliminate existential atoms first;
3. run the T-DP bottom-up pass on the extended problem, which computes
   for every U-state the best completion of the existential subtrees
   hanging below it;
4. cut below ``U``: fold each removed branch's minimum into its U-state's
   weight, merge duplicate U-tuples by minimum, and enumerate the
   reduced (full, acyclic) query over ``U`` with any any-k algorithm.
"""

from __future__ import annotations

from typing import Any

from repro.data.database import Database
from repro.data.relation import Relation
from repro.dp.builder import build_tdp
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.query.jointree import JoinTree, build_join_tree
from repro.ranking.dioid import TROPICAL, SelectiveDioid
from repro.util.counters import OpCounter


def enumerate_all_weight(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
    algorithm: str = "take2",
    counter: OpCounter | None = None,
):
    """All-weight projection: rank full answers, project the output.

    Duplicates of a head assignment are returned once per witness, each
    with its own weight, exactly like the paper's first SQL variant.
    Thin wrapper over the plan layer (the logic lives in
    :class:`repro.engine.plan.ProjectionPhysical`).
    """
    from repro.engine.plan import bind, plan

    logical = plan(
        query, dioid=dioid, algorithm=algorithm, projection="all_weight"
    )
    return bind(logical, database).iter(counter)


class FreeConnexPlan:
    """The reduced full query over the free region ``U`` plus its data."""

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        tree: JoinTree,
        offset: Any,
        empty: bool,
    ):
        self.database = database
        self.query = query
        self.tree = tree
        #: Contribution of fully existential components (a constant).
        self.offset = offset
        self.empty = empty


def build_free_connex_plan(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
) -> FreeConnexPlan:
    """Steps 1–4 of the module docstring; raises if not free-connex."""
    if not query.is_acyclic():
        raise ValueError(f"{query.name} is cyclic; min-weight needs free-connex")
    if not query.is_free_connex():
        raise ValueError(
            f"{query.name} is not free-connex; min-weight semantics cannot "
            "be guaranteed with logarithmic delay (Corollary 22)"
        )
    head = set(query.head)

    # -- step 1: extended atom list --------------------------------------------------
    ext_atoms: list[Atom] = []
    ext_relations: dict[str, Relation] = dict(database.relations)
    in_u: list[bool] = []
    for index, atom in enumerate(query.atoms):
        free_vars = tuple(v for v in atom.variables if v in head)
        distinct_free = tuple(dict.fromkeys(free_vars))
        if distinct_free and set(distinct_free) == atom.variable_set():
            # Fully free atom: belongs to U as-is.
            ext_atoms.append(atom)
            in_u.append(True)
            continue
        ext_atoms.append(atom)
        in_u.append(False)
        if distinct_free:
            name = f"__free_{index}_{atom.relation_name}"
            relation = database[atom.relation_name]
            columns = [atom.variables.index(v) for v in distinct_free]
            projected = relation.project(
                columns, name=name, distinct=True, default_weight=dioid.one
            )
            ext_relations[name] = projected
            ext_atoms.append(Atom(name, distinct_free))
            in_u.append(True)

    ext_query = ConjunctiveQuery(
        head=None, atoms=ext_atoms, name=f"{query.name}_ext"
    )
    # -- step 2: join tree with U on top (existential atoms removed first) --------
    priority = [1 if u else 0 for u in in_u]
    tree = build_join_tree(ext_query, priority=priority)
    for index, u in enumerate(in_u):
        parent = tree.parent[index]
        if u and parent != -1 and not in_u[parent]:
            raise ValueError(
                "free-connex join tree construction failed: free region "
                f"not upward closed at atom {ext_atoms[index]!r}"
            )

    # -- step 3: bottom-up pass on the extended problem ---------------------------
    ext_db = Database(ext_relations)
    tdp = build_tdp(ext_db, tree, dioid=dioid)

    # -- step 4: cut below U ----------------------------------------------------------
    stage_of_atom = {atom_idx: s for s, atom_idx in enumerate(tree.order)}
    offset = dioid.one
    empty = tdp.is_empty()
    u_relations: list[Relation] = []
    u_atoms: list[Atom] = []
    times = dioid.times
    plus = dioid.plus
    for atom_index, atom in enumerate(ext_atoms):
        if not in_u[atom_index]:
            # Fully existential component roots contribute a constant.
            if tree.parent[atom_index] == -1 and not empty:
                stage = stage_of_atom[atom_index]
                offset = times(offset, tdp.root_conn[stage].min_value)
            continue
        stage = stage_of_atom[atom_index]
        children = tdp.children_stages[stage]
        removed_branches = [
            b
            for b, child in enumerate(children)
            if not in_u[tree.order[child]]
        ]
        name = f"__u_{atom_index}_{atom.relation_name}"
        merged: dict[tuple, Any] = {}
        for state, values in enumerate(tdp.tuples[stage]):
            weight = tdp.values[stage][state]
            conns = tdp.child_conns[stage][state]
            for b in removed_branches:
                weight = times(weight, conns[b].min_value)
            if values in merged:
                merged[values] = plus(merged[values], weight)
            else:
                merged[values] = weight
        u_relations.append(
            Relation(
                name,
                atom.arity,
                list(merged.keys()),
                list(merged.values()),
            )
        )
        u_atoms.append(Atom(name, atom.variables))

    u_query = ConjunctiveQuery(
        head=query.head, atoms=u_atoms, name=f"{query.name}_minw"
    )
    u_tree = build_join_tree(u_query)
    return FreeConnexPlan(
        Database(u_relations), u_query, u_tree, offset, empty
    )


def enumerate_min_weight(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
    algorithm: str = "take2",
    counter: OpCounter | None = None,
):
    """Min-weight projection semantics for free-connex acyclic queries.

    Each distinct head assignment is returned exactly once, weighted by
    the minimum weight over all witnesses projecting to it, in ranked
    order with TTF O(n) and logarithmic delay (Theorem 20).  Thin
    wrapper over the plan layer (the logic lives in
    :class:`repro.engine.plan.MinWeightPhysical`, which builds on
    :func:`build_free_connex_plan`).
    """
    from repro.engine.plan import bind, plan

    logical = plan(
        query, dioid=dioid, algorithm=algorithm, projection="min_weight"
    )
    return bind(logical, database).iter(counter)
