"""Top-level ranked enumeration: the library's main entry point.

Dispatch (Section 5.4):

* full acyclic CQ — join tree, T-DP bottom-up, any-k enumeration;
* full cyclic CQ — simple-cycle decomposition when the query is a simple
  cycle (Section 5.3.1), otherwise a generic hypertree decomposition;
  the member trees are ranked under the Section 6.3 tie-breaking dioid
  and merged by the UT-DP union enumerator with on-the-fly duplicate
  elimination;
* non-full CQ — Section 8.1 projection semantics (all-weight by
  default; ``projection="min_weight"`` for free-connex queries).

Since the engine refactor, the dispatch lives in the planning layer
(:func:`repro.engine.plan.plan`); :func:`ranked_enumerate` is a thin
compatibility wrapper that plans, binds, and enumerates in one shot.
Use :class:`repro.engine.Engine` + ``prepare()`` to amortise the
preprocessing phase over repeated executions.
"""

from __future__ import annotations

from typing import Iterator

from repro.anyk.base import make_enumerator
from repro.anyk.union import UnionEnumerator
from repro.data.database import Database
from repro.decomposition.base import TreeTask
from repro.decomposition.cycle import decompose_cycle, detect_simple_cycle
from repro.decomposition.generic import decompose_generic
from repro.dp.builder import build_tdp
from repro.enumeration.result import QueryResult
from repro.query.cq import ConjunctiveQuery
from repro.query.jointree import build_join_tree
from repro.ranking.dioid import TROPICAL, SelectiveDioid, TieBreakingDioid
from repro.util.counters import OpCounter

__all__ = [
    "QueryResult",
    "ranked_enumerate",
    "evaluate_boolean",
    "enumerate_union",
    "ranked_enumerate_ucq",
]


def ranked_enumerate(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
    algorithm: str = "take2",
    counter: OpCounter | None = None,
    projection: str = "all_weight",
    cycle_threshold: int | None = None,
) -> Iterator[QueryResult]:
    """Enumerate the answers of ``query`` on ``database`` in ranked order.

    ``algorithm`` is any of ``take2``, ``lazy``, ``eager``, ``all``,
    ``recursive``, ``batch``, ``batch_nosort``.  ``projection`` selects
    the Section 8.1 semantics (``all_weight`` or ``min_weight``);
    ``min_weight`` also applies to full queries, where it merges
    duplicate-tuple witnesses of the same assignment to their minimum.
    Returns a lazy iterator; pulling ``k`` results costs TT(k), not TTL.

    One-shot path: preprocessing (planning + binding) runs on every
    call.  For repeated executions of the same query, prepare it once
    through an :class:`repro.engine.Engine` instead.
    """
    from repro.engine.plan import bind, plan

    logical = plan(
        query,
        dioid=dioid,
        algorithm=algorithm,
        projection=projection,
        cycle_threshold=cycle_threshold,
    )
    return bind(logical, database).iter(counter)


def evaluate_boolean(
    database: Database,
    query: ConjunctiveQuery,
    counter: OpCounter | None = None,
) -> bool:
    """Boolean query evaluation through the ranked framework (§6.4).

    Runs ranked enumeration under the tropical dioid and asks for the
    first result only; TTF matches the best known Boolean bounds —
    O(n) for acyclic queries, O(n^(2-1/ceil(l/2))) for simple cycles
    (e.g. O(n^1.5) for the 4-cycle, the submodular-width bound).
    """
    full = query if query.is_full() else ConjunctiveQuery(
        head=None, atoms=query.atoms, name=query.name
    )
    stream = ranked_enumerate(
        database, full, algorithm="lazy", counter=counter
    )
    return next(iter(stream), None) is not None


def enumerate_union(
    database: Database,
    query: ConjunctiveQuery,
    tasks: list[TreeTask],
    dioid: SelectiveDioid,
    algorithm: str,
    counter: OpCounter | None,
    dedup: bool = False,
) -> Iterator[QueryResult]:
    """UT-DP over decomposition members with tie-breaking (+ optional dedup).

    Each member is ranked under the Section 6.3 tie-breaking dioid so
    that ties across members resolve identically and duplicates arrive
    consecutively; the reported weight is the base (first) dimension.
    Enable ``dedup`` only for decompositions whose member outputs may
    overlap — it assumes set semantics (duplicate-free relations), where
    identical consecutive output tuples are genuinely the same witness.
    """
    from repro.engine.plan import LogicalPlan, UnionPhysical

    logical = LogicalPlan(
        query=query,
        strategy="union-of-trees",
        dioid=dioid,
        algorithm=algorithm,
        projection="all_weight",
    )
    return UnionPhysical(logical, database, tasks, dedup=dedup).iter(counter)


def ranked_enumerate_ucq(
    database: Database,
    queries: list[ConjunctiveQuery],
    dioid: SelectiveDioid = TROPICAL,
    algorithm: str = "take2",
    dedup: bool = True,
    counter: OpCounter | None = None,
) -> Iterator[QueryResult]:
    """Ranked enumeration over a *union* of full CQs (UT-DP, Section 5.2).

    All member queries must be full and share the same head arity; the
    union's answers are head tuples, named after the first query's head
    variables.  Members are ranked under a tie-breaking dioid keyed by
    head *positions*, so identical ``(weight, head tuple)`` answers from
    overlapping members arrive consecutively and — with ``dedup`` — are
    reported once (set-style union semantics per weight level).

    Cyclic members are decomposed and their trees flattened into the
    top-level union.
    """
    from repro.engine.plan import make_tie_lift

    if not queries:
        raise ValueError("the union needs at least one query")
    head_arity = len(queries[0].head)
    head_names = queries[0].head
    for query in queries:
        if not query.is_full():
            raise ValueError(f"UCQ member {query.name} must be a full CQ")
        if len(query.head) != head_arity:
            raise ValueError("all UCQ members need the same head arity")

    tie = TieBreakingDioid(dioid, head_arity)
    members = []
    member_heads: list[tuple[str, ...]] = []

    def add_member(member_db, member_query, head):
        positions = {v: i for i, v in enumerate(head)}
        lift = make_tie_lift(tie, positions)
        tree = build_join_tree(member_query)
        tdp = build_tdp(member_db, tree, dioid=tie, lift=lift)
        members.append(make_enumerator(tdp, algorithm, counter=counter))
        member_heads.append(head)

    for query in queries:
        if query.is_acyclic():
            add_member(database, query, query.head)
        elif detect_simple_cycle(query) is not None:
            for task in decompose_cycle(database, query, dioid=dioid):
                add_member(task.database, task.query, query.head)
        else:
            task = decompose_generic(database, query, dioid=dioid)
            add_member(task.database, task.query, query.head)

    def identity(result) -> tuple:
        # The tie-broken key *is* (weight, head tuple) — sufficient.
        return result.key

    union = UnionEnumerator(members, identity=identity, dedup=dedup,
                            counter=counter)

    def generate() -> Iterator[QueryResult]:
        for result in union:
            member_index = _member_of(members, result)
            head = member_heads[member_index]
            assignment = result.assignment
            values = tuple(assignment[v] for v in head)
            yield QueryResult(
                tie.base_value(result.weight),
                dict(zip(head_names, values)),
                head_names,
            )

    return generate()


def _member_of(members, result) -> int:
    for index, member in enumerate(members):
        if result.tdp is member.tdp:
            return index
    raise ValueError("result does not belong to any member enumerator")
