"""Top-level ranked enumeration: the library's main entry point.

Dispatch (Section 5.4):

* full acyclic CQ — join tree, T-DP bottom-up, any-k enumeration;
* full cyclic CQ — simple-cycle decomposition when the query is a simple
  cycle (Section 5.3.1), otherwise a generic hypertree decomposition;
  the member trees are ranked under the Section 6.3 tie-breaking dioid
  and merged by the UT-DP union enumerator with on-the-fly duplicate
  elimination;
* non-full CQ — Section 8.1 projection semantics (all-weight by
  default; ``projection="min_weight"`` for free-connex queries).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.anyk.base import make_enumerator
from repro.anyk.union import UnionEnumerator
from repro.data.database import Database
from repro.decomposition.base import TreeTask
from repro.decomposition.cycle import decompose_cycle, detect_simple_cycle
from repro.decomposition.generic import decompose_generic
from repro.dp.builder import build_tdp, build_tdp_for_query
from repro.query.cq import ConjunctiveQuery
from repro.query.jointree import build_join_tree
from repro.ranking.dioid import TROPICAL, SelectiveDioid, TieBreakingDioid
from repro.util.counters import OpCounter


class QueryResult:
    """One ranked answer: weight, variable assignment, optional witness."""

    __slots__ = ("weight", "assignment", "_head", "_witness_ids", "_witness")

    def __init__(
        self,
        weight: Any,
        assignment: dict[str, Any],
        head: tuple[str, ...],
        witness_ids: tuple | None = None,
        witness: tuple | None = None,
    ):
        self.weight = weight
        self.assignment = assignment
        self._head = head
        self._witness_ids = witness_ids
        self._witness = witness

    @property
    def output_tuple(self) -> tuple:
        """The answer projected onto the query head."""
        return tuple(self.assignment[v] for v in self._head)

    @property
    def witness_ids(self) -> tuple | None:
        """Per-atom input tuple positions, when the pipeline tracks them."""
        return self._witness_ids

    @property
    def witness(self) -> tuple | None:
        """Per-atom input tuples, when the pipeline tracks them."""
        return self._witness

    def __repr__(self) -> str:
        return f"QueryResult(weight={self.weight!r}, {self.assignment!r})"


def ranked_enumerate(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
    algorithm: str = "take2",
    counter: OpCounter | None = None,
    projection: str = "all_weight",
    cycle_threshold: int | None = None,
) -> Iterator[QueryResult]:
    """Enumerate the answers of ``query`` on ``database`` in ranked order.

    ``algorithm`` is any of ``take2``, ``lazy``, ``eager``, ``all``,
    ``recursive``, ``batch``, ``batch_nosort``.  ``projection`` selects
    the Section 8.1 semantics (``all_weight`` or ``min_weight``);
    ``min_weight`` also applies to full queries, where it merges
    duplicate-tuple witnesses of the same assignment to their minimum.
    Returns a lazy iterator; pulling ``k`` results costs TT(k), not TTL.
    """
    if projection not in ("all_weight", "min_weight"):
        raise ValueError(f"unknown projection semantics {projection!r}")
    if projection == "min_weight":
        # Min-weight semantics applies to full queries too: duplicate
        # witnesses of the same assignment merge to their minimum.
        from repro.enumeration.projections import enumerate_min_weight

        return enumerate_min_weight(
            database, query, dioid=dioid, algorithm=algorithm, counter=counter
        )
    if not query.is_full():
        from repro.enumeration.projections import enumerate_all_weight

        return enumerate_all_weight(
            database, query, dioid=dioid, algorithm=algorithm, counter=counter
        )

    if query.is_acyclic():
        return _enumerate_acyclic(database, query, dioid, algorithm, counter)
    return _enumerate_cyclic(
        database, query, dioid, algorithm, counter, cycle_threshold
    )


def evaluate_boolean(
    database: Database,
    query: ConjunctiveQuery,
    counter: OpCounter | None = None,
) -> bool:
    """Boolean query evaluation through the ranked framework (§6.4).

    Runs ranked enumeration under the tropical dioid and asks for the
    first result only; TTF matches the best known Boolean bounds —
    O(n) for acyclic queries, O(n^(2-1/ceil(l/2))) for simple cycles
    (e.g. O(n^1.5) for the 4-cycle, the submodular-width bound).
    """
    full = query if query.is_full() else ConjunctiveQuery(
        head=None, atoms=query.atoms, name=query.name
    )
    stream = ranked_enumerate(
        database, full, algorithm="lazy", counter=counter
    )
    return next(iter(stream), None) is not None


def _enumerate_acyclic(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid,
    algorithm: str,
    counter: OpCounter | None,
) -> Iterator[QueryResult]:
    tdp = build_tdp_for_query(database, query, dioid=dioid)
    enumerator = make_enumerator(tdp, algorithm, counter=counter)

    def generate() -> Iterator[QueryResult]:
        for result in enumerator:
            yield QueryResult(
                result.weight,
                result.assignment,
                query.head,
                witness_ids=result.witness_ids,
                witness=result.witness,
            )

    return generate()


def _enumerate_cyclic(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid,
    algorithm: str,
    counter: OpCounter | None,
    cycle_threshold: int | None,
) -> Iterator[QueryResult]:
    if detect_simple_cycle(query) is not None:
        tasks = decompose_cycle(
            database, query, dioid=dioid, threshold=cycle_threshold
        )
    else:
        tasks = [decompose_generic(database, query, dioid=dioid)]
    # Both decompositions produce disjoint member outputs (the cycle
    # partitions by construction, the generic one because it is a single
    # tree), so duplicate elimination is off; it exists for overlapping
    # decompositions (e.g. PANDA-style) plugged in via enumerate_union.
    return enumerate_union(
        database, query, tasks, dioid, algorithm, counter, dedup=False
    )


def enumerate_union(
    database: Database,
    query: ConjunctiveQuery,
    tasks: list[TreeTask],
    dioid: SelectiveDioid,
    algorithm: str,
    counter: OpCounter | None,
    dedup: bool = False,
) -> Iterator[QueryResult]:
    """UT-DP over decomposition members with tie-breaking (+ optional dedup).

    Each member is ranked under the Section 6.3 tie-breaking dioid so
    that ties across members resolve identically and duplicates arrive
    consecutively; the reported weight is the base (first) dimension.
    Enable ``dedup`` only for decompositions whose member outputs may
    overlap — it assumes set semantics (duplicate-free relations), where
    identical consecutive output tuples are genuinely the same witness.
    """
    variables = query.variables
    var_position = {v: i for i, v in enumerate(variables)}
    tie = TieBreakingDioid(dioid, len(variables))

    members = []
    lineages = []
    for task in tasks:
        lift = _make_tie_lift(tie, var_position)
        tree = build_join_tree(task.query)
        tdp = build_tdp(task.database, tree, dioid=tie, lift=lift)
        members.append(make_enumerator(tdp, algorithm, counter=counter))
        lineages.append(task)

    head = query.head

    def identity(result) -> tuple:
        return (result.key, result.output_tuple(head))

    union = UnionEnumerator(members, identity=identity, dedup=dedup, counter=counter)

    def generate() -> Iterator[QueryResult]:
        for result in union:
            task = lineages[_member_of(members, result)]
            witness_ids, witness = _recover_witness(database, query, task, result)
            yield QueryResult(
                tie.base_value(result.weight),
                result.assignment,
                head,
                witness_ids=witness_ids,
                witness=witness,
            )

    return generate()


def _member_of(members, result) -> int:
    for index, member in enumerate(members):
        if result.tdp is member.tdp:
            return index
    raise ValueError("result does not belong to any member enumerator")


def _recover_witness(database, query, task: TreeTask, result):
    """Map bag-level states back to original witness ids and tuples."""
    if not task.lineage:
        return None, None
    tdp = result.tdp
    merged: list[tuple[int, int]] = []
    for stage, state in enumerate(result.states):
        atom = task.query.atoms[tdp.atom_of_stage[stage]]
        per_tuple = task.lineage.get(atom.relation_name)
        if per_tuple is None:
            continue
        merged.extend(per_tuple[tdp.tuple_ids[stage][state]])
    merged.sort()
    witness_ids = tuple(tuple_id for _atom, tuple_id in merged)
    witness = tuple(
        database[query.atoms[atom_index].relation_name].tuples[tuple_id]
        for atom_index, tuple_id in merged
    )
    return witness_ids, witness


def _make_tie_lift(tie: TieBreakingDioid, var_position: dict[str, int]):
    """Lift bag weights into the tie-breaking dioid with their bindings.

    Variables absent from ``var_position`` (e.g. non-head variables in
    the UCQ pipeline) simply do not participate in tie-breaking.
    """

    def lift(atom, values, raw_weight):
        bindings = {
            var_position[var]: value
            for var, value in zip(atom.variables, values)
            if var in var_position
        }
        return tie.lift(raw_weight, bindings)

    return lift


def ranked_enumerate_ucq(
    database: Database,
    queries: list[ConjunctiveQuery],
    dioid: SelectiveDioid = TROPICAL,
    algorithm: str = "take2",
    dedup: bool = True,
    counter: OpCounter | None = None,
) -> Iterator[QueryResult]:
    """Ranked enumeration over a *union* of full CQs (UT-DP, Section 5.2).

    All member queries must be full and share the same head arity; the
    union's answers are head tuples, named after the first query's head
    variables.  Members are ranked under a tie-breaking dioid keyed by
    head *positions*, so identical ``(weight, head tuple)`` answers from
    overlapping members arrive consecutively and — with ``dedup`` — are
    reported once (set-style union semantics per weight level).

    Cyclic members are decomposed and their trees flattened into the
    top-level union.
    """
    if not queries:
        raise ValueError("the union needs at least one query")
    head_arity = len(queries[0].head)
    head_names = queries[0].head
    for query in queries:
        if not query.is_full():
            raise ValueError(f"UCQ member {query.name} must be a full CQ")
        if len(query.head) != head_arity:
            raise ValueError("all UCQ members need the same head arity")

    tie = TieBreakingDioid(dioid, head_arity)
    members = []
    member_heads: list[tuple[str, ...]] = []

    def add_member(member_db, member_query, head):
        positions = {v: i for i, v in enumerate(head)}
        lift = _make_tie_lift(tie, positions)
        tree = build_join_tree(member_query)
        tdp = build_tdp(member_db, tree, dioid=tie, lift=lift)
        members.append(make_enumerator(tdp, algorithm, counter=counter))
        member_heads.append(head)

    for query in queries:
        if query.is_acyclic():
            add_member(database, query, query.head)
        elif detect_simple_cycle(query) is not None:
            for task in decompose_cycle(database, query, dioid=dioid):
                add_member(task.database, task.query, query.head)
        else:
            task = decompose_generic(database, query, dioid=dioid)
            add_member(task.database, task.query, query.head)

    def identity(result) -> tuple:
        # The tie-broken key *is* (weight, head tuple) — sufficient.
        return result.key

    union = UnionEnumerator(members, identity=identity, dedup=dedup,
                            counter=counter)

    def generate() -> Iterator[QueryResult]:
        for result in union:
            member_index = _member_of(members, result)
            head = member_heads[member_index]
            assignment = result.assignment
            values = tuple(assignment[v] for v in head)
            yield QueryResult(
                tie.base_value(result.weight),
                dict(zip(head_names, values)),
                head_names,
            )

    return generate()
