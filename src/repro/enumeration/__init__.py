"""Public ranked-enumeration API (Theorem 15 end to end).

:func:`repro.enumeration.api.ranked_enumerate` dispatches a query to the
appropriate pipeline — serial/tree DP for acyclic full CQs, cycle or
generic decomposition + UT-DP union for cyclic ones, and the Section 8.1
projection semantics for non-full queries — and yields
:class:`repro.enumeration.api.QueryResult` objects in ranking order.
"""

from repro.enumeration.api import QueryResult, ranked_enumerate
from repro.enumeration.projections import (
    enumerate_all_weight,
    enumerate_min_weight,
)

__all__ = [
    "QueryResult",
    "ranked_enumerate",
    "enumerate_all_weight",
    "enumerate_min_weight",
]
