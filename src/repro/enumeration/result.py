"""The public result type yielded by every ranked-enumeration pipeline."""

from __future__ import annotations

from typing import Any


class QueryResult:
    """One ranked answer: weight, variable assignment, optional witness."""

    __slots__ = ("weight", "assignment", "_head", "_witness_ids", "_witness")

    def __init__(
        self,
        weight: Any,
        assignment: dict[str, Any],
        head: tuple[str, ...],
        witness_ids: tuple | None = None,
        witness: tuple | None = None,
    ):
        self.weight = weight
        self.assignment = assignment
        self._head = head
        self._witness_ids = witness_ids
        self._witness = witness

    @property
    def output_tuple(self) -> tuple:
        """The answer projected onto the query head."""
        return tuple(self.assignment[v] for v in self._head)

    @property
    def witness_ids(self) -> tuple | None:
        """Per-atom input tuple positions, when the pipeline tracks them."""
        return self._witness_ids

    @property
    def witness(self) -> tuple | None:
        """Per-atom input tuples, when the pipeline tracks them."""
        return self._witness

    def __repr__(self) -> str:
        return f"QueryResult(weight={self.weight!r}, {self.assignment!r})"
