"""anyK-rec: the Recursive (REA) algorithm, Algorithm 2 + Section 5.1.

Every connector (shared choice set) memoises its ranked solution list
``Π_1, Π_2, ...``; a ``next`` call on a connector pops the top of its
candidate heap, asks the popped entry's state for its next-ranked suffix
(recursing into the state's child connector, or into a ranked Cartesian
product of its branches when the state has several children), pushes the
replacement, and records the new solution.

Because the memo lives **on the connector**, every parent state with the
same join value reuses the ranked suffixes — the sharing that lets
Recursive produce the full ordered output faster than Batch's
comparison sort on worst-case outputs (Theorem 11).

A state's ranked *suffixes* (its own weight combined with completions of
its subtree) come in three flavours:

* leaf state — the single suffix ``w(s)``;
* one child branch — the child connector's solutions shifted by
  ``w(s)`` (rank-preserving, no extra structure);
* several branches — a :class:`~repro.anyk.product.RankedProduct` over
  the branch connectors (the Section 5.1 construction).
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.anyk.base import Enumerator, RankedResult
from repro.anyk.product import RankedProduct
from repro.dp.graph import TDP, ChoiceSet
from repro.util.counters import OpCounter


class Recursive(Enumerator):
    """Algorithm 2 over a T-DP problem."""

    def __init__(self, tdp: TDP, counter: OpCounter | None = None):
        self.tdp = tdp
        self.counter = counter
        self.dioid = tdp.dioid
        #: connector uid -> ranked solutions [(key, value, state, js), ...]
        self._solutions: dict[int, list[tuple]] = {}
        #: connector uid -> candidate heap [(key, state, js, value), ...]
        self._heaps: dict[int, list[tuple]] = {}
        #: (stage, state) -> RankedProduct for multi-branch states
        self._products: dict[tuple[int, int], RankedProduct] = {}
        self._rank = 0
        self._exhausted = tdp.is_empty()
        self._roots = tdp.root_stages
        self._root_product: RankedProduct | None = None
        if not self._exhausted and len(self._roots) > 1:
            self._root_product = RankedProduct(
                [tdp.root_conn[r] for r in self._roots],
                self._ensure,
                self.dioid,
                counter=counter,
            )

    # -- per-connector REA ----------------------------------------------------------

    def _ensure(self, conn: ChoiceSet, j: int) -> tuple | None:
        """Solution ``Π_{j+1}`` of ``conn`` (0-based), or ``None``.

        Advances the connector's memoised solution list as needed; each
        advance is one ``next`` call of Algorithm 2.
        """
        uid = conn.uid
        sols = self._solutions.get(uid)
        if sols is None:
            sols = []
            self._solutions[uid] = sols
            heap = [
                (key, state, 0, value) for (key, state, value) in conn.entries
            ]
            heapq.heapify(heap)
            self._heaps[uid] = heap
        if j < len(sols):
            return sols[j]
        heap = self._heaps[uid]
        counter = self.counter
        stage = conn.stage
        while len(sols) <= j:
            if not heap:
                return None
            key, state, js, value = heapq.heappop(heap)
            if counter is not None:
                counter.pq_pop += 1
                counter.next_calls += 1
            sols.append((key, value, state, js))
            bumped = self._state_suffix(stage, state, js + 1)
            if bumped is not None:
                heapq.heappush(
                    heap, (self.dioid.key(bumped), state, js + 1, bumped)
                )
                if counter is not None:
                    counter.pq_push += 1
        return sols[j]

    def _state_suffix(self, stage: int, state: int, j: int) -> Any | None:
        """Weight of the ``j``-th ranked suffix rooted at ``state``."""
        conns = self.tdp.child_conns[stage][state]
        own = self.tdp.values[stage][state]
        if not conns:
            return own if j == 0 else None
        if len(conns) == 1:
            entry = self._ensure(conns[0], j)
            if entry is None:
                return None
            return self.dioid.times(own, entry[1])
        product = self._product(stage, state, conns)
        combo = product.get(j)
        if combo is None:
            return None
        return self.dioid.times(own, combo[0])

    def _product(self, stage: int, state: int, conns) -> RankedProduct:
        key = (stage, state)
        product = self._products.get(key)
        if product is None:
            product = RankedProduct(
                conns, self._ensure, self.dioid, counter=self.counter
            )
            self._products[key] = product
        return product

    # -- result reconstruction ---------------------------------------------------------

    def _reconstruct(self, conn: ChoiceSet, j: int, states: list[int]) -> None:
        _key, _value, state, js = self._solutions[conn.uid][j]
        stage = conn.stage
        states[stage] = state
        conns = self.tdp.child_conns[stage][state]
        if not conns:
            return
        if len(conns) == 1:
            self._reconstruct(conns[0], js, states)
            return
        _value, vector = self._products[(stage, state)].outputs[js]
        for branch, child_conn in enumerate(conns):
            self._reconstruct(child_conn, vector[branch], states)

    # -- iterator protocol ---------------------------------------------------------------

    def _next_result(self) -> RankedResult | None:
        if self._exhausted:
            return None
        tdp = self.tdp
        rank = self._rank
        states = [0] * tdp.num_stages
        if self._root_product is not None:
            combo = self._root_product.get(rank)
            if combo is None:
                self._exhausted = True
                return None
            value, vector = combo
            for branch, root in enumerate(self._roots):
                self._reconstruct(tdp.root_conn[root], vector[branch], states)
        else:
            root_conn = tdp.root_conn[self._roots[0]]
            entry = self._ensure(root_conn, rank)
            if entry is None:
                self._exhausted = True
                return None
            value = entry[1]
            self._reconstruct(root_conn, rank, states)
        self._rank += 1
        if self.counter is not None:
            self.counter.results += 1
        return RankedResult(value, self.dioid.key(value), tuple(states), tdp)
