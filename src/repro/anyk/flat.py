"""Flat enumeration loops over a :class:`~repro.dp.flat.CompiledTDP`.

Ports of every any-k enumerator — the four anyK-part strategy variants
(Take2/Lazy/Eager/All), anyK-rec (Recursive), and the Batch baselines —
whose inner loops index into the compiled core's flat arrays instead of
walking ``ChoiceSet`` object graphs:

* weight combination is native float ``+``/``-`` in dioid *key space*
  (the ``key_is_value`` contract) — no ``SelectiveDioid.times``/``key``
  dispatch anywhere on the hot path;
* connector ranking structures live in a uid-indexed list (no dict
  hashing); for the Take2 and Eager strategies the candidate carries
  the raw heapified/sorted ``(key, state)`` list itself, so entry reads
  are direct C-level list indexing with no view object in between;
* ``heappush``/``heappop`` and every per-iteration attribute are bound
  to locals once per call;
* op-counting is zero-cost when disabled: each enumerator selects a
  *counter-free compiled loop variant* at construction instead of
  branching ``if counter is not None`` per operation;
* results carry only ``(key, states)``; witness tuples and variable
  assignments materialise lazily from the source T-DP's ``tuple_ids``
  at result-construction time (:class:`~repro.anyk.base.RankedResult`).

Every loop replicates the object-graph algorithms' candidate ordering
exactly — same push sequence, same tie-breaking sequence numbers, and
float operations that are the bit-exact ``key``-image of the object
path's ``times`` calls — so the ranked output is bit-identical to
:mod:`repro.anyk.partition` / :mod:`repro.anyk.recursive` /
:mod:`repro.anyk.batch` (asserted by ``tests/test_flat_conformance.py``).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.anyk.base import Enumerator, RankedResult
from repro.anyk.strategies import FLAT_VIEWS
from repro.dp.flat import CompiledTDP
from repro.util import vec
from repro.util.counters import OpCounter


class FlatAnyKPart(Enumerator):
    """Algorithm 1 over the compiled core (strategies via flat views).

    Candidate tuples are ``(key, seq, prefix, stage, carrier, pos)`` —
    in key space the candidate's total completion weight *is* its key,
    so no separate total rides along.  Sibling totals derive in O(1) by
    key-space subtraction (always valid: ``(R, +)`` is a group), which
    coincides with the object path's inverse-based derivation.

    ``carrier`` is the bare ranking list for the Take2/Eager specialised
    loops and a flat view object (:data:`~repro.anyk.strategies
    .FLAT_VIEWS`) for Lazy/All and for the counting variant; each
    enumerator instance uses exactly one carrier kind, selected with the
    loop variant at construction.
    """

    def __init__(
        self,
        compiled: CompiledTDP,
        kind: str,
        counter: OpCounter | None = None,
    ):
        self.compiled = compiled
        self.tdp = compiled.tdp
        self.dioid = compiled.dioid
        self.kind = kind
        self.counter = counter
        self._view_class = FLAT_VIEWS[kind]
        #: uid -> per-run ranking structure (lists or views, see class doc).
        self._views: list = [None] * compiled.num_connectors
        self._heap: list[tuple] = []
        self._seq = 0
        self._exhausted = compiled.empty

        bare_lists = counter is None and kind in ("take2", "eager")
        if counter is not None:
            self._next_result = self._next_result_counted
        elif kind == "take2":
            # Compiled generator loop: the ~20 local bindings of the
            # hot loop happen once for the whole run, not per result.
            self._gen = (
                self._generate_take2_chain()
                if compiled.is_chain
                else self._generate_take2()
            )
            self._next_result = self._next_from_gen
        elif kind == "eager":
            self._gen = (
                self._generate_eager_chain()
                if compiled.is_chain
                else self._generate_eager()
            )
            self._next_result = self._next_from_gen

        if not self._exhausted and not bare_lists:
            # Generator variants seed their own candidate heap on first
            # resume (the chain loops use a narrower candidate layout).
            uid = compiled.root_uid[0]  # stage 0 is always a root stage
            carrier = self._view(uid)
            self._seq = 1
            self._heap.append(
                (compiled.best_key, 1, None, 0, carrier, carrier.best)
            )
            if counter is not None:
                counter.pq_push += 1
                counter.candidates_created += 1

    def _next_from_gen(self) -> RankedResult | None:
        return next(self._gen, None)

    def __iter__(self):
        # Hand out the compiled generator itself when one drives this
        # run: ``for`` loops then resume it directly with no
        # ``__next__``/``_next_result`` frames in between.  The
        # generator marks ``_finished`` on exhaustion, and interleaving
        # with ``step``/``top`` stays consistent because every
        # consumption path pulls from the same generator.
        gen = getattr(self, "_gen", None)
        return self if gen is None else gen

    def _view(self, uid: int):
        view = self._views[uid]
        if view is None:
            view = self._view_class(self.compiled.pairs(uid))
            self._views[uid] = view
        return view

    def peak_candidates(self) -> int:
        """Current size of the candidate priority queue (MEM diagnostics)."""
        return len(self._heap)

    # -- Take2 hot loop (bare heap lists, counter-free) ------------------------

    def _generate_take2(self):
        compiled = self.compiled
        tdp = self.tdp
        heap = self._heap
        num_stages = compiled.num_stages
        parent_stage = compiled.parent_stage
        conn_of = compiled.conn_of
        root_uid = compiled.root_uid
        heaps = compiled._take2_heaps
        take2_heap = compiled.take2_heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        vfk = compiled.vfk
        new_result = RankedResult.__new__
        result_cls = RankedResult
        seq = 0
        if not compiled.empty:
            uid = root_uid[0]
            entries = heaps[uid]
            if entries is None:
                entries = take2_heap(uid)
            seq = 1
            heap.append((compiled.best_key, 1, None, 0, entries, 0))

        while heap:
            total, _seq, prefix, stage, entries, pos = heappop(heap)
            states = [0] * num_stages
            node = prefix
            fill = stage - 1
            while node is not None:
                states[fill] = node[0]
                node = node[1]
                fill -= 1

            for j in range(stage, num_stages):
                entry = entries[pos]
                # Successors of position pos are its static-heap children.
                left = 2 * pos + 1
                if left < len(entries):
                    base = total - entry[0]
                    seq += 1
                    heappush(
                        heap,
                        (base + entries[left][0], seq, prefix, j, entries, left),
                    )
                    right = left + 1
                    if right < len(entries):
                        seq += 1
                        heappush(
                            heap,
                            (
                                base + entries[right][0],
                                seq, prefix, j, entries, right,
                            ),
                        )
                state = entry[1]
                states[j] = state
                prefix = (state, prefix)
                next_stage = j + 1
                if next_stage < num_stages:
                    parent = parent_stage[next_stage]
                    if parent == -1:
                        uid = root_uid[next_stage]
                    else:
                        uid = conn_of[next_stage][states[parent]]
                    entries = heaps[uid]
                    if entries is None:
                        entries = take2_heap(uid)
                    pos = 0

            res = new_result(result_cls)
            res.weight = total if vfk is None else vfk(total)
            res.key = total
            res.states = tuple(states)
            res.tdp = tdp
            yield res
        self._finished = True

    def _generate_take2_chain(self):
        """Take2 loop specialised for chain T-DPs (path-shaped trees).

        The parent of stage ``j + 1`` is always ``j``, so the extension
        step needs no parent bookkeeping and no partial ``states``
        vector: the prefix linked list alone carries the solution, and
        the states tuple is materialised in a single walk per result.
        Candidates shrink to ``(key, seq, prefix, stage, pos)`` — the
        choice-set list is recovered at pop time from ``prefix[0]``
        (the parent's state), which every push site has already warmed.
        """
        compiled = self.compiled
        tdp = self.tdp
        heap = self._heap
        num_stages = compiled.num_stages
        last = num_stages - 1
        #: conn_next[j] maps stage j's chosen state -> stage j+1's uid.
        conn_next = [compiled.conn_of[j + 1] for j in range(last)]
        conn_next.append(None)
        heaps = compiled._take2_heaps
        take2_heap = compiled.take2_heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        vfk = compiled.vfk
        new_result = RankedResult.__new__
        result_cls = RankedResult

        seq = 0
        root_entries = None
        if not compiled.empty:
            root_entries = take2_heap(compiled.root_uid[0])
            seq = 1
            heap.append((compiled.best_key, 1, None, 0, 0))

        while heap:
            total, _seq, prefix, stage, pos = heappop(heap)
            if stage:
                entries = heaps[conn_next[stage - 1][prefix[0]]]
            else:
                entries = root_entries
            for j in range(stage, num_stages):
                entry = entries[pos]
                left = 2 * pos + 1
                size = len(entries)
                if left < size:
                    base = total - entry[0]
                    seq += 1
                    heappush(heap, (base + entries[left][0], seq, prefix, j, left))
                    right = left + 1
                    if right < size:
                        seq += 1
                        heappush(
                            heap, (base + entries[right][0], seq, prefix, j, right)
                        )
                state = entry[1]
                prefix = (state, prefix)
                if j < last:
                    uid = conn_next[j][state]
                    entries = heaps[uid]
                    if entries is None:
                        entries = take2_heap(uid)
                    pos = 0

            states = [0] * num_stages
            node = prefix
            fill = last
            while node is not None:
                states[fill] = node[0]
                node = node[1]
                fill -= 1
            res = new_result(result_cls)
            res.weight = total if vfk is None else vfk(total)
            res.key = total
            res.states = tuple(states)
            res.tdp = tdp
            yield res
        self._finished = True

    # -- Eager hot loop (bare sorted lists, counter-free) ----------------------

    def _generate_eager(self):
        compiled = self.compiled
        tdp = self.tdp
        heap = self._heap
        num_stages = compiled.num_stages
        parent_stage = compiled.parent_stage
        conn_of = compiled.conn_of
        root_uid = compiled.root_uid
        lists = compiled._sorted_pairs
        sorted_pairs = compiled.sorted_pairs
        heappop = heapq.heappop
        heappush = heapq.heappush
        vfk = compiled.vfk
        new_result = RankedResult.__new__
        result_cls = RankedResult
        seq = 0
        if not compiled.empty:
            uid = root_uid[0]
            entries = lists[uid]
            if entries is None:
                entries = sorted_pairs(uid)
            seq = 1
            heap.append((compiled.best_key, 1, None, 0, entries, 0))

        while heap:
            total, _seq, prefix, stage, entries, pos = heappop(heap)
            states = [0] * num_stages
            node = prefix
            fill = stage - 1
            while node is not None:
                states[fill] = node[0]
                node = node[1]
                fill -= 1

            for j in range(stage, num_stages):
                entry = entries[pos]
                # Successor of position pos in a sorted list is pos + 1.
                succ = pos + 1
                if succ < len(entries):
                    seq += 1
                    heappush(
                        heap,
                        (
                            total - entry[0] + entries[succ][0],
                            seq, prefix, j, entries, succ,
                        ),
                    )
                state = entry[1]
                states[j] = state
                prefix = (state, prefix)
                next_stage = j + 1
                if next_stage < num_stages:
                    parent = parent_stage[next_stage]
                    if parent == -1:
                        uid = root_uid[next_stage]
                    else:
                        uid = conn_of[next_stage][states[parent]]
                    entries = lists[uid]
                    if entries is None:
                        entries = sorted_pairs(uid)
                    pos = 0

            res = new_result(result_cls)
            res.weight = total if vfk is None else vfk(total)
            res.key = total
            res.states = tuple(states)
            res.tdp = tdp
            yield res
        self._finished = True

    def _generate_eager_chain(self):
        """Eager loop specialised for chain T-DPs (see take2 variant)."""
        compiled = self.compiled
        tdp = self.tdp
        heap = self._heap
        num_stages = compiled.num_stages
        last = num_stages - 1
        conn_next = [compiled.conn_of[j + 1] for j in range(last)]
        conn_next.append(None)
        lists = compiled._sorted_pairs
        sorted_pairs = compiled.sorted_pairs
        heappop = heapq.heappop
        heappush = heapq.heappush
        vfk = compiled.vfk
        new_result = RankedResult.__new__
        result_cls = RankedResult

        seq = 0
        root_entries = None
        if not compiled.empty:
            root_entries = sorted_pairs(compiled.root_uid[0])
            seq = 1
            heap.append((compiled.best_key, 1, None, 0, 0))

        while heap:
            total, _seq, prefix, stage, pos = heappop(heap)
            if stage:
                entries = lists[conn_next[stage - 1][prefix[0]]]
            else:
                entries = root_entries
            for j in range(stage, num_stages):
                entry = entries[pos]
                succ = pos + 1
                if succ < len(entries):
                    seq += 1
                    heappush(
                        heap,
                        (total - entry[0] + entries[succ][0], seq, prefix, j, succ),
                    )
                state = entry[1]
                prefix = (state, prefix)
                if j < last:
                    uid = conn_next[j][state]
                    entries = lists[uid]
                    if entries is None:
                        entries = sorted_pairs(uid)
                    pos = 0

            states = [0] * num_stages
            node = prefix
            fill = last
            while node is not None:
                states[fill] = node[0]
                node = node[1]
                fill -= 1
            res = new_result(result_cls)
            res.weight = total if vfk is None else vfk(total)
            res.key = total
            res.states = tuple(states)
            res.tdp = tdp
            yield res
        self._finished = True

    # -- generic loop (Lazy/All flat views, counter-free) ----------------------

    def _next_result(self) -> RankedResult | None:
        heap = self._heap
        if not heap:
            return None
        compiled = self.compiled
        num_stages = compiled.num_stages
        parent_stage = compiled.parent_stage
        conn_of = compiled.conn_of
        root_uid = compiled.root_uid
        views = self._views
        view_class = self._view_class
        pairs_of = compiled.pairs
        heappush = heapq.heappush
        seq = self._seq

        total, _seq, prefix, stage, view, pos = heapq.heappop(heap)
        states = [0] * num_stages
        node = prefix
        fill = stage - 1
        while node is not None:
            states[fill] = node[0]
            node = node[1]
            fill -= 1

        for j in range(stage, num_stages):
            entry = view.entry_at(pos)
            succs = view.succ(pos)
            if succs:
                base = total - entry[0]
                entry_at = view.entry_at
                for succ_pos in succs:
                    seq += 1
                    heappush(
                        heap,
                        (
                            base + entry_at(succ_pos)[0],
                            seq, prefix, j, view, succ_pos,
                        ),
                    )
            state = entry[1]
            states[j] = state
            prefix = (state, prefix)
            next_stage = j + 1
            if next_stage < num_stages:
                parent = parent_stage[next_stage]
                if parent == -1:
                    uid = root_uid[next_stage]
                else:
                    uid = conn_of[next_stage][states[parent]]
                view = views[uid]
                if view is None:
                    view = view_class(pairs_of(uid))
                    views[uid] = view
                pos = view.best

        self._seq = seq
        vfk = compiled.vfk
        return RankedResult(
            total if vfk is None else vfk(total), total, tuple(states), self.tdp
        )

    # -- counting variant (identical ordering, instrumented) -------------------

    def _next_result_counted(self) -> RankedResult | None:
        heap = self._heap
        if not heap:
            return None
        compiled = self.compiled
        counter = self.counter
        num_stages = compiled.num_stages
        parent_stage = compiled.parent_stage
        conn_of = compiled.conn_of
        root_uid = compiled.root_uid
        views = self._views
        view_class = self._view_class
        pairs_of = compiled.pairs
        heappush = heapq.heappush
        seq = self._seq

        total, _seq, prefix, stage, view, pos = heapq.heappop(heap)
        counter.pq_pop += 1
        states = [0] * num_stages
        node = prefix
        fill = stage - 1
        while node is not None:
            states[fill] = node[0]
            node = node[1]
            fill -= 1

        for j in range(stage, num_stages):
            entry = view.entry_at(pos)
            succs = view.succ(pos)
            counter.successor_calls += 1
            if succs:
                base = total - entry[0]
                entry_at = view.entry_at
                for succ_pos in succs:
                    seq += 1
                    heappush(
                        heap,
                        (
                            base + entry_at(succ_pos)[0],
                            seq, prefix, j, view, succ_pos,
                        ),
                    )
                    counter.pq_push += 1
                    counter.candidates_created += 1
            state = entry[1]
            states[j] = state
            prefix = (state, prefix)
            next_stage = j + 1
            if next_stage < num_stages:
                parent = parent_stage[next_stage]
                if parent == -1:
                    uid = root_uid[next_stage]
                else:
                    uid = conn_of[next_stage][states[parent]]
                view = views[uid]
                if view is None:
                    view = view_class(pairs_of(uid))
                    views[uid] = view
                pos = view.best
            counter.expansions += 1

        self._seq = seq
        counter.results += 1
        vfk = compiled.vfk
        return RankedResult(
            total if vfk is None else vfk(total), total, tuple(states), self.tdp
        )


class FlatRankedProduct:
    """Key-space port of :class:`~repro.anyk.product.RankedProduct`.

    Branch streams are addressed by connector uid through an
    ``ensure(uid, j)`` callback returning flat solution entries
    ``(key, state, js)``; aggregate weights are plain float sums.  The
    Lawler marker scheme, memoized ``outputs``, and heap tie-breaking
    sequence are identical to the object version, so combination order
    matches bit-for-bit.  ``get`` is bound at construction to a
    counter-free or counting variant.
    """

    __slots__ = ("uids", "ensure", "outputs", "_heap", "_seq", "counter", "get")

    def __init__(
        self,
        uids: tuple[int, ...],
        ensure: Callable[[int, int], tuple | None],
        counter: OpCounter | None = None,
    ):
        self.uids = tuple(uids)
        self.ensure = ensure
        self.counter = counter
        self.outputs: list[tuple[float, tuple[int, ...]]] = []
        self._heap: list[tuple] = []
        self._seq = 0
        self.get = self._get if counter is None else self._get_counted
        firsts = [ensure(uid, 0) for uid in self.uids]
        if any(entry is None for entry in firsts):
            return  # dead product: some branch has no solution at all
        key = 0.0
        for entry in firsts:
            key += entry[0]
        self._seq = 1
        self._heap.append((key, 1, (0,) * len(self.uids), 0))
        if counter is not None:
            counter.pq_push += 1

    def _advance(self, j: int, counter: OpCounter | None):
        outputs = self.outputs
        ensure = self.ensure
        uids = self.uids
        width = len(uids)
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        append = outputs.append
        seq = self._seq
        while len(outputs) <= j:
            if not heap:
                self._seq = seq
                return None
            key, _seq, vector, marker = heappop(heap)
            if counter is not None:
                counter.pq_pop += 1
            append((key, vector))
            for i in range(marker, width):
                bumped = ensure(uids[i], vector[i] + 1)
                if bumped is None:
                    continue
                new_vector = vector[:i] + (vector[i] + 1,) + vector[i + 1:]
                new_key = 0.0
                for branch, rank in enumerate(new_vector):
                    new_key += ensure(uids[branch], rank)[0]
                seq += 1
                heappush(heap, (new_key, seq, new_vector, i))
                if counter is not None:
                    counter.pq_push += 1
        self._seq = seq
        return outputs[j]

    def _get(self, j: int) -> tuple[float, tuple[int, ...]] | None:
        outputs = self.outputs
        if j < len(outputs):
            return outputs[j]
        return self._advance(j, None)

    def _get_counted(self, j: int) -> tuple[float, tuple[int, ...]] | None:
        outputs = self.outputs
        if j < len(outputs):
            return outputs[j]
        return self._advance(j, self.counter)


class FlatRecursive(Enumerator):
    """anyK-rec (Algorithm 2) over the compiled core.

    Memoized per-connector solution lists and candidate heaps live in
    uid-indexed lists; solution entries are ``(key, state, js)``
    triples in key space.  ``_ensure`` — the innermost loop of
    Recursive — comes in counter-free and counting compiled variants
    (selected once at construction), each with the per-stage suffix
    computation inlined per branch-arity instead of dispatching through
    a ``_state_suffix`` helper per pop.
    """

    def __init__(self, compiled: CompiledTDP, counter: OpCounter | None = None):
        self.compiled = compiled
        self.tdp = compiled.tdp
        self.dioid = compiled.dioid
        self.counter = counter
        num_connectors = compiled.num_connectors
        #: uid -> ranked solutions [(key, state, js), ...]
        self._sols: list[list[tuple] | None] = [None] * num_connectors
        #: uid -> candidate heap [(key, state, js), ...]
        self._heaps: list[list[tuple] | None] = [None] * num_connectors
        #: (stage, state) -> FlatRankedProduct for multi-branch states
        self._products: dict[tuple[int, int], FlatRankedProduct] = {}
        self._rank = 0
        self._exhausted = compiled.empty
        self._roots = compiled.root_stages
        #: Pure chain (every stage has at most one branch): result
        #: reconstruction is an iterative walk instead of a recursion.
        self._chain = all(b <= 1 for b in compiled.num_branches)
        self._root_product: FlatRankedProduct | None = None
        if counter is not None:
            self._ensure = self._ensure_counted
        if not self._exhausted and len(self._roots) > 1:
            self._root_product = FlatRankedProduct(
                tuple(compiled.root_uid[r] for r in self._roots),
                self._ensure,
                counter=counter,
            )
        if counter is None and not self._exhausted and self._root_product is None:
            # Compiled generator loop for the common single-root case:
            # the root connector's advance step is inlined and every hot
            # local binds once for the whole run.  (The counting variant
            # and the multi-root union keep the method-based loop.)
            self._gen = self._generate()
            self._next_result = self._next_from_gen

    def _next_from_gen(self) -> RankedResult | None:
        return next(self._gen, None)

    def __iter__(self):
        # See FlatAnyKPart.__iter__: direct generator hand-out.
        gen = getattr(self, "_gen", None)
        return self if gen is None else gen

    def _generate(self):
        compiled = self.compiled
        tdp = self.tdp
        vfk = compiled.vfk
        new_result = RankedResult.__new__
        result_cls = RankedResult
        num_stages = compiled.num_stages
        last = num_stages - 1
        all_sols = self._sols
        child_uids = compiled.child_uids
        heappop = heapq.heappop
        heappush = heapq.heappush
        chain = self._chain
        reconstruct = self._reconstruct
        ensure = self._ensure
        product_of = self._product

        root_uid = compiled.root_uid[self._roots[0]]
        sols = all_sols[root_uid]
        if sols is None:
            sols = all_sols[root_uid] = []
            self._heaps[root_uid] = compiled.rea_heap(root_uid)
        heap = self._heaps[root_uid]
        append = sols.append
        root_branches, root_own, root_child_row, root_stage = (
            compiled.conn_meta[root_uid]
        )

        rank = 0
        while True:
            if rank < len(sols):
                item = sols[rank]
            else:
                # Inlined root-connector advance (one `next` call).
                if not heap:
                    self._finished = True
                    return
                item = heappop(heap)
                append(item)
                state = item[1]
                next_js = item[2] + 1
                if root_branches == 1:
                    child_uid = root_child_row[state]
                    child_sols = all_sols[child_uid]
                    if child_sols is not None and next_js < len(child_sols):
                        entry = child_sols[next_js]
                    else:
                        entry = ensure(child_uid, next_js)
                    if entry is not None:
                        heappush(
                            heap, (root_own[state] + entry[0], state, next_js)
                        )
                elif root_branches:
                    combo = product_of(root_stage, state).get(next_js)
                    if combo is not None:
                        heappush(
                            heap, (root_own[state] + combo[0], state, next_js)
                        )
            key = item[0]
            if chain:
                # In a chain, connector depth == stage: walk the
                # memoized solution lists appending states in order.
                states = []
                add_state = states.append
                sol = item
                for stage in range(last):
                    add_state(sol[1])
                    uid = child_uids[stage][sol[1]]
                    sol = all_sols[uid][sol[2]]
                add_state(sol[1])
            else:
                states = [0] * num_stages
                reconstruct(root_uid, rank, states)
            res = new_result(result_cls)
            res.weight = key if vfk is None else vfk(key)
            res.key = key
            res.states = tuple(states)
            res.tdp = tdp
            yield res
            rank += 1

    # -- per-connector REA (counter-free compiled variant) ---------------------

    def _ensure(self, uid: int, j: int) -> tuple | None:
        """Solution ``Π_{j+1}`` of connector ``uid`` (0-based), or ``None``."""
        all_sols = self._sols
        sols = all_sols[uid]
        if sols is None:
            sols = all_sols[uid] = []
            self._heaps[uid] = self.compiled.rea_heap(uid)
        if j < len(sols):
            return sols[j]
        heap = self._heaps[uid]
        branches, own_keys, child_row, stage = self.compiled.conn_meta[uid]
        heappop = heapq.heappop
        append = sols.append

        if branches == 0:
            # Leaf connector: one suffix per state — drain, no bumps.
            while len(sols) <= j:
                if not heap:
                    return None
                append(heappop(heap))
            return sols[j]

        heappush = heapq.heappush
        if branches == 1:
            ensure = self._ensure
            while len(sols) <= j:
                if not heap:
                    return None
                item = heappop(heap)
                append(item)
                state = item[1]
                next_js = item[2] + 1
                # Inlined memo hit: thanks to connector sharing most
                # child lookups land in an already-advanced solution
                # list, so skip the recursive call for those.
                child_uid = child_row[state]
                child_sols = all_sols[child_uid]
                if child_sols is not None and next_js < len(child_sols):
                    entry = child_sols[next_js]
                else:
                    entry = ensure(child_uid, next_js)
                if entry is not None:
                    heappush(heap, (own_keys[state] + entry[0], state, next_js))
            return sols[j]

        product_of = self._product
        while len(sols) <= j:
            if not heap:
                return None
            item = heappop(heap)
            append(item)
            state = item[1]
            next_js = item[2] + 1
            combo = product_of(stage, state).get(next_js)
            if combo is not None:
                heappush(heap, (own_keys[state] + combo[0], state, next_js))
        return sols[j]

    # -- counting variant (identical ordering, instrumented) -------------------

    def _ensure_counted(self, uid: int, j: int) -> tuple | None:
        sols = self._sols[uid]
        if sols is None:
            sols = self._sols[uid] = []
            self._heaps[uid] = self.compiled.rea_heap(uid)
        if j < len(sols):
            return sols[j]
        heap = self._heaps[uid]
        compiled = self.compiled
        counter = self.counter
        stage = compiled.conn_stage[uid]
        branches = compiled.num_branches[stage]
        heappop = heapq.heappop
        heappush = heapq.heappush
        append = sols.append
        own_keys = compiled.values_key[stage]
        child_row = compiled.child_uids[stage]
        ensure = self._ensure_counted
        product_of = self._product
        while len(sols) <= j:
            if not heap:
                return None
            item = heappop(heap)
            counter.pq_pop += 1
            counter.next_calls += 1
            append(item)
            state = item[1]
            next_js = item[2] + 1
            if branches == 0:
                continue
            if branches == 1:
                entry = ensure(child_row[state], next_js)
                bumped = (
                    None if entry is None else own_keys[state] + entry[0]
                )
            else:
                combo = product_of(stage, state).get(next_js)
                bumped = (
                    None if combo is None else own_keys[state] + combo[0]
                )
            if bumped is not None:
                heappush(heap, (bumped, state, next_js))
                counter.pq_push += 1
        return sols[j]

    def _product(self, stage: int, state: int) -> FlatRankedProduct:
        key = (stage, state)
        product = self._products.get(key)
        if product is None:
            compiled = self.compiled
            branches = compiled.num_branches[stage]
            base = state * branches
            uids = tuple(compiled.child_uids[stage][base:base + branches])
            product = FlatRankedProduct(
                uids, self._ensure, counter=self.counter
            )
            self._products[key] = product
        return product

    # -- result reconstruction -------------------------------------------------

    def _reconstruct(self, uid: int, j: int, states: list[int]) -> None:
        _key, state, js = self._sols[uid][j]
        compiled = self.compiled
        stage = compiled.conn_stage[uid]
        states[stage] = state
        branches = compiled.num_branches[stage]
        if branches == 0:
            return
        if branches == 1:
            self._reconstruct(compiled.child_uids[stage][state], js, states)
            return
        vector = self._products[(stage, state)].outputs[js][1]
        base = state * branches
        child_uids = compiled.child_uids[stage]
        for branch in range(branches):
            self._reconstruct(child_uids[base + branch], vector[branch], states)

    # -- iterator protocol -----------------------------------------------------

    def _next_result(self) -> RankedResult | None:
        if self._exhausted:
            return None
        compiled = self.compiled
        rank = self._rank
        states = [0] * compiled.num_stages
        if self._root_product is not None:
            combo = self._root_product.get(rank)
            if combo is None:
                self._exhausted = True
                return None
            key, vector = combo
            for branch, root in enumerate(self._roots):
                self._reconstruct(
                    compiled.root_uid[root], vector[branch], states
                )
        else:
            root_uid = compiled.root_uid[self._roots[0]]
            entry = self._ensure(root_uid, rank)
            if entry is None:
                self._exhausted = True
                return None
            key = entry[0]
            if self._chain:
                # Iterative walk down the chain of memoized solutions.
                all_sols = self._sols
                conn_stage = compiled.conn_stage
                num_branches = compiled.num_branches
                child_uids = compiled.child_uids
                uid = root_uid
                j = rank
                while True:
                    _key, state, js = all_sols[uid][j]
                    stage = conn_stage[uid]
                    states[stage] = state
                    if num_branches[stage] == 0:
                        break
                    uid = child_uids[stage][state]
                    j = js
            else:
                self._reconstruct(root_uid, rank, states)
        self._rank += 1
        counter = self.counter
        if counter is not None:
            counter.results += 1
        vfk = compiled.vfk
        return RankedResult(
            key if vfk is None else vfk(key), key, tuple(states), self.tdp
        )


class FlatBatch(Enumerator):
    """Batch baseline over the compiled core (full output, optional sort).

    Backtracks over the compiled entry pairs with float prefix sums;
    sorting ``(key, states)`` matches the object Batch's deterministic
    cross-algorithm order.  The visit-counting branch stays inline (one
    test per intermediate tuple): Batch materialises everything up
    front, so it has no per-result delay path to keep branch-free.
    """

    def __init__(
        self,
        compiled: CompiledTDP,
        sort: bool = True,
        counter: OpCounter | None = None,
    ):
        self.compiled = compiled
        self.tdp = compiled.tdp
        self.dioid = compiled.dioid
        self.counter = counter
        self.sorted = sort
        results = self._solutions_list(counter)
        if sort:
            results.sort()
        self.size = len(results)
        self._iter = iter(results)

    def _solutions_list(self, counter: OpCounter | None) -> list:
        """All ``(key, states)`` solutions in DFS preorder.

        Dispatches to the numpy level-expansion kernel when it applies:
        a CSR-backed core (``conn_offsets`` present — per-fragment
        ``ShardCompiled`` cores keep the scalar path), no visit counting
        (the counter increments per intermediate tuple, which the
        vectorized expansion never materialises one at a time), numpy
        available.  Both paths produce the identical list — same DFS
        preorder, same left-fold float additions.
        """
        compiled = self.compiled
        np = vec.np
        if (
            np is not None
            and counter is None
            and not compiled.empty
            and compiled.conn_offsets is not None
        ):
            return self._solutions_vec(np)
        return list(self._solutions(counter))

    def _solutions_vec(self, np) -> list:
        """Level-synchronous ragged expansion over the CSR entry pool.

        Each level replaces every live prefix by its child entries in
        pool order, preserving prefix order — which reproduces the
        scalar backtracker's DFS preorder exactly.  The per-solution
        key is grown by the same left fold ``acc + values_key[level]
        [state]`` the scalar path uses, so keys are bit-identical; all
        outputs convert to native Python scalars before leaving.
        """
        compiled = self.compiled
        num_stages = compiled.num_stages
        parent_stage = compiled.parent_stage
        root_uid = compiled.root_uid
        offsets = np.asarray(compiled.conn_offsets)
        entry_state = np.asarray(compiled.entry_state)
        values_key = [
            np.asarray(v, dtype=np.float64) for v in compiled.values_key
        ]

        uid0 = root_uid[0]
        lo = compiled.conn_offsets[uid0]
        hi = compiled.conn_offsets[uid0 + 1]
        states0 = entry_state[lo:hi]
        acc = 0.0 + values_key[0][states0]
        paths = states0.reshape(-1, 1)
        for level in range(1, num_stages):
            if not len(acc):
                break
            parent = parent_stage[level]
            if parent == -1:
                uids = np.full(len(acc), root_uid[level], dtype=np.int64)
            else:
                conn_row = np.asarray(compiled.conn_of[level])
                uids = conn_row[paths[:, parent]]
            starts = offsets[uids]
            counts = offsets[uids + 1] - starts
            total = int(counts.sum())
            if total == 0:
                acc = acc[:0]
                paths = paths[:0]
                break
            rep = np.repeat(np.arange(len(acc)), counts)
            cum = np.cumsum(counts) - counts
            idx = np.arange(total) - cum[rep] + starts[rep]
            child_states = entry_state[idx]
            acc = acc[rep] + values_key[level][child_states]
            paths = np.concatenate(
                [paths[rep], child_states.reshape(-1, 1)], axis=1
            )
        keys = acc.tolist()
        rows = paths.tolist()
        return [(key, tuple(states)) for key, states in zip(keys, rows)]

    def _solutions(self, counter: OpCounter | None):
        compiled = self.compiled
        if compiled.empty:
            return
        num_stages = compiled.num_stages
        parent_stage = compiled.parent_stage
        conn_of = compiled.conn_of
        root_uid = compiled.root_uid
        values_key = compiled.values_key
        pairs_of = compiled.pairs

        states = [0] * num_stages
        prefix_key = [0.0] * (num_stages + 1)
        iterators: list = [None] * num_stages
        iterators[0] = iter(pairs_of(root_uid[0]))
        level = 0
        last = num_stages - 1
        while level >= 0:
            entry = next(iterators[level], None)
            if entry is None:
                level -= 1
                continue
            state = entry[1]
            states[level] = state
            prefix_key[level + 1] = prefix_key[level] + values_key[level][state]
            if counter is not None:
                counter.intermediate_tuples += 1
            if level == last:
                yield (prefix_key[num_stages], tuple(states))
            else:
                level += 1
                parent = parent_stage[level]
                if parent == -1:
                    uid = root_uid[level]
                else:
                    uid = conn_of[level][states[parent]]
                iterators[level] = iter(pairs_of(uid))

    def _next_result(self) -> RankedResult | None:
        item = next(self._iter, None)
        if item is None:
            return None
        key, states = item
        if self.counter is not None:
            self.counter.results += 1
        vfk = self.compiled.vfk
        return RankedResult(
            key if vfk is None else vfk(key), key, states, self.tdp
        )


def make_flat_enumerator(
    compiled: CompiledTDP, algorithm: str, counter: OpCounter | None = None
) -> Enumerator:
    """Instantiate a flat enumerator over ``compiled`` by algorithm name."""
    if algorithm in FLAT_VIEWS:
        return FlatAnyKPart(compiled, algorithm, counter=counter)
    if algorithm == "recursive":
        return FlatRecursive(compiled, counter=counter)
    if algorithm == "batch":
        return FlatBatch(compiled, counter=counter)
    if algorithm == "batch_nosort":
        return FlatBatch(compiled, sort=False, counter=counter)
    raise ValueError(f"unknown any-k algorithm {algorithm!r}")
