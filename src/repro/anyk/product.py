"""Ranked Cartesian products of lazily materialised sorted streams.

Section 5.1: at a T-DP state with multiple child branches, anyK-rec must
combine the ranked solution lists of the branches — i.e. enumerate the
Cartesian product of several sorted (and lazily computed) sequences in
non-decreasing aggregate order, without duplicates.  The classic
Lawler-style scheme does this: a candidate vector carries a *marker*;
its successors increment one coordinate at or after the marker, so every
vector is generated through exactly one (sorted) increment sequence.

The coordinate streams are accessed through a callback
``ensure(conn, j)`` that returns the ``j``-th ranked solution entry of a
connector (triggering recursion in anyK-rec) or ``None`` when the stream
is exhausted.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Sequence

from repro.dp.graph import ChoiceSet
from repro.ranking.dioid import SelectiveDioid
from repro.util.counters import OpCounter

#: ensure(conn, j) -> solution entry ``(key, value, state, js)`` or None.
EnsureFn = Callable[[ChoiceSet, int], Any]


class RankedProduct:
    """Enumerate branch-solution combinations in ranked order.

    ``get(j)`` returns ``(value, vector)`` — the aggregate weight and the
    per-branch solution ranks of the ``j``-th best combination — or
    ``None`` once the product is exhausted.  Outputs are memoised, so a
    parent state shared by many solutions ranks its combination space
    only once (the reuse that powers Recursive's amortised analysis).
    """

    __slots__ = ("conns", "ensure", "dioid", "outputs", "_heap", "_seq", "counter")

    def __init__(
        self,
        conns: Sequence[ChoiceSet],
        ensure: EnsureFn,
        dioid: SelectiveDioid,
        counter: OpCounter | None = None,
    ):
        self.conns = tuple(conns)
        self.ensure = ensure
        self.dioid = dioid
        self.counter = counter
        self.outputs: list[tuple[Any, tuple[int, ...]]] = []
        self._heap: list[tuple] = []
        self._seq = 0
        firsts = [ensure(conn, 0) for conn in self.conns]
        if any(entry is None for entry in firsts):
            return  # dead product: some branch has no solution at all
        value = dioid.times_all(entry[1] for entry in firsts)
        start = (0,) * len(self.conns)
        self._push(dioid.key(value), start, 0, value)

    def _push(self, key, vector, marker, value) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (key, self._seq, vector, marker, value))
        if self.counter is not None:
            self.counter.pq_push += 1

    def get(self, j: int) -> tuple[Any, tuple[int, ...]] | None:
        """The ``j``-th ranked combination (0-based), or ``None``."""
        outputs = self.outputs
        if j < len(outputs):
            return outputs[j]
        # Hot loop: every per-iteration attribute — the dioid methods,
        # the heap primitives, the list appenders — binds once here.
        dioid = self.dioid
        times = dioid.times
        key_of = dioid.key
        one = dioid.one
        ensure = self.ensure
        conns = self.conns
        width = len(conns)
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        append = outputs.append
        counter = self.counter
        seq = self._seq
        while len(outputs) <= j:
            if not heap:
                self._seq = seq
                return None
            _key, _seq, vector, marker, value = heappop(heap)
            if counter is not None:
                counter.pq_pop += 1
            append((value, vector))
            for i in range(marker, width):
                bumped = ensure(conns[i], vector[i] + 1)
                if bumped is None:
                    continue
                new_vector = vector[:i] + (vector[i] + 1,) + vector[i + 1:]
                new_value = one
                for branch, rank in enumerate(new_vector):
                    entry = ensure(conns[branch], rank)
                    new_value = times(new_value, entry[1])
                seq += 1
                heappush(heap, (key_of(new_value), seq, new_vector, i, new_value))
                if counter is not None:
                    counter.pq_push += 1
        self._seq = seq
        return outputs[j]
