"""UT-DP: ranked enumeration over a union of T-DP problems (Section 5.2).

A top-level priority queue holds the most recent unconsumed result of
every member enumerator; popping the minimum and refilling from the same
member merges the ranked streams.  When the member problems come from a
decomposition whose outputs may overlap (e.g. generic tree
decompositions), duplicates of an output tuple must arrive
*consecutively* so that O(1) look-behind suffices to drop them — that is
guaranteed by ranking each member with the Section 6.3 tie-breaking
dioid, whose keys append the canonical output assignment.

The merge loop itself lives in :class:`~repro.anyk.merge.RankedMerge`,
shared with the parallel execution layer's shard merge
(:mod:`repro.parallel`); this module keeps the union-specific
configuration (duplicate elimination on by default, results counted at
the union level — the historical UT-DP accounting).
"""

from __future__ import annotations

from typing import Sequence

from repro.anyk.base import Enumerator
from repro.anyk.merge import IdentityFn, RankedMerge, _default_identity
from repro.util.counters import OpCounter

__all__ = ["UnionEnumerator", "IdentityFn", "_default_identity"]


class UnionEnumerator(RankedMerge):
    """Merge several ranked streams; optionally drop consecutive duplicates.

    All member enumerators must rank by the *same* dioid so that their
    result keys are comparable.  With ``dedup=True`` (the default) a
    result equal — under ``identity`` — to the previously emitted one is
    silently skipped; correct global deduplication additionally requires
    tie-broken keys (see module docstring).
    """

    def __init__(
        self,
        members: Sequence[Enumerator],
        identity: IdentityFn | None = None,
        dedup: bool = True,
        counter: OpCounter | None = None,
    ):
        super().__init__(
            members,
            identity=identity,
            dedup=dedup,
            counter=counter,
            count_results=True,
        )
