"""UT-DP: ranked enumeration over a union of T-DP problems (Section 5.2).

A top-level priority queue holds the most recent unconsumed result of
every member enumerator; popping the minimum and refilling from the same
member merges the ranked streams.  When the member problems come from a
decomposition whose outputs may overlap (e.g. generic tree
decompositions), duplicates of an output tuple must arrive
*consecutively* so that O(1) look-behind suffices to drop them — that is
guaranteed by ranking each member with the Section 6.3 tie-breaking
dioid, whose keys append the canonical output assignment.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Sequence

from repro.anyk.base import Enumerator, RankedResult
from repro.util.counters import OpCounter

#: Maps a result to the identity used for duplicate elimination.
IdentityFn = Callable[[RankedResult], Any]


def _default_identity(result: RankedResult) -> tuple:
    return result.output_tuple()


class UnionEnumerator(Enumerator):
    """Merge several ranked streams; optionally drop consecutive duplicates.

    All member enumerators must rank by the *same* dioid so that their
    result keys are comparable.  With ``dedup=True`` (the default) a
    result equal — under ``identity`` — to the previously emitted one is
    silently skipped; correct global deduplication additionally requires
    tie-broken keys (see module docstring).
    """

    def __init__(
        self,
        members: Sequence[Enumerator],
        identity: IdentityFn | None = None,
        dedup: bool = True,
        counter: OpCounter | None = None,
    ):
        self.members = list(members)
        self.identity = identity if identity is not None else _default_identity
        self.dedup = dedup
        self.counter = counter
        self._heap: list[tuple] = []
        self._seq = 0
        self._last_identity: Any = _SENTINEL
        for index, member in enumerate(self.members):
            self._refill(index)

    def _refill(self, index: int) -> None:
        result = self.members[index]._next_result()
        if result is None:
            return
        self._seq += 1
        heapq.heappush(self._heap, (result.key, self._seq, index, result))
        if self.counter is not None:
            self.counter.pq_push += 1

    def _next_result(self) -> RankedResult | None:
        # Merge loop: bind the heap primitives, the member table, and
        # the dedup callables to locals once per call — a result that
        # survives dedup exits on the first iteration, but duplicate
        # runs spin here and should not re-resolve attributes per spin.
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        members = self.members
        counter = self.counter
        dedup = self.dedup
        identity = self.identity
        while heap:
            _key, _seq, index, result = heappop(heap)
            if counter is not None:
                counter.pq_pop += 1
            refill = members[index]._next_result()
            if refill is not None:
                self._seq += 1
                heappush(heap, (refill.key, self._seq, index, refill))
                if counter is not None:
                    counter.pq_push += 1
            if dedup:
                ident = identity(result)
                if ident == self._last_identity:
                    continue
                self._last_identity = ident
            if counter is not None:
                counter.results += 1
            return result
        return None


class _Sentinel:
    def __eq__(self, other) -> bool:
        return other is self

    def __repr__(self) -> str:
        return "<no previous result>"


_SENTINEL = _Sentinel()
