"""anyK-part (Algorithm 1): ranked enumeration by repeated partitioning.

A *candidate* is the best solution of one Lawler subspace: a fixed prefix
of states for the serialised stages ``0 .. r-1`` plus a restricted choice
at stage ``r`` (restriction expressed through the successor strategy's
structure).  The candidate priority is the weight of its best completion.
Popping the minimum candidate, the algorithm

1. walks stages ``r .. L-1``; at each stage it asks the strategy for the
   successors of the current choice and pushes them as new candidates
   (the subspaces ``P_r .. P_l`` of Section 4.1.1), and
2. extends the solution optimally into the next stage by taking the best
   choice of the connector selected by the (already fixed) parent state.

Candidate weights (Section 6.2): we track *total completion weights*.
With an invertible ``times`` a sibling's total is derived in O(1) as
``total ⊘ current_choice ⊗ successor_choice``; without an inverse we
recompute ``fixed_prefix ⊗ (product of open-branch minima) ⊗ choice``,
which costs O(l) per stage — the paper's O(l²)-delay monoid fallback.
Path queries have no open branches, so both modes are O(1) per sibling
there.
"""

from __future__ import annotations

import heapq

from repro.anyk.base import Enumerator, RankedResult
from repro.anyk.strategies import SuccessorStrategy, Take2Strategy
from repro.dp.graph import TDP
from repro.util.counters import OpCounter


class AnyKPart(Enumerator):
    """Algorithm 1, parameterised by a successor strategy.

    ``use_inverse`` defaults to the dioid's capability; it can be forced
    off to measure the monoid fallback (the Section 6.2 ablation).
    """

    def __init__(
        self,
        tdp: TDP,
        strategy: SuccessorStrategy | None = None,
        counter: OpCounter | None = None,
        use_inverse: bool | None = None,
    ):
        self.tdp = tdp
        self.strategy = strategy if strategy is not None else Take2Strategy()
        self.counter = counter
        dioid = tdp.dioid
        self.dioid = dioid
        if use_inverse is None:
            use_inverse = dioid.has_inverse
        elif use_inverse and not dioid.has_inverse:
            raise ValueError(f"{dioid!r} has no inverse")
        self.use_inverse = use_inverse

        num_stages = tdp.num_stages
        parent_stage = tdp.parent_stage
        # Stages whose branch is open (parent fixed, state not yet chosen)
        # while stage j's state is being decided; excludes j itself.
        self._open_after: list[tuple[int, ...]] = [
            tuple(
                c
                for c in range(j + 1, num_stages)
                if parent_stage[c] < j
            )
            for j in range(num_stages)
        ]

        self._heap: list[tuple] = []
        self._seq = 0
        self._exhausted = tdp.is_empty()
        if not self._exhausted:
            root_conn = tdp.connector_for(0, None)
            view = self.strategy.view(root_conn)
            pos = view.best_pos()
            total = tdp.best_weight
            self._push(dioid.key(total), None, 0, view, pos, total)

    # -- candidate queue ---------------------------------------------------------

    def _push(self, key, prefix, stage, view, pos, total) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (key, self._seq, prefix, stage, view, pos, total))
        if self.counter is not None:
            self.counter.pq_push += 1
            self.counter.candidates_created += 1

    def peak_candidates(self) -> int:
        """Current size of the candidate priority queue (MEM diagnostics)."""
        return len(self._heap)

    # -- enumeration ---------------------------------------------------------------

    def _next_result(self) -> RankedResult | None:
        if self._exhausted or not self._heap:
            return None
        tdp = self.tdp
        dioid = self.dioid
        times = dioid.times
        key_of = dioid.key
        strategy = self.strategy
        counter = self.counter
        use_inverse = self.use_inverse
        num_stages = tdp.num_stages
        parent_stage = tdp.parent_stage
        child_conns = tdp.child_conns
        branch_index = tdp.branch_index
        values = tdp.values

        key, _seq, prefix, stage, view, pos, total = heapq.heappop(self._heap)
        if counter is not None:
            counter.pq_pop += 1

        # Recover the fixed prefix states (stages 0 .. stage-1).
        states: list[int] = [0] * num_stages
        node = prefix
        fill = stage - 1
        fixed = dioid.one
        while node is not None:
            state, node = node
            states[fill] = state
            if not use_inverse:
                fixed = times(values[fill][state], fixed)
            fill -= 1

        open_after = self._open_after
        for j in range(stage, num_stages):
            entry = view.entry(pos)
            # -- new candidates: successors of the current choice at stage j.
            successor_positions = view.successor_positions(pos)
            if counter is not None:
                counter.successor_calls += 1
            if successor_positions:
                if use_inverse:
                    base = dioid.divide(total, entry[2])
                else:
                    base = fixed
                    for open_stage in open_after[j]:
                        parent = parent_stage[open_stage]
                        if parent == -1:
                            conn = tdp.root_conn[open_stage]
                        else:
                            conn = child_conns[parent][states[parent]][
                                branch_index[open_stage]
                            ]
                        base = times(base, conn.min_value)
                for succ_pos in successor_positions:
                    succ_entry = view.entry(succ_pos)
                    new_total = times(base, succ_entry[2])
                    self._push(key_of(new_total), prefix, j, view, succ_pos, new_total)

            # -- extend the solution: fix stage j to the current choice.
            state = entry[1]
            states[j] = state
            prefix = (state, prefix)
            if not use_inverse:
                fixed = times(fixed, values[j][state])
            if j + 1 < num_stages:
                parent = parent_stage[j + 1]
                if parent == -1:
                    conn = tdp.root_conn[j + 1]
                else:
                    conn = child_conns[parent][states[parent]][branch_index[j + 1]]
                view = strategy.view(conn)
                pos = view.best_pos()
            if counter is not None:
                counter.expansions += 1

        if counter is not None:
            counter.results += 1
        return RankedResult(total, key, tuple(states), tdp)
