"""The Batch baseline: compute the full output, then sort (Section 4.3).

For acyclic queries the full output enumeration over the reduced T-DP is
exactly the Yannakakis algorithm (the bottom-up pruning of the builder
is the semi-join reduction); cyclic queries reach Batch through the
same decomposition + union machinery as the any-k algorithms, or through
the standalone NPRR/Generic-Join implementation in ``repro.joins``.

``sort=False`` gives the paper's "Batch(No sort)" reference point, which
measures pure full-result computation.
"""

from __future__ import annotations

from typing import Iterator

from repro.anyk.base import Enumerator, RankedResult
from repro.dp.graph import TDP
from repro.util.counters import OpCounter


def enumerate_all_solutions(tdp: TDP, counter: OpCounter | None = None) -> Iterator[tuple]:
    """Yield ``(weight, states)`` for every solution, in no particular order.

    Iterative backtracking over the reduced state space: every alive
    partial solution completes (the Yannakakis guarantee), so the cost is
    O(l) per output tuple after the linear-time build.
    """
    if tdp.is_empty():
        return
    num_stages = tdp.num_stages
    dioid = tdp.dioid
    times = dioid.times
    values = tdp.values
    parent_stage = tdp.parent_stage
    child_conns = tdp.child_conns
    branch_index = tdp.branch_index
    root_conn = tdp.root_conn

    states = [0] * num_stages
    prefix_weight = [dioid.one] * (num_stages + 1)
    iterators: list[Iterator | None] = [None] * num_stages
    iterators[0] = iter(tdp.connector_for(0, None).entries)
    level = 0
    while level >= 0:
        entry = next(iterators[level], None)
        if entry is None:
            level -= 1
            continue
        state = entry[1]
        states[level] = state
        prefix_weight[level + 1] = times(prefix_weight[level], values[level][state])
        if counter is not None:
            counter.intermediate_tuples += 1
        if level == num_stages - 1:
            yield (prefix_weight[num_stages], tuple(states))
        else:
            level += 1
            parent = parent_stage[level]
            if parent == -1:
                conn = root_conn[level]
            else:
                conn = child_conns[parent][states[parent]][branch_index[level]]
            iterators[level] = iter(conn.entries)


class Batch(Enumerator):
    """Materialise the full output, optionally sort it, then iterate."""

    def __init__(self, tdp: TDP, sort: bool = True, counter: OpCounter | None = None):
        self.tdp = tdp
        self.counter = counter
        self.sorted = sort
        dioid = tdp.dioid
        key_of = dioid.key
        results = [
            (key_of(weight), states, weight)
            for weight, states in enumerate_all_solutions(tdp, counter=counter)
        ]
        if sort:
            # Sort by key, breaking ties by the state vector so the order
            # is deterministic across algorithms.
            results.sort(key=lambda item: (item[0], item[1]))
        self.size = len(results)
        self._iter = iter(results)

    def _next_result(self) -> RankedResult | None:
        item = next(self._iter, None)
        if item is None:
            return None
        key, states, weight = item
        if self.counter is not None:
            self.counter.results += 1
        return RankedResult(weight, key, states, self.tdp)
