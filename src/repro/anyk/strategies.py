"""Successor strategies: the four anyK-part instantiations (Section 4.1.3).

The only design freedom in Algorithm 1 is how each choice set organises
its entries and how ``Succ(x, y)`` finds successor choices:

* **Eager** — pre-sort the choice set; the successor of position ``p``
  is ``p + 1``.  O(n log n) preprocessing per touched set, O(1) per call.
* **Lazy** (Chang et al.) — binary heap, incrementally drained into a
  sorted prefix; converges to Eager over the run.  Linear preprocessing,
  amortised O(log n) for fresh successors.
* **All** (Yang et al.) — no structure at all: the successors of the top
  choice are *all other* choices (inserted into Cand immediately); other
  choices have no successors because everything is already in Cand.
* **Take2** (this paper) — heapify once, never pop: the heap array is a
  static partial order and the successors of position ``p`` are its heap
  children ``2p+1`` and ``2p+2``.  Linear preprocessing, O(1) per call,
  at most two successors — the combination that yields optimal delay.

Every strategy exposes *views* over the shared
:class:`~repro.dp.graph.ChoiceSet` connectors.  Views are cached per
strategy instance (i.e. per enumerator run) and built lazily on first
access, as in the paper's implementation notes.

Correctness contract (relaxed strategies, Section 4.1.3): for any chosen
position ``p``, the true next-best choice is either among
``successor_positions(p)`` or already guaranteed to be in the candidate
queue through an earlier successor call on an ancestor choice.
"""

from __future__ import annotations

from typing import Sequence

from repro.dp.graph import ChoiceSet
from repro.util.heaps import LazySortedList, heap_children


class ChoiceView:
    """Strategy-specific ordered access to one connector's entries.

    ``entry(pos)`` returns the ``(key, state, value)`` triple at a
    strategy-defined position; ``best_pos()`` is the position of the
    minimum; ``successor_positions(pos)`` implements ``Succ``.
    """

    __slots__ = ()

    def best_pos(self) -> int:
        raise NotImplementedError

    def entry(self, pos: int) -> tuple:
        raise NotImplementedError

    def successor_positions(self, pos: int) -> Sequence[int]:
        raise NotImplementedError


class _EagerView(ChoiceView):
    __slots__ = ("entries",)

    def __init__(self, conn: ChoiceSet):
        self.entries = sorted(conn.entries)

    def best_pos(self) -> int:
        return 0

    def entry(self, pos: int) -> tuple:
        return self.entries[pos]

    def successor_positions(self, pos: int) -> Sequence[int]:
        return (pos + 1,) if pos + 1 < len(self.entries) else ()


class _LazyView(ChoiceView):
    __slots__ = ("lazy",)

    def __init__(self, conn: ChoiceSet):
        # The paper's Lazy materialises the top two entries up front:
        # the first expansion step asks for the second-best choice.
        self.lazy = LazySortedList(conn.entries, prefetch=2)

    def best_pos(self) -> int:
        return 0

    def entry(self, pos: int) -> tuple:
        return self.lazy.get(pos)

    def successor_positions(self, pos: int) -> Sequence[int]:
        return (pos + 1,) if self.lazy.get(pos + 1) is not None else ()


class _Take2View(ChoiceView):
    __slots__ = ("heap",)

    def __init__(self, conn: ChoiceSet):
        # Copy before heapifying: the shared entry list must stay
        # untouched for concurrent enumerators over the same TDP.
        import heapq

        self.heap = list(conn.entries)
        heapq.heapify(self.heap)

    def best_pos(self) -> int:
        return 0

    def entry(self, pos: int) -> tuple:
        return self.heap[pos]

    def successor_positions(self, pos: int) -> Sequence[int]:
        return heap_children(pos, len(self.heap))


class _AllView(ChoiceView):
    __slots__ = ("entries", "_best")

    def __init__(self, conn: ChoiceSet):
        self.entries = conn.entries
        best_entry = conn.min_entry
        self._best = self.entries.index(best_entry)

    def best_pos(self) -> int:
        return self._best

    def entry(self, pos: int) -> tuple:
        return self.entries[pos]

    def successor_positions(self, pos: int) -> Sequence[int]:
        if pos != self._best:
            return ()
        best = self._best
        return tuple(p for p in range(len(self.entries)) if p != best)


class SuccessorStrategy:
    """Base: caches one view per connector, built on first access."""

    name = "abstract"
    view_class: type[ChoiceView] = ChoiceView

    def __init__(self) -> None:
        self._views: dict[int, ChoiceView] = {}

    def view(self, conn: ChoiceSet) -> ChoiceView:
        view = self._views.get(conn.uid)
        if view is None:
            view = self.view_class(conn)
            self._views[conn.uid] = view
        return view

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class EagerStrategy(SuccessorStrategy):
    """Eager Sort: pre-sorted choice sets (Section 4.1.3)."""

    name = "eager"
    view_class = _EagerView


class LazyStrategy(SuccessorStrategy):
    """Lazy Sort of Chang et al. [31]: heap drained on demand."""

    name = "lazy"
    view_class = _LazyView


class Take2Strategy(SuccessorStrategy):
    """The paper's Take2: static heap as partial order, two successors."""

    name = "take2"
    view_class = _Take2View


class AllStrategy(SuccessorStrategy):
    """All of Yang et al. [101]: every non-top choice is a successor."""

    name = "all"
    view_class = _AllView


#: Name -> strategy class registry used by :func:`repro.anyk.base.make_enumerator`.
ALGORITHMS: dict[str, type[SuccessorStrategy]] = {
    "eager": EagerStrategy,
    "lazy": LazyStrategy,
    "take2": Take2Strategy,
    "all": AllStrategy,
}


# -- flat (compiled-core) views -------------------------------------------------
#
# The same four strategies, ported to the key-space ``(key, state)``
# pairs of a :class:`~repro.dp.flat.CompiledTDP`.  Two deliberate
# differences from the object views above:
#
# * ``entry_at`` is an *attribute* bound once at construction — for the
#   list-backed views it is the list's C-level ``__getitem__``, so the
#   hot loop pays no Python-level method frame per entry read;
# * construction takes the connector's shared pair list (see
#   ``CompiledTDP.pairs``) instead of a ``ChoiceSet``; views that
#   reorder copy it first, exactly like the object views copy
#   ``conn.entries``.
#
# Position semantics, successor rules, and tie-breaking are identical to
# the object views: pairs ``(key, state)`` order exactly like triples
# ``(key, state, value)`` because ``state`` is unique per entry, which
# is what makes the flat and object paths bit-identical.


class FlatEagerView:
    """Eager Sort over key-space pairs (sorted copy, successor = pos+1)."""

    __slots__ = ("entries", "entry_at", "best")

    def __init__(self, pairs: list[tuple]):
        self.entries = sorted(pairs)
        self.entry_at = self.entries.__getitem__
        self.best = 0

    def succ(self, pos: int) -> Sequence[int]:
        return (pos + 1,) if pos + 1 < len(self.entries) else ()


class FlatLazyView:
    """Lazy Sort over key-space pairs (heap drained into a sorted prefix)."""

    __slots__ = ("lazy", "entry_at", "best")

    def __init__(self, pairs: list[tuple]):
        self.lazy = LazySortedList(pairs, prefetch=2)
        self.entry_at = self.lazy.get
        self.best = 0

    def succ(self, pos: int) -> Sequence[int]:
        return (pos + 1,) if self.lazy.get(pos + 1) is not None else ()


class FlatTake2View:
    """Take2 over key-space pairs: one heapify, successors = heap children."""

    __slots__ = ("entries", "entry_at", "best")

    def __init__(self, pairs: list[tuple]):
        import heapq

        self.entries = list(pairs)  # private copy: the base list is shared
        heapq.heapify(self.entries)
        self.entry_at = self.entries.__getitem__
        self.best = 0

    def succ(self, pos: int) -> Sequence[int]:
        return heap_children(pos, len(self.entries))


class FlatAllView:
    """All over key-space pairs: every non-top choice succeeds the top."""

    __slots__ = ("entries", "entry_at", "best")

    def __init__(self, pairs: list[tuple]):
        self.entries = pairs  # read-only: no copy needed
        self.entry_at = pairs.__getitem__
        self.best = pairs.index(min(pairs))

    def succ(self, pos: int) -> Sequence[int]:
        if pos != self.best:
            return ()
        best = self.best
        return tuple(p for p in range(len(self.entries)) if p != best)


#: Name -> flat view class, used by :class:`repro.anyk.flat.FlatAnyKPart`.
FLAT_VIEWS: dict[str, type] = {
    "eager": FlatEagerView,
    "lazy": FlatLazyView,
    "take2": FlatTake2View,
    "all": FlatAllView,
}
