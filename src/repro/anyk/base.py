"""Common result and iterator types for the any-k algorithms."""

from __future__ import annotations

from itertools import islice
from typing import Any, Iterator

from repro.dp.graph import TDP


class RankedResult:
    """One enumerated solution: a weight plus one state per stage.

    The heavier derived views (variable assignment, witness tuples) are
    computed lazily from the owning :class:`~repro.dp.graph.TDP`, keeping
    the per-result footprint at the paper's O(l).
    """

    __slots__ = ("weight", "key", "states", "tdp")

    def __init__(self, weight: Any, key: Any, states: tuple[int, ...], tdp: TDP):
        self.weight = weight
        self.key = key
        self.states = states
        self.tdp = tdp

    @property
    def assignment(self) -> dict[str, Any]:
        """Mapping of query variables to values."""
        return self.tdp.assignment(self.states)

    @property
    def witness(self) -> tuple:
        """Input tuples in atom order (Section 2.1's witness vector)."""
        return self.tdp.witness(self.states)

    @property
    def witness_ids(self) -> tuple[int, ...]:
        """Stable input-tuple positions in atom order."""
        return self.tdp.witness_ids(self.states)

    def output_tuple(self, variables: tuple[str, ...] | None = None) -> tuple:
        """Head projection of the assignment (defaults to all head vars)."""
        assignment = self.assignment
        if variables is None:
            variables = self.tdp.query.head
        return tuple(assignment[v] for v in variables)

    def __repr__(self) -> str:
        return f"RankedResult(weight={self.weight!r}, states={self.states})"


class Enumerator:
    """Iterator over :class:`RankedResult` in ranking order.

    Subclasses implement :meth:`_next_result`, returning ``None`` when
    exhausted.  The iterator protocol plus :meth:`top` cover the paper's
    any-k usage: pull results until satisfied, no k fixed in advance.
    :meth:`step` pulls a *bounded* batch — the time-slicing primitive
    for embedding raw enumerators in cooperative schedulers.  (The
    serving layer slices at the result level instead, through
    :class:`~repro.engine.stream.PrefixStream`, because its slices must
    also be memoized; ``step`` is the equivalent for direct
    ``make_enumerator`` embeddings that need no memo.)
    """

    #: Set once :meth:`_next_result` has returned ``None``; after that
    #: no further results will ever be produced (so schedulers can drop
    #: the enumeration without probing it again).
    _finished = False

    @property
    def exhausted(self) -> bool:
        """Whether the enumeration has produced its last result."""
        return self._finished

    def __iter__(self) -> Iterator[RankedResult]:
        return self

    def __next__(self) -> RankedResult:
        result = self._next_result()
        if result is None:
            self._finished = True
            raise StopIteration
        return result

    def step(self, n: int) -> list[RankedResult]:
        """Pull at most ``n`` further results (bounded batch).

        Returns fewer than ``n`` results exactly when the enumeration
        ran dry; :attr:`exhausted` is then ``True``.  Any-k's anytime
        property makes this cheap: each batch costs only the incremental
        delay of the results it yields, so a caller can interleave
        batches of many enumerations without losing work or order.
        """
        out: list[RankedResult] = []
        while len(out) < n and not self._finished:
            result = self._next_result()
            if result is None:
                self._finished = True
                break
            out.append(result)
        return out

    def _next_result(self) -> RankedResult | None:
        raise NotImplementedError

    def top(self, k: int) -> list[RankedResult]:
        """The first ``k`` results (fewer if the output is smaller)."""
        return list(islice(self, k))

    def within(self, weight_bound) -> Iterator[RankedResult]:
        """Yield results while their weight is within ``weight_bound``.

        A common any-k consumption pattern: "give me everything at most
        this expensive".  Relies on the ranked order — enumeration stops
        at the first result beyond the bound, so the cost is TT(k') for
        the actual number of qualifying results k'.
        """
        for result in self:
            if not self._leq_bound(result, weight_bound):
                return
            yield result

    def _leq_bound(self, result: RankedResult, bound) -> bool:
        return result.tdp.dioid.key(result.weight) <= result.tdp.dioid.key(bound)


def make_enumerator(
    tdp: TDP,
    algorithm: str = "take2",
    counter=None,
    flat: bool | None = None,
) -> Enumerator:
    """Instantiate an any-k enumerator over ``tdp`` by algorithm name.

    Names (paper Section 7): ``take2``, ``lazy``, ``eager``, ``all``,
    ``recursive``, ``batch``, and ``batch_nosort`` (Batch without the
    final sort, the paper's "Batch(No sort)" reference line).

    ``flat`` selects the enumeration core: ``None`` (default) uses the
    compiled flat core (:mod:`repro.anyk.flat`) whenever the dioid
    satisfies the ``key_is_value`` contract and transparently falls
    back to the object-graph enumerators otherwise; ``False`` forces
    the object-graph path (the differential-testing reference);
    ``True`` requires the flat core and raises if the dioid does not
    support it.  Both cores produce bit-identical ranked output.
    """
    from repro.anyk.batch import Batch
    from repro.anyk.partition import AnyKPart
    from repro.anyk.recursive import Recursive
    from repro.anyk.strategies import ALGORITHMS

    name = algorithm.lower()
    if flat is None or flat:
        from repro.anyk.flat import make_flat_enumerator
        from repro.dp.flat import compile_tdp

        compiled = compile_tdp(tdp)
        if compiled is not None:
            return make_flat_enumerator(compiled, name, counter=counter)
        if flat:
            raise ValueError(
                f"{tdp.dioid!r} does not support the compiled flat core "
                "(no key_is_value contract)"
            )
    if name in ALGORITHMS:
        return AnyKPart(tdp, strategy=ALGORITHMS[name](), counter=counter)
    if name == "recursive":
        return Recursive(tdp, counter=counter)
    if name == "batch":
        return Batch(tdp, counter=counter)
    if name == "batch_nosort":
        return Batch(tdp, sort=False, counter=counter)
    raise ValueError(f"unknown any-k algorithm {algorithm!r}")
