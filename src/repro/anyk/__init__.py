"""Any-k ranked-enumeration algorithms (Sections 4 and 5).

Two families over (T-)DP problems:

* **anyK-part** (:class:`repro.anyk.partition.AnyKPart`, Algorithm 1) —
  Lawler/Murty repeated partitioning of the solution space, instantiated
  by a successor strategy: :class:`~repro.anyk.strategies.EagerStrategy`,
  :class:`~repro.anyk.strategies.LazyStrategy`,
  :class:`~repro.anyk.strategies.AllStrategy`, or the paper's new
  :class:`~repro.anyk.strategies.Take2Strategy`.
* **anyK-rec** (:class:`repro.anyk.recursive.Recursive`, Algorithm 2) —
  the REA recursion that memoizes ranked suffixes per connector and can
  beat batch sorting on worst-case outputs (Theorem 11).

Plus the :class:`repro.anyk.batch.Batch` baseline (full result + sort)
and the :class:`repro.anyk.union.UnionEnumerator` for UT-DP problems.

Each family also has a *flat* port (:mod:`repro.anyk.flat`) whose inner
loops index into the compiled :class:`~repro.dp.flat.CompiledTDP`
arrays with native float arithmetic; :func:`make_enumerator` dispatches
to it automatically when the ranking dioid supports key-space
compilation, with bit-identical ranked output.
"""

from repro.anyk.base import Enumerator, RankedResult, make_enumerator
from repro.anyk.batch import Batch
from repro.anyk.flat import (
    FlatAnyKPart,
    FlatBatch,
    FlatRecursive,
    make_flat_enumerator,
)
from repro.anyk.partition import AnyKPart
from repro.anyk.recursive import Recursive
from repro.anyk.strategies import (
    ALGORITHMS,
    AllStrategy,
    EagerStrategy,
    LazyStrategy,
    SuccessorStrategy,
    Take2Strategy,
)
from repro.anyk.union import UnionEnumerator

__all__ = [
    "Enumerator",
    "RankedResult",
    "make_enumerator",
    "AnyKPart",
    "Recursive",
    "Batch",
    "FlatAnyKPart",
    "FlatRecursive",
    "FlatBatch",
    "make_flat_enumerator",
    "UnionEnumerator",
    "SuccessorStrategy",
    "EagerStrategy",
    "LazyStrategy",
    "AllStrategy",
    "Take2Strategy",
    "ALGORITHMS",
]
