"""The shared ranked k-way merge core.

Two subsystems merge ranked streams of :class:`RankedResult`:

* the UT-DP union over decomposition members (Section 5.2 — the cycle
  and generic decompositions, plus the UCQ pipeline), and
* the parallel execution layer, which merges per-fragment any-k streams
  back into one globally ranked stream (:mod:`repro.parallel`).

Both need the same loop — a top-level priority queue holding the most
recent unconsumed result of every member, popped minimum-first and
refilled from the same member — with the same determinism guarantees:
ties between equal keys resolve by *insertion sequence* (members are
seeded in order, refills re-enter at pop time), so a merge over the
same member streams always emits the same sequence.
:class:`RankedMerge` is that loop, extracted once; the callers configure
duplicate elimination (:class:`~repro.anyk.union.UnionEnumerator`) or
per-member emit attribution (:class:`~repro.parallel.merge.ShardMerge`)
on top of it.

Duplicate elimination remains O(1) look-behind: a result equal — under
``identity`` — to the previously emitted one is skipped.  That is only
globally correct when duplicates arrive *consecutively*, which the
union callers guarantee by ranking members under the Section 6.3
tie-breaking dioid.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Sequence

from repro.anyk.base import Enumerator, RankedResult
from repro.util.counters import OpCounter

#: Maps a result to the identity used for duplicate elimination.
IdentityFn = Callable[[RankedResult], Any]
#: Maps a result to its merge key (defaults to ``result.key``).
KeyFn = Callable[[RankedResult], Any]


def _default_identity(result: RankedResult) -> tuple:
    return result.output_tuple()


class _Sentinel:
    def __eq__(self, other) -> bool:
        return other is self

    def __repr__(self) -> str:
        return "<no previous result>"


_SENTINEL = _Sentinel()


class RankedMerge(Enumerator):
    """Merge several ranked streams minimum-first (the k-way merge core).

    All members must rank by the *same* dioid so their keys are
    comparable.  Construction seeds the heap with every member's first
    result in member order; each pop refills from the popped member.
    Exact-key ties therefore break deterministically by insertion
    sequence — earlier members (and earlier refills) win.

    ``dedup`` drops results whose ``identity`` equals the previously
    emitted one (consecutive-duplicate elimination, see module
    docstring).  ``counter`` receives the merge's own priority-queue
    traffic; ``count_results`` controls whether emits are also counted
    as ``results`` (the union callers historically count them, the
    shard merge leaves result counting to the member enumerators).
    ``member_counts[i]`` tracks how many results member ``i`` has
    contributed to the merged output (per-shard attribution).
    """

    def __init__(
        self,
        members: Sequence[Enumerator],
        key: KeyFn | None = None,
        identity: IdentityFn | None = None,
        dedup: bool = False,
        counter: OpCounter | None = None,
        count_results: bool = True,
    ):
        self.members = list(members)
        self.key = key
        self.identity = identity if identity is not None else _default_identity
        self.dedup = dedup
        self.counter = counter
        self.count_results = count_results
        #: Results each member has contributed to the merged output.
        self.member_counts = [0] * len(self.members)
        self._heap: list[tuple] = []
        self._seq = 0
        self._last_identity: Any = _SENTINEL
        for index in range(len(self.members)):
            self._refill(index)

    def _refill(self, index: int) -> None:
        result = self.members[index]._next_result()
        if result is None:
            return
        self._seq += 1
        merge_key = result.key if self.key is None else self.key(result)
        heapq.heappush(self._heap, (merge_key, self._seq, index, result))
        if self.counter is not None:
            self.counter.pq_push += 1

    def _next_result(self) -> RankedResult | None:
        # Merge loop: bind the heap primitives, the member table, and
        # the dedup callables to locals once per call — a result that
        # survives dedup exits on the first iteration, but duplicate
        # runs spin here and should not re-resolve attributes per spin.
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        members = self.members
        member_counts = self.member_counts
        counter = self.counter
        dedup = self.dedup
        identity = self.identity
        key_fn = self.key
        while heap:
            _key, _seq, index, result = heappop(heap)
            if counter is not None:
                counter.pq_pop += 1
            refill = members[index]._next_result()
            if refill is not None:
                self._seq += 1
                merge_key = refill.key if key_fn is None else key_fn(refill)
                heappush(heap, (merge_key, self._seq, index, refill))
                if counter is not None:
                    counter.pq_push += 1
            if dedup:
                ident = identity(result)
                if ident == self._last_identity:
                    continue
                self._last_identity = ident
            member_counts[index] += 1
            if counter is not None and self.count_results:
                counter.results += 1
            return result
        return None


class ConcatenatedStreams(Enumerator):
    """Members chained sequentially — the *unordered* merge degenerate.

    Used where the member streams carry no ranking contract to preserve
    (the ``batch_nosort`` baseline): with contiguous range fragments the
    concatenation reproduces the unsharded generation order exactly.
    """

    def __init__(
        self,
        members: Sequence[Enumerator],
        counter: OpCounter | None = None,
        count_results: bool = True,
    ):
        self.members = list(members)
        self.counter = counter
        self.count_results = count_results
        self.member_counts = [0] * len(self.members)
        self._index = 0

    def _next_result(self) -> RankedResult | None:
        while self._index < len(self.members):
            result = self.members[self._index]._next_result()
            if result is not None:
                self.member_counts[self._index] += 1
                if self.counter is not None and self.count_results:
                    self.counter.results += 1
                return result
            self._index += 1
        return None
