"""EXPLAIN ANALYZE: run a prepared query instrumented, report the cost.

``analyze_prepared`` force-binds a :class:`~repro.engine.engine.
PreparedQuery` under an always-sampling tracer, drains up to ``k``
ranked answers while clocking every answer's arrival, and folds the
recorded spans, the run's :class:`~repro.util.counters.OpCounter`,
per-shard emit counts, and compiled-core attribution into one
:class:`AnalyzeReport`.

The delay profile is the paper's own reading of the run: TTF (time to
first answer), TT(k) (time to the k-th), and per-answer delay
percentiles — the quantities Section 7's plots are made of, measured
live on the serving plan instead of in an offline harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.latency import delay_profile
from repro.obs.trace import Span, Tracer
from repro.util.counters import OpCounter


@dataclass
class StageNode:
    """One span in the rendered per-stage tree."""

    name: str
    ms: float
    attrs: dict = field(default_factory=dict)
    children: list["StageNode"] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "ms": self.ms,
            "attrs": self.attrs,
            "children": [child.as_dict() for child in self.children],
        }


def _span_tree(spans: list[Span]) -> list[StageNode]:
    """Rebuild the nesting tree from recorded (finished) spans."""
    nodes: dict[int, StageNode] = {}
    for span in spans:
        nodes[span.span_id] = StageNode(
            span.name, round(span.duration * 1e3, 4), dict(span.attrs)
        )
    roots: list[StageNode] = []
    by_start = sorted(spans, key=lambda s: (s.start, s.span_id))
    for span in by_start:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


@dataclass
class AnalyzeReport:
    """Everything ``EXPLAIN ANALYZE`` learned about one instrumented run."""

    query: str
    strategy: str
    algorithm: str
    k: int | None
    produced: int
    bind_ms: float
    total_ms: float
    stages: list[StageNode]
    counters: dict
    delay: dict
    shard_counts: list[int] | None = None
    shard_stats: dict | None = None
    core: dict | None = None
    explain: str = ""

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "strategy": self.strategy,
            "algorithm": self.algorithm,
            "k": self.k,
            "produced": self.produced,
            "bind_ms": self.bind_ms,
            "total_ms": self.total_ms,
            "stages": [node.as_dict() for node in self.stages],
            "counters": self.counters,
            "delay": self.delay,
            "shard_counts": self.shard_counts,
            "shard_stats": self.shard_stats,
            "core": self.core,
        }

    def render(self) -> str:
        """Human-readable EXPLAIN ANALYZE report."""
        k_text = "all" if self.k is None else str(self.k)
        lines = [
            f"EXPLAIN ANALYZE {self.query} "
            f"[{self.strategy}, {self.algorithm}, k={k_text}]",
            f"total: {self.total_ms:.3f} ms "
            f"(bind {self.bind_ms:.3f} ms, "
            f"enumerate {max(0.0, self.total_ms - self.bind_ms):.3f} ms)",
            "stages:",
        ]
        for root in self.stages:
            _render_node(root, "  ", lines)
        delay = self.delay
        lines.append(
            f"delay profile: produced={delay['produced']}  "
            f"TTF={delay['ttf_ms']:.4f} ms  "
            f"TT({delay['produced']})={delay['ttk_ms']:.4f} ms"
        )
        lines.append(
            f"  per-answer delay: p50={delay['delay_p50_us']:.2f} us  "
            f"p95={delay['delay_p95_us']:.2f} us  "
            f"p99={delay['delay_p99_us']:.2f} us  "
            f"max={delay['delay_max_us']:.2f} us"
        )
        busy = {k: v for k, v in self.counters.items() if v}
        counter_text = (
            "  ".join(f"{name}={value}" for name, value in busy.items())
            or "(none)"
        )
        lines.append(f"counters: {counter_text}")
        if self.shard_counts is not None:
            lines.append(f"shards: emitted per fragment {self.shard_counts}")
        if self.shard_stats is not None:
            lines.append(
                f"  shard build: mode={self.shard_stats['mode']}  "
                f"workers={self.shard_stats['workers']}  "
                f"shared lower {self.shard_stats['shared_lower_ms']} ms"
            )
        if self.core is not None:
            lines.append(
                f"compiled core: {self.core['entries']} flat entries, "
                f"{self.core['states']} states, "
                f"{self.core['connectors']} connectors"
            )
        return "\n".join(lines)


def _render_node(node: StageNode, indent: str, lines: list[str]) -> None:
    attrs = ""
    if node.attrs:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(node.attrs.items()))
        attrs = f"  {{{inner}}}"
    lines.append(f"{indent}{node.name:<24} {node.ms:10.4f} ms{attrs}")
    for child in node.children:
        _render_node(child, indent + "  ", lines)


def _core_stats(physical) -> dict | None:
    """Compiled-core stats of a physical plan (through projection wraps)."""
    inner = getattr(physical, "inner", None)
    if inner is not None:
        return _core_stats(inner)
    compiled = getattr(physical, "compiled", None)
    if compiled is not None and compiled is not False:
        return compiled.stats()
    fragments = getattr(physical, "fragments", None)
    if fragments:
        stats = [f.compiled.stats() for f in fragments if f.compiled is not None]
        if stats:
            # Per-fragment cores alias the shared lower stages, so the
            # sums attribute shared structures to every fragment that
            # can reach them — attribution, not unique storage.
            return {
                "entries": sum(s["entries"] for s in stats),
                "states": sum(s["states"] for s in stats),
                "connectors": sum(s["connectors"] for s in stats),
                "fragments": len(stats),
            }
    return None


def _sharded(physical):
    """The ShardedPhysical under ``physical`` (through projection wraps)."""
    inner = getattr(physical, "inner", None)
    if inner is not None:
        return _sharded(inner)
    return physical if hasattr(physical, "last_shard_counts") else None


def analyze_prepared(
    prepared,
    k: int | None = 10,
    rebind: bool = True,
    tracer: Tracer | None = None,
) -> AnalyzeReport:
    """Run ``prepared`` instrumented and report where the time went.

    ``rebind=True`` (the default) re-runs the preprocessing phase under
    the tracer so the per-stage tree covers plan → T-DP build → compile
    → core-cache → shard build; ``rebind=False`` profiles the warm
    serving path only (bind is a cache lookup).  A caller-supplied
    ``tracer`` collects the spans in addition to the report (used by the
    ``repro trace`` CLI to export the same run to Perfetto); by default
    the run records into a private always-sampling tracer.
    """
    if k is not None and k < 0:
        raise ValueError(f"k must be non-negative or None, got {k}")
    if tracer is None:
        tracer = Tracer(capacity=8192, sample="always")
    counter = OpCounter()
    delays: list[float] = []
    clock = time.perf_counter
    logical = prepared.logical
    with tracer.span(
        "analyze", query=logical.query.name, algorithm=logical.algorithm
    ) as root:
        with tracer.span("bind", forced=rebind) as bind_span:
            physical = prepared.bind(force=rebind, tracer=tracer)
        with tracer.span("enumerate", k=k) as enum_span:
            iterator = physical.iter(counter, algorithm=logical.algorithm)
            previous = clock()
            while k is None or len(delays) < k:
                if next(iterator, None) is None:
                    break
                now = clock()
                delays.append(now - previous)
                previous = now
            enum_span.set(produced=len(delays))
    trace_spans = [s for s in tracer.spans() if s.trace_id == root.trace_id]
    shard_counts = None
    shard_stats = None
    sharded = _sharded(physical)
    if sharded is not None:
        shard_counts = sharded.last_shard_counts()
        shard_stats = sharded.shard_stats()
    return AnalyzeReport(
        query=repr(logical.query),
        strategy=logical.strategy,
        algorithm=logical.algorithm,
        k=k,
        produced=len(delays),
        bind_ms=round(bind_span.duration * 1e3, 4),
        total_ms=round(root.duration * 1e3, 4),
        stages=_span_tree(trace_spans),
        counters=counter.as_dict(),
        delay=delay_profile(delays),
        shard_counts=shard_counts,
        shard_stats=shard_stats,
        core=_core_stats(physical),
        explain=physical.explain(),
    )
