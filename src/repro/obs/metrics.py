"""Typed metric instruments and a thread-safe registry (Prometheus-style).

The serving stack's operational counters used to be ad-hoc ints and
dicts flattened into untyped gauges.  This module gives them first-class
instruments:

* :class:`Counter` — monotone event count.  Implements the numeric
  protocol (``int()``, comparisons, ``+``), and ``counter += 1``
  increments *in place* via ``__iadd__`` — existing call sites and test
  assertions over plain-int counters keep working unchanged after a
  field is migrated to an instrument.
* :class:`Gauge` — a settable level, optionally computed at read time
  from a callback (``fn=``) so expensive values (memory estimates) are
  paid per scrape, never on the hot path.
* :class:`Histogram` — fixed upper-bound buckets (exponential by
  default), rendered as cumulative ``_bucket{le="..."}`` counts plus
  ``_sum``/``_count``, exactly the Prometheus text-format contract.
* :class:`Family` — a labeled family of any of the above;
  ``family.labels("sqlite")`` gets-or-creates the child instrument.
* :class:`MetricsRegistry` — a per-deployment (NOT process-global)
  collection.  Components own their instruments; a deployment *attaches*
  them, so two gateways (or two test fixtures) never collide in shared
  state.  :meth:`MetricsRegistry.render` emits valid text exposition
  (format 0.0.4): one ``# TYPE`` per metric name, sorted, with bucket
  lines in ascending ``le`` order.

:func:`validate_exposition` is a promtool-style line validator used by
the test suite and the CI smoke job to keep every scrape well-formed.

No imports from the rest of ``repro`` — every layer may depend on this
module without cycles.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Family",
    "MetricsRegistry",
    "default_buckets",
    "validate_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def default_buckets(
    start: float = 0.001, factor: float = 2.0, count: int = 14
) -> tuple[float, ...]:
    """Exponential bucket upper bounds (seconds): 1ms .. ~8s by default."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("buckets need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_sample(
    name: str, labels: dict[str, str] | None, value: float
) -> str:
    if labels:
        body = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in labels.items()
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Numeric:
    """Numeric protocol over ``self.value`` for Counter/Gauge.

    Keeps migrated call sites working: ``stats.binds == before + 1``,
    ``policy.shed >= 1``, f-string formatting, and JSON-prep ``int()``
    all behave as they did when the fields were plain ints.
    """

    __slots__ = ()

    @property
    def value(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    def __int__(self) -> int:
        return int(self.value)

    def __index__(self) -> int:
        return int(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __str__(self) -> str:
        return _format_value(self.value)

    def __format__(self, spec: str) -> str:
        value = self.value
        if float(value).is_integer() and ("f" not in spec and "e" not in spec):
            try:
                return format(int(value), spec)
            except ValueError:
                pass
        return format(value, spec)

    @staticmethod
    def _other(other: Any) -> float:
        if isinstance(other, _Numeric):
            return float(other.value)
        return float(other)

    def __eq__(self, other: Any) -> bool:
        try:
            return float(self.value) == self._other(other)
        except (TypeError, ValueError):
            return NotImplemented

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __lt__(self, other: Any) -> bool:
        return float(self.value) < self._other(other)

    def __le__(self, other: Any) -> bool:
        return float(self.value) <= self._other(other)

    def __gt__(self, other: Any) -> bool:
        return float(self.value) > self._other(other)

    def __ge__(self, other: Any) -> bool:
        return float(self.value) >= self._other(other)

    def __add__(self, other: Any):
        result = self.value + self._other(other)
        return int(result) if float(result).is_integer() else result

    __radd__ = __add__

    def __sub__(self, other: Any):
        result = self.value - self._other(other)
        return int(result) if float(result).is_integer() else result

    def __rsub__(self, other: Any):
        result = self._other(other) - self.value
        return int(result) if float(result).is_integer() else result

    # Identity hashing: instruments are registry entries, never dict
    # keys by value.
    __hash__ = object.__hash__


class Counter(_Numeric):
    """A monotone event counter.

    ``counter += n`` and :meth:`inc` add; :meth:`set` exists for *mirror*
    counters that copy an authoritative counter elsewhere (the engine's
    ``core_hits`` mirror of the :class:`~repro.dp.corebuf.CoreCache`)
    and for test ``reset()`` hooks — monotonicity is the caller's
    contract there, not enforced per call.
    """

    kind = "counter"

    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, by: float = 1) -> None:
        if by < 0:
            raise ValueError(f"counter increment must be >= 0, got {by}")
        with self._lock:
            self._value += by

    def set(self, total: float) -> None:
        with self._lock:
            self._value = float(total)

    def reset(self) -> None:
        self.set(0)

    def __iadd__(self, other: float) -> "Counter":
        self.inc(self._other(other))
        return self

    def samples(self) -> list[tuple[str, dict | None, float]]:
        return [("", self.labels, self._value)]

    def __repr__(self) -> str:
        return f"Counter({self.name}={_format_value(self._value)})"


class Gauge(_Numeric):
    """A settable level; ``fn=`` computes the value lazily per read."""

    kind = "gauge"

    __slots__ = ("name", "help", "labels", "_lock", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        fn: Callable[[], float] | None = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return 0.0
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, by: float = 1) -> None:
        with self._lock:
            self._value += by

    def dec(self, by: float = 1) -> None:
        self.inc(-by)

    def __iadd__(self, other: float) -> "Gauge":
        self.inc(self._other(other))
        return self

    def __isub__(self, other: float) -> "Gauge":
        self.dec(self._other(other))
        return self

    def samples(self) -> list[tuple[str, dict | None, float]]:
        return [("", self.labels, self.value)]

    def __repr__(self) -> str:
        return f"Gauge({self.name}={_format_value(self.value)})"


class Histogram:
    """Fixed-bucket histogram with cumulative exposition.

    ``buckets`` are finite upper bounds in ascending order (``+Inf`` is
    implicit).  :meth:`observe` is O(log buckets) under one lock;
    per-bucket counts are stored raw and cumulated only at render time.
    """

    kind = "histogram"

    __slots__ = (
        "name", "help", "labels", "buckets", "_lock", "_counts",
        "_sum", "_count",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        labels: dict[str, str] | None = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = labels
        bounds = tuple(sorted(set(default_buckets() if buckets is None else buckets)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last slot = overflow (+Inf)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict:
        """JSON-friendly view: cumulative counts per upper bound."""
        with self._lock:
            counts = list(self._counts)
            total, sum_ = self._count, self._sum
        cumulative: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative.append((bound, running))
        return {
            "buckets": cumulative,
            "count": total,
            "sum": round(sum_, 9),
        }

    def samples(self) -> list[tuple[str, dict | None, float]]:
        with self._lock:
            counts = list(self._counts)
            total, sum_ = self._count, self._sum
        base = self.labels or {}
        out: list[tuple[str, dict | None, float]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append(
                ("_bucket", {**base, "le": _format_value(bound)}, running)
            )
        out.append(("_bucket", {**base, "le": "+Inf"}, total))
        out.append(("_sum", self.labels, sum_))
        out.append(("_count", self.labels, total))
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self._count})"


class Family:
    """A labeled family of one instrument class.

    ``Family(Counter, "repro_retries_total", labelnames=("kind",))``;
    ``family.labels("sqlite")`` gets-or-creates the child.  Children are
    plain instruments, so migrated code can hold one child and bump it
    directly.
    """

    __slots__ = ("cls", "name", "help", "labelnames", "_lock", "_children", "_kwargs")

    def __init__(
        self,
        cls: type,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        **kwargs: Any,
    ):
        if not labelnames:
            raise ValueError("a Family needs at least one label name")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.cls = cls
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}
        self._kwargs = kwargs

    @property
    def kind(self) -> str:
        return self.cls.kind

    def labels(self, *values: Any, **by_name: Any) -> Any:
        if by_name:
            values = tuple(by_name[name] for name in self.labelnames)
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {key}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self.cls(
                        self.name,
                        self.help,
                        labels=dict(zip(self.labelnames, key)),
                        **self._kwargs,
                    )
                    self._children[key] = child
        return child

    def get(self, *values: Any) -> Any | None:
        """The child for ``values`` if it exists (no creation)."""
        return self._children.get(tuple(str(v) for v in values))

    def children(self) -> dict[tuple[str, ...], Any]:
        with self._lock:
            return dict(self._children)

    def clear(self) -> None:
        """Test hook: drop every child (counters restart from zero)."""
        with self._lock:
            self._children.clear()

    def samples(self) -> list[tuple[str, dict | None, float]]:
        out: list[tuple[str, dict | None, float]] = []
        for key in sorted(self._children):
            out.extend(self._children[key].samples())
        return out

    def __repr__(self) -> str:
        return (
            f"Family({self.cls.__name__}, {self.name}, "
            f"{len(self._children)} children)"
        )


class _Callback:
    """A collect-time metric: ``fn`` runs per scrape, never per event.

    Without ``labelnames``, ``fn() -> float``.  With them, ``fn`` returns
    a mapping of label value (or tuple of values) to float — the shape
    used for per-session gauges, where the label set changes as sessions
    come and go.
    """

    __slots__ = ("name", "help", "kind", "labelnames", "fn")

    def __init__(
        self,
        name: str,
        kind: str,
        fn: Callable[[], Any],
        help: str = "",
        labelnames: tuple[str, ...] = (),
    ):
        if kind not in ("counter", "gauge"):
            raise ValueError(f"callback metrics are counter|gauge, not {kind}")
        self.name = _check_name(name)
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.fn = fn

    def samples(self) -> list[tuple[str, dict | None, float]]:
        try:
            result = self.fn()
        except Exception:
            return []
        if not self.labelnames:
            return [("", None, float(result))]
        out: list[tuple[str, dict | None, float]] = []
        for key in sorted(result, key=str):
            values = key if isinstance(key, tuple) else (key,)
            labels = dict(zip(self.labelnames, (str(v) for v in values)))
            out.append(("", labels, float(result[key])))
        return out


class MetricsRegistry:
    """A deployment's metric collection: get-or-create plus attach.

    One registry per serving deployment (the gateway owns one).
    Components keep owning their instruments — :meth:`attach` only
    indexes them for rendering, so unattached components (bare engines
    in tests) pay nothing and never collide across instances.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Any] = {}

    # -- get-or-create ---------------------------------------------------------

    def _register(self, name: str, factory: Callable[[], Any]) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter | Family:
        if labelnames:
            return self._register(
                name, lambda: Family(Counter, name, help, labelnames)
            )
        return self._register(name, lambda: Counter(name, help))

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        fn: Callable[[], float] | None = None,
    ) -> Gauge | Family:
        if fn is not None:
            if labelnames:
                raise ValueError("use callback() for labeled collect-time metrics")
            return self._register(name, lambda: Gauge(name, help, fn=fn))
        if labelnames:
            return self._register(
                name, lambda: Family(Gauge, name, help, labelnames)
            )
        return self._register(name, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        labelnames: tuple[str, ...] = (),
    ) -> Histogram | Family:
        if labelnames:
            return self._register(
                name,
                lambda: Family(Histogram, name, help, labelnames, buckets=buckets),
            )
        return self._register(name, lambda: Histogram(name, help, buckets))

    def callback(
        self,
        name: str,
        fn: Callable[[], Any],
        kind: str = "gauge",
        help: str = "",
        labelnames: tuple[str, ...] = (),
    ) -> _Callback:
        return self._register(
            name, lambda: _Callback(name, kind, fn, help, labelnames)
        )

    def attach(self, metric: Any) -> Any:
        """Index an externally owned instrument/family for rendering."""
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is metric:
                return metric
            if existing is not None:
                raise ValueError(
                    f"metric name {metric.name!r} already registered"
                )
            self._metrics[metric.name] = metric
            return metric

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- output ----------------------------------------------------------------

    def collect(self) -> list[tuple[str, str, list[tuple[str, dict | None, float]]]]:
        """``(name, kind, samples)`` per metric, sorted by name."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return [
            (name, metric.kind, metric.samples()) for name, metric in metrics
        ]

    def render(self) -> str:
        """Text exposition (format 0.0.4): one ``# TYPE`` per name."""
        lines: list[str] = []
        for name, kind, samples in self.collect():
            if not samples:
                continue
            lines.append(f"# TYPE {name} {kind}")
            for suffix, labels, value in samples:
                lines.append(_format_sample(name + suffix, labels, value))
        return "\n".join(lines) + "\n" if lines else ""

    def as_dict(self) -> dict:
        """JSON-safe snapshot: plain numbers, labels folded into keys."""
        out: dict[str, Any] = {}
        for name, kind, samples in self.collect():
            if kind == "histogram":
                continue  # histograms expose snapshot() where needed
            if len(samples) == 1 and not samples[0][1]:
                value = samples[0][2]
                out[name] = int(value) if float(value).is_integer() else value
                continue
            folded: dict[str, float] = {}
            for suffix, labels, value in samples:
                key = ",".join(f"{k}={v}" for k, v in (labels or {}).items())
                folded[key or suffix or name] = (
                    int(value) if float(value).is_integer() else value
                )
            out[name] = folded
        return out


# -- exposition validation -----------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(.*)\})?"
    r"\s+(\S+)(?:\s+\d+)?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_number(text: str) -> float | None:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def validate_exposition(text: str) -> list[str]:
    """Promtool-style checks over text exposition; returns error strings.

    Asserted invariants: every sample has a preceding ``# TYPE`` for its
    base name, no duplicate ``# TYPE`` lines, no duplicate samples,
    parsable values — and for histograms, ``le``-ordered monotone
    cumulative buckets with a ``+Inf`` bucket equal to ``_count``.
    """
    errors: list[str] = []
    types: dict[str, str] = {}
    seen_samples: set[tuple[str, str]] = set()
    # histogram name -> {"buckets": [(le, value)], "count": float|None}
    histograms: dict[str, dict] = {}

    def base_name(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            stem = sample_name[: -len(suffix)]
            if (
                sample_name.endswith(suffix)
                and types.get(stem) == "histogram"
            ):
                return stem
        return sample_name

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line {line!r}")
                continue
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                errors.append(f"line {lineno}: unknown type {kind!r}")
            if name in types:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = kind
            if kind == "histogram":
                histograms[name] = {"buckets": [], "count": None}
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparsable sample {line!r}")
            continue
        sample_name, label_text, value_text = match.groups()
        value = _parse_number(value_text)
        if value is None:
            errors.append(f"line {lineno}: bad value {value_text!r}")
            continue
        labels: dict[str, str] = {}
        if label_text:
            matched_len = 0
            for pair in _LABEL_PAIR_RE.finditer(label_text):
                labels[pair.group(1)] = pair.group(2)
                matched_len += len(pair.group(0))
            stripped = label_text.replace(",", "").replace(" ", "")
            if matched_len != len(stripped):
                errors.append(
                    f"line {lineno}: malformed labels {{{label_text}}}"
                )
        name = base_name(sample_name)
        if name not in types:
            errors.append(
                f"line {lineno}: sample {sample_name} has no TYPE line"
            )
        key = (sample_name, label_text or "")
        if key in seen_samples:
            errors.append(
                f"line {lineno}: duplicate sample {sample_name}"
                f"{{{label_text or ''}}}"
            )
        seen_samples.add(key)
        hist = histograms.get(name)
        if hist is not None:
            if sample_name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label"
                    )
                else:
                    bound = _parse_number(labels["le"])
                    if bound is None:
                        errors.append(
                            f"line {lineno}: bad le value {labels['le']!r}"
                        )
                    else:
                        hist["buckets"].append((bound, value))
            elif sample_name.endswith("_count"):
                hist["count"] = value

    for name, hist in histograms.items():
        buckets = hist["buckets"]
        if not buckets:
            errors.append(f"histogram {name}: no bucket samples")
            continue
        bounds = [bound for bound, _value in buckets]
        if bounds != sorted(bounds):
            errors.append(f"histogram {name}: buckets not in le order")
        values = [value for _bound, value in buckets]
        if any(b > a for a, b in zip(values[1:], values)):
            errors.append(
                f"histogram {name}: cumulative bucket counts not monotone"
            )
        if bounds and bounds[-1] != math.inf:
            errors.append(f"histogram {name}: missing +Inf bucket")
        elif hist["count"] is not None and values[-1] != hist["count"]:
            errors.append(
                f"histogram {name}: +Inf bucket {values[-1]} != "
                f"_count {hist['count']}"
            )
    return errors
