"""Sampling profiler: periodic stack walks attributed to engine stages.

A background daemon thread wakes ``hz`` times per second, snapshots
every thread's stack via ``sys._current_frames()``, and folds each
stack into a collapsed-stack line (``outer;...;inner count``) — the
format consumed by flamegraph tooling.  Because sampling happens out
of band, the profiled workload runs unmodified: no tracing hooks, no
per-call overhead, just ``1/hz``-spaced snapshots.

Each sample is also attributed to a coarse *engine stage* derived from
the innermost repro frame's path (``dp/`` → enumeration machinery,
``engine/`` → engine, ``serve/`` → serving, ``backends/`` → storage,
``obs/`` → observability, anything else under ``repro`` → other), so
``stage_summary()`` answers "where does the time go" without a
flamegraph viewer.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _TallyCounter

__all__ = ["SamplingProfiler", "profile_call", "stage_of"]

#: Path fragment → stage label, tested innermost-frame-first.
_STAGES = (
    ("/repro/dp/", "enumerate"),
    ("/repro/anyk/", "enumerate"),
    ("/repro/engine/", "engine"),
    ("/repro/enumeration/", "enumerate"),
    ("/repro/serve/", "serve"),
    ("/repro/backends/", "storage"),
    ("/repro/obs/", "obs"),
)


def stage_of(filename: str) -> str | None:
    """Map a frame's filename to an engine stage, or None if not repro code."""
    normalized = filename.replace("\\", "/")
    for fragment, stage in _STAGES:
        if fragment in normalized:
            return stage
    if "/repro/" in normalized:
        return "other"
    return None


def _frame_label(frame) -> str:
    code = frame.f_code
    filename = code.co_filename.replace("\\", "/")
    # Keep paths short: everything from the repro package root if the
    # frame is ours, else just the basename.
    marker = filename.rfind("/repro/")
    if marker >= 0:
        filename = filename[marker + 1 :]
    else:
        filename = filename.rsplit("/", 1)[-1]
    return f"{filename}:{code.co_name}"


class SamplingProfiler:
    """Background stack sampler producing collapsed-stack output.

    Usable as a context manager::

        with SamplingProfiler(hz=97) as prof:
            run_workload()
        print(prof.collapsed())

    ``hz`` is the target sampling rate; the default 97 is prime so the
    sampler does not phase-lock with millisecond-periodic workloads.
    """

    def __init__(self, hz: float = 97.0, skip_own_thread: bool = True):
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz!r}")
        self.hz = float(hz)
        self.skip_own_thread = skip_own_thread
        self._stacks: _TallyCounter = _TallyCounter()
        self._stages: _TallyCounter = _TallyCounter()
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_id = threading.get_ident()
        while not self._stop.wait(interval):
            self.sample_once(skip_ident=own_id if self.skip_own_thread else None)

    def sample_once(self, skip_ident: int | None = None) -> int:
        """Take one snapshot of every live thread; returns stacks folded."""
        frames = sys._current_frames()
        folded = 0
        with self._lock:
            for ident, frame in frames.items():
                if ident == skip_ident:
                    continue
                labels = []
                stage = None
                walker = frame
                while walker is not None:
                    labels.append(_frame_label(walker))
                    if stage is None:
                        stage = stage_of(walker.f_code.co_filename)
                    walker = walker.f_back
                if not labels:
                    continue
                labels.reverse()  # collapsed-stack order: outermost first
                self._stacks[";".join(labels)] += 1
                self._stages[stage or "idle"] += 1
                folded += 1
            self._samples += 1
        return folded

    # -- reporting ---------------------------------------------------

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def collapsed(self, top: int | None = None) -> str:
        """Collapsed-stack text: one ``frame;frame;... count`` per line.

        Sorted by descending count (ties broken by the stack string)
        so ``--top N`` truncation keeps the hottest stacks.
        """
        with self._lock:
            entries = sorted(
                self._stacks.items(), key=lambda item: (-item[1], item[0])
            )
        if top is not None:
            entries = entries[:top]
        return "\n".join(f"{stack} {count}" for stack, count in entries)

    def stage_summary(self) -> dict[str, int]:
        """Sample tallies per engine stage (``enumerate``/``engine``/...)."""
        with self._lock:
            return dict(self._stages)

    def reset(self) -> None:
        with self._lock:
            self._stacks.clear()
            self._stages.clear()
            self._samples = 0


def profile_call(fn, hz: float = 97.0, min_seconds: float = 0.0):
    """Run ``fn()`` under a sampler; returns ``(result, profiler)``.

    ``min_seconds`` keeps sampling past a too-fast workload by
    re-invoking ``fn`` until the wall clock clears the floor — handy
    for CLI profiling of sub-millisecond queries.
    """
    profiler = SamplingProfiler(hz=hz)
    started = time.perf_counter()
    result = None
    with profiler:
        while True:
            result = fn()
            if time.perf_counter() - started >= min_seconds:
                break
    return result, profiler
