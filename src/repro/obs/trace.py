"""Engine-wide tracing: nested spans, ring-buffer recorder, sampling.

Design constraints, in order:

1. **The no-op path must be near-free.**  Every instrumentation point
   in the engine runs even when tracing is off, so the disabled path is
   a singleton :data:`NULL_TRACER` whose ``span()`` returns a stateless
   singleton context manager — no allocation, no clock read, no
   contextvar touch.  The flat enumeration loops themselves are never
   instrumented per-answer; spans wrap *phases* (bind, compile, shard
   build, stream extension, request dispatch).

2. **Nesting must survive threads and asyncio tasks.**  The current
   span lives in a :mod:`contextvars` ``ContextVar``, so spans opened
   inside an asyncio task nest under the request span that opened the
   task, and worker threads start fresh roots instead of corrupting a
   foreign trace.

3. **Memory is bounded.**  Finished spans land in a ``deque`` ring
   buffer; old spans fall out, ``dropped`` counts them.  A serving
   process can trace forever without growing.

Sampling is decided once per *root* span ("off"/ratio/"always").
Children inherit the root's verdict — a trace is recorded whole or not
at all, never as a torn fragment — but unsampled spans still occupy the
context slot so the parent chain stays intact for a later sampled root.
"""

from __future__ import annotations

import contextvars
import itertools
import random
import threading
import time
import uuid
from collections import deque
from typing import Callable, Optional

_current_span: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_current_span", default=None
)


class NullSpan:
    """Stateless do-nothing span; the tracing-off fast path.

    A single shared instance is handed out by :class:`NullTracer` and
    for unrecordable situations; it never touches the context var, so
    nested null spans simply collapse.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NullSpan":
        return self

    @property
    def duration(self) -> float:
        return 0.0


NULL_SPAN = NullSpan()


class Span:
    """One timed, attributed region of work.

    Use as a context manager (``with tracer.span("tdp.build") as sp:``);
    ``set(**attrs)`` attaches attribution (counts, hit/miss flags,
    request ids) at any point before exit.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "thread_id",
        "sampled",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        sampled: bool,
        attrs: dict,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.thread_id = 0
        self._tracer = tracer
        self._token = None

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        self.thread_id = threading.get_ident()
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._tracer._clock()
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self.sampled:
            self._tracer._record(self)
        return False

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Seconds from enter to exit (0.0 while still open)."""
        return max(0.0, self.end - self.start) if self.end else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
            f"trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, attrs={self.attrs})"
        )


class Tracer:
    """Span factory plus a bounded ring buffer of finished spans.

    ``sample`` is ``"always"`` (1.0), ``"off"`` (0.0), or a ratio in
    ``[0, 1]`` applied per root span.  ``rng`` and ``clock`` are
    injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: int = 4096,
        sample: str | float = "always",
        rng: Callable[[], float] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if capacity < 1:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.ratio = _parse_sample(sample)
        self._rng = rng or random.random
        self._clock = clock
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self.recorded = 0
        self.dropped = 0
        #: Wall-clock anchor so exporters can place the monotonic
        #: timestamps on an absolute axis.
        self.epoch_wall = time.time()
        self.epoch_perf = self._clock()

    @property
    def enabled(self) -> bool:
        return True

    def span(self, name: str, **attrs) -> Span:
        """Open a span nested under the caller's current span (if any)."""
        parent = _current_span.get()
        if parent is None or isinstance(parent, NullSpan):
            trace_id = next(self._ids)
            parent_id = None
            sampled = self.ratio >= 1.0 or (
                self.ratio > 0.0 and self._rng() < self.ratio
            )
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            sampled = parent.sampled
        return Span(
            self, name, trace_id, next(self._ids), parent_id, sampled, attrs
        )

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)
            self.recorded += 1

    def spans(self) -> list[Span]:
        """Snapshot of the ring buffer, oldest first."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Snapshot and clear the ring buffer."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
            return spans

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def stats(self) -> dict:
        with self._lock:
            buffered = len(self._spans)
        return {
            "enabled": True,
            "sample": self.ratio,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "buffered": buffered,
        }


class NullTracer:
    """Tracing disabled: every call is a constant-time no-op."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **attrs) -> NullSpan:
        return NULL_SPAN

    def spans(self) -> list:
        return []

    def drain(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def stats(self) -> dict:
        return {
            "enabled": False,
            "sample": 0.0,
            "capacity": 0,
            "recorded": 0,
            "dropped": 0,
            "buffered": 0,
        }


NULL_TRACER = NullTracer()


def _parse_sample(sample: str | float) -> float:
    if isinstance(sample, str):
        text = sample.strip().lower()
        if text in ("always", "on", "1"):
            return 1.0
        if text in ("off", "never", "0"):
            return 0.0
        try:
            sample = float(text)
        except ValueError:
            raise ValueError(
                f"trace sample must be 'off', 'always', or a ratio, got {sample!r}"
            ) from None
    ratio = float(sample)
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"trace sample ratio must be in [0, 1], got {ratio}")
    return ratio


def tracer_from_option(option: str | float | None, capacity: int = 4096):
    """Build a tracer from a CLI ``--trace-sample`` value.

    ``None``/``"off"``/``0`` yield the shared :data:`NULL_TRACER` —
    not a zero-ratio :class:`Tracer` — so the disabled path skips even
    span allocation.
    """
    if option is None:
        return NULL_TRACER
    ratio = _parse_sample(option)
    if ratio == 0.0:
        return NULL_TRACER
    return Tracer(capacity=capacity, sample=ratio)


def current_span():
    """The caller's innermost open span, or ``None``."""
    return _current_span.get()


def new_request_id() -> str:
    """A short opaque request id for edge propagation and access logs."""
    return uuid.uuid4().hex[:12]
