"""Trace and metric exporters: Chrome trace-event JSON, Prometheus text.

Chrome trace events (the ``traceEvents`` array format) load directly in
Perfetto / ``chrome://tracing``; complete events (``ph: "X"``) carry
microsecond start + duration, so nested spans render as a flame chart
per thread.  Prometheus exposition is the plain text format version
0.0.4 — flattened gauge names over the gateway's nested metrics dict —
so the existing ``GET /metrics`` endpoint can serve scrapers via
content negotiation without growing a client dependency.
"""

from __future__ import annotations

import json
import re
from typing import Iterable

from repro.obs.trace import Span, Tracer

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def chrome_trace_events(
    spans: Iterable[Span], process_name: str = "repro"
) -> list[dict]:
    """Convert finished spans to Chrome trace-event dicts.

    Timestamps are microseconds on the tracer's monotonic axis; Perfetto
    only needs them self-consistent, not absolute.  Span attributes land
    in ``args`` so attribution (core hit/miss, request ids, counts) is
    inspectable per slice in the UI.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    # Native thread idents are arbitrary large integers; two of them can
    # collide under a modulus and merge unrelated flame rows.  Map each
    # distinct ident to a small id in first-seen order instead (tid 0 is
    # the metadata row above).
    thread_ids: dict[int, int] = {}
    for span in spans:
        tid = thread_ids.setdefault(span.thread_id, len(thread_ids) + 1)
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        for key, value in span.attrs.items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                args[key] = value
            else:
                args[key] = repr(value)
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    return events


def _trace_document(
    source: "Tracer | Iterable[Span]", process_name: str
) -> tuple[str, int]:
    """Serialize spans once for both the string and file exporters."""
    spans = source.spans() if isinstance(source, Tracer) else list(source)
    events = chrome_trace_events(spans, process_name)
    document = json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"},
        separators=(",", ":"),
    )
    return document, len(events)


def chrome_trace_json(
    source: "Tracer | Iterable[Span]", process_name: str = "repro"
) -> str:
    """Full Chrome trace document as a JSON string."""
    return _trace_document(source, process_name)[0]


def write_chrome_trace(
    path: str, source: "Tracer | Iterable[Span]", process_name: str = "repro"
) -> int:
    """Write a Perfetto-loadable trace file; returns the event count."""
    document, count = _trace_document(source, process_name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return count


def _metric_name(parts: tuple[str, ...]) -> str:
    name = "_".join(_NAME_OK.sub("_", part) for part in parts)
    if name and name[0].isdigit():
        name = "_" + name
    return name.lower()


def _flatten(
    value,
    parts: tuple[str, ...],
    out: list[tuple[str, tuple[str, ...], float]],
) -> None:
    if isinstance(value, bool):
        out.append((_metric_name(parts), parts, 1.0 if value else 0.0))
    elif isinstance(value, (int, float)):
        out.append((_metric_name(parts), parts, float(value)))
    elif isinstance(value, dict):
        for key, child in value.items():
            _flatten(child, parts + (str(key),), out)
    # Strings, lists, and None have no scalar reading; scrapers get the
    # JSON form of /metrics for those.


def prometheus_text(metrics: dict, prefix: str = "repro") -> str:
    """Render a nested metrics dict as Prometheus exposition text.

    Every numeric leaf becomes a gauge named
    ``<prefix>_<path_joined_by_underscores>``; booleans map to 0/1 and
    non-numeric leaves are skipped.  Output is sorted so scrapes are
    deterministic and diff-friendly.

    Distinct dict paths can sanitize to the same metric name (e.g.
    ``{"a": {"b_c": 1}, "a_b": {"c": 2}}`` or a key that only differs
    by a scrubbed character).  Repeating a name — let alone its
    ``# TYPE`` line — is invalid exposition, so colliders are suffixed
    ``_2``, ``_3``, ... in path order: the lexicographically-smallest
    source path keeps the bare name, and the mapping is stable across
    scrapes as long as the colliding keys themselves are.
    """
    flat: list[tuple[str, tuple[str, ...], float]] = []
    _flatten(metrics, (prefix,), flat)
    if not flat:
        return ""
    flat.sort(key=lambda item: (item[0], item[1]))
    base_names = {name for name, _path, _value in flat}
    emitted: set[str] = set()
    lines: list[str] = []
    for name, _path, value in flat:
        if name in emitted:
            occurrence = 2
            while (
                f"{name}_{occurrence}" in emitted
                or f"{name}_{occurrence}" in base_names
            ):
                occurrence += 1
            name = f"{name}_{occurrence}"
        emitted.add(name)
        lines.append(f"# TYPE {name} gauge")
        if value == int(value) and abs(value) < 1e15:
            lines.append(f"{name} {int(value)}")
        else:
            lines.append(f"{name} {value}")
    return "\n".join(lines) + "\n"
