"""Observability layer: tracing, EXPLAIN ANALYZE, exporters, latency.

The running system's view of the paper's cost model:

* :mod:`repro.obs.trace` — engine-wide spans with a bounded ring
  buffer, sampling, and a near-free no-op path when tracing is off;
* :mod:`repro.obs.analyze` — ``PreparedQuery.analyze(k)``: per-stage
  wall time, OpCounter attribution, per-shard counts, and the
  TTF / TT(k) / per-answer-delay profile;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto) and
  Prometheus text exposition for ``GET /metrics``;
* :mod:`repro.obs.latency` — the shared percentile / latency-window
  implementation behind the gateway and the experiment runner;
* :mod:`repro.obs.metrics` — the typed metrics registry (counters,
  gauges, histograms, labeled families) every subsystem registers
  into, plus a promtool-style exposition validator;
* :mod:`repro.obs.profiler` — the sampling profiler behind
  ``repro profile`` (collapsed-stack output, stage attribution);
* :mod:`repro.obs.top` — the ``repro top`` operator view and the
  ``GET /debug`` status page.
"""

from repro.obs.analyze import AnalyzeReport, StageNode, analyze_prepared
from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.latency import (
    LatencyStats,
    LatencyWindow,
    delay_profile,
    percentile,
)
from repro.obs.metrics import (
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_exposition,
)
from repro.obs.profiler import SamplingProfiler, profile_call
from repro.obs.top import debug_html, render_top, run_top
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    current_span,
    new_request_id,
    tracer_from_option,
)

__all__ = [
    "AnalyzeReport",
    "StageNode",
    "analyze_prepared",
    "chrome_trace_events",
    "chrome_trace_json",
    "prometheus_text",
    "write_chrome_trace",
    "LatencyStats",
    "LatencyWindow",
    "delay_profile",
    "percentile",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
    "current_span",
    "new_request_id",
    "tracer_from_option",
    "Counter",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "validate_exposition",
    "SamplingProfiler",
    "profile_call",
    "debug_html",
    "render_top",
    "run_top",
]
