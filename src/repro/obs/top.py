"""Live operator views over the gateway's ``/metrics`` JSON document.

Two renderings of the same payload (the dict built by
``GatewayServer.metrics()``):

* :func:`render_top` — a plain-text terminal table: uptime, request and
  admission counters, fetch p50/p95/p99, memory accounting, breaker
  state, and a per-session row (served, cursors, memory, idle).
  :func:`run_top` polls the endpoint and redraws with a bare ANSI
  clear — no curses, so it works in dumb terminals, CI logs, and
  ``watch``-style pipes alike.
* :func:`debug_html` — the ``GET /debug`` status page: the same
  numbers as static HTML tables for a browser glance at a live
  deployment.

Both renderers are pure functions of the metrics dict, so tests drive
them without a socket.
"""

from __future__ import annotations

import json
import urllib.request
from typing import Any, Callable

__all__ = ["render_top", "run_top", "debug_html", "fetch_metrics"]

#: ANSI "clear screen, cursor home" — the whole redraw mechanism.
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_bytes(n: Any) -> str:
    try:
        value = float(n)
    except (TypeError, ValueError):
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - loop always returns


def _fmt_ms(ms: Any) -> str:
    if ms is None:
        return "-"
    return f"{float(ms):.2f}ms"


def _latency_cells(metrics: dict) -> tuple[str, str, str, str]:
    window = metrics.get("latency", {}).get("fetch", {}) or {}
    return (
        str(window.get("total", window.get("count", 0))),
        _fmt_ms(window.get("p50_ms")),
        _fmt_ms(window.get("p95_ms")),
        _fmt_ms(window.get("p99_ms")),
    )


def _breaker_state(metrics: dict) -> str:
    breaker = metrics.get("policy", {}).get("breaker")
    if not breaker:
        return "none"
    return (
        f"{breaker.get('state', '?')} "
        f"(opened {breaker.get('opened', 0)}, "
        f"rejected {breaker.get('rejected', 0)})"
    )


def _table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width plain-text table (left-aligned, two-space gutters)."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_top(metrics: dict) -> str:
    """One frame of the ``repro top`` display, as plain text."""
    gateway = metrics.get("gateway", {})
    policy = metrics.get("policy", {})
    memory = metrics.get("memory", {})
    count, p50, p95, p99 = _latency_cells(metrics)
    sessions = metrics.get("sessions", {})
    lines = [
        (
            f"repro top — up {metrics.get('uptime_seconds', 0):.0f}s — "
            f"http {gateway.get('http_requests', 0)} "
            f"ws {gateway.get('ws_messages', 0)} "
            f"active {gateway.get('active_requests', 0)}"
        ),
        (
            f"admission: admitted {policy.get('admitted', 0)} "
            f"throttled {policy.get('throttled', 0)} "
            f"denied {policy.get('denied_auth', 0)} "
            f"shed {policy.get('shed', 0)} — breaker {_breaker_state(metrics)}"
        ),
        (
            f"fetch latency: n={count} p50 {p50} p95 {p95} p99 {p99}"
        ),
        (
            f"memory: streams {_fmt_bytes(memory.get('stream_bytes'))} "
            f"({memory.get('stream_count', 0)} streams) "
            f"core heap {_fmt_bytes(memory.get('core_heap_bytes'))} "
            f"core mmap {_fmt_bytes(memory.get('core_mmap_bytes'))}"
        ),
        "",
    ]
    detail = sessions.get("detail", {}) or {}
    rows = [
        [
            name,
            entry.get("served", 0),
            entry.get("cursors", 0),
            _fmt_bytes(entry.get("memory_bytes")),
            f"{entry.get('idle_seconds', 0):.1f}s",
        ]
        for name, entry in sorted(detail.items())
    ]
    lines.append(
        _table(["session", "served", "cursors", "memory", "idle"], rows)
    )
    if not rows:
        lines.append("(no open sessions)")
    lines.append(
        f"\nsessions {sessions.get('session_count', 0)} "
        f"evictions {sessions.get('evictions', 0)} "
        f"expirations {sessions.get('expirations', 0)}"
    )
    return "\n".join(lines)


def fetch_metrics(url: str, token: str | None = None, timeout: float = 5.0) -> dict:
    """One JSON ``/metrics`` poll (bearer token optional)."""
    request = urllib.request.Request(url, headers={"Accept": "application/json"})
    if token:
        request.add_header("Authorization", f"Bearer {token}")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_top(
    url: str,
    interval: float = 2.0,
    iterations: int | None = None,
    token: str | None = None,
    out: Callable[[str], None] = print,
    sleep: Callable[[float], None] | None = None,
    clear: bool = True,
) -> int:
    """Poll ``url`` and redraw the top view; returns frames rendered.

    ``iterations=None`` runs until interrupted.  ``out``/``sleep`` are
    injectable so tests (and the CI smoke job) run a single frame
    without a terminal or a timer.
    """
    import time as _time

    if sleep is None:
        sleep = _time.sleep
    frames = 0
    try:
        while iterations is None or frames < iterations:
            metrics = fetch_metrics(url, token=token)
            frame = render_top(metrics)
            out((_CLEAR + frame) if clear and frames else frame)
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            sleep(interval)
    except KeyboardInterrupt:
        pass
    return frames


def _html_escape(text: Any) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _html_table(headers: list[str], rows: list[list[Any]]) -> str:
    head = "".join(f"<th>{_html_escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_html_escape(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def debug_html(metrics: dict) -> str:
    """The ``GET /debug`` status page for one metrics snapshot."""
    gateway = metrics.get("gateway", {})
    policy = metrics.get("policy", {})
    memory = metrics.get("memory", {})
    sessions = metrics.get("sessions", {})
    engine = metrics.get("engine", {})
    count, p50, p95, p99 = _latency_cells(metrics)
    overview = _html_table(
        ["metric", "value"],
        [
            ["uptime_seconds", metrics.get("uptime_seconds", 0)],
            ["http_requests", gateway.get("http_requests", 0)],
            ["ws_messages", gateway.get("ws_messages", 0)],
            ["active_requests", gateway.get("active_requests", 0)],
            ["admitted", policy.get("admitted", 0)],
            ["throttled", policy.get("throttled", 0)],
            ["denied_auth", policy.get("denied_auth", 0)],
            ["shed", policy.get("shed", 0)],
            ["breaker", _breaker_state(metrics)],
            ["fetch_count", count],
            ["fetch_p50", p50],
            ["fetch_p95", p95],
            ["fetch_p99", p99],
        ],
    )
    memory_table = _html_table(
        ["metric", "value"],
        [[key, _fmt_bytes(value) if key.endswith("bytes") else value]
         for key, value in sorted(memory.items())],
    )
    session_rows = [
        [
            name,
            entry.get("served", 0),
            entry.get("cursors", 0),
            _fmt_bytes(entry.get("memory_bytes")),
            entry.get("idle_seconds", 0),
        ]
        for name, entry in sorted((sessions.get("detail") or {}).items())
    ]
    session_table = _html_table(
        ["session", "served", "cursors", "memory", "idle (s)"], session_rows
    )
    engine_table = _html_table(
        ["counter", "value"], [[k, v] for k, v in sorted(engine.items())]
    )
    return (
        "<!DOCTYPE html><html><head><title>repro gateway</title>"
        "<style>body{font-family:monospace;margin:2em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "th,td{border:1px solid #999;padding:2px 8px;text-align:left}"
        "h2{margin-bottom:0}</style></head><body>"
        "<h1>repro gateway</h1>"
        f"<h2>overview</h2>{overview}"
        f"<h2>memory</h2>{memory_table}"
        f"<h2>sessions ({sessions.get('session_count', 0)})</h2>"
        f"{session_table}"
        f"<h2>engine</h2>{engine_table}"
        "</body></html>"
    )
