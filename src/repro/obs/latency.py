"""Shared latency summaries: percentiles, run stats, rolling windows.

One implementation serves three consumers that historically each grew
their own copy: the offline experiment runner (summarising a finished
load run), the gateway's live ``/metrics`` endpoint (percentiles over a
rolling window while requests keep arriving), and EXPLAIN ANALYZE's
per-answer delay profile (TTF / TT(k) / delay percentiles — the
paper's own cost model, Section 7).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` (nearest-rank method).

    Nearest-rank (as opposed to interpolation) reports a latency that
    some request actually experienced, the convention for serving tail
    latencies.  ``q`` is in percent, e.g. ``99`` for p99.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass
class LatencyStats:
    """Request-latency summary under (possibly concurrent) load."""

    count: int
    p50: float
    p95: float
    p99: float
    mean: float
    #: Total answers delivered across all timed requests.
    answers: int = 0
    #: Wall-clock of the whole load run (for throughput; 0 = unknown).
    elapsed: float = 0.0

    @classmethod
    def from_samples(
        cls,
        samples: list[float],
        answers: int = 0,
        elapsed: float = 0.0,
    ) -> "LatencyStats":
        """Summarise per-request latencies (seconds)."""
        return cls(
            count=len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            mean=sum(samples) / len(samples),
            answers=answers,
            elapsed=elapsed,
        )

    @property
    def answers_per_second(self) -> float:
        """Aggregate throughput across the measured window."""
        return self.answers / self.elapsed if self.elapsed > 0 else 0.0

    def row(self) -> str:
        text = (
            f"{self.count:5d} fetches  "
            f"p50={self.p50 * 1e3:8.2f} ms  "
            f"p95={self.p95 * 1e3:8.2f} ms  "
            f"p99={self.p99 * 1e3:8.2f} ms"
        )
        if self.elapsed > 0:
            text += f"  {self.answers_per_second:10.0f} answers/s"
        return text

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "p50_ms": round(self.p50 * 1e3, 3),
            "p95_ms": round(self.p95 * 1e3, 3),
            "p99_ms": round(self.p99 * 1e3, 3),
            "mean_ms": round(self.mean * 1e3, 3),
            "answers": self.answers,
            "answers_per_second": round(self.answers_per_second, 1),
        }


class LatencyWindow:
    """A rolling window of request latencies for live ``/metrics``.

    The offline path summarises a finished load run with
    :meth:`LatencyStats.from_samples`; a *serving* process instead needs
    percentiles over its recent history while requests keep arriving.
    ``record`` is O(1) (bounded deque), ``snapshot`` sorts the window on
    demand — cheap at metric-scrape frequency for the default size.
    Thread-safe: transports on different event loops share one window.
    """

    def __init__(self, maxlen: int = 2048):
        if maxlen < 1:
            raise ValueError(f"window size must be positive, got {maxlen}")
        self._samples: deque[float] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        #: Lifetime number of recorded requests (window evictions
        #: included), so rates stay meaningful past one window.
        self.total = 0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.total += 1

    def snapshot(self) -> dict:
        """Percentiles over the current window (zeros when empty)."""
        with self._lock:
            samples = list(self._samples)
            total = self.total
        if not samples:
            return {
                "count": 0,
                "total": total,
                "p50_ms": 0.0,
                "p95_ms": 0.0,
                "p99_ms": 0.0,
                "mean_ms": 0.0,
            }
        stats = LatencyStats.from_samples(samples)
        return {
            "count": stats.count,
            "total": total,
            "p50_ms": round(stats.p50 * 1e3, 3),
            "p95_ms": round(stats.p95 * 1e3, 3),
            "p99_ms": round(stats.p99 * 1e3, 3),
            "mean_ms": round(stats.mean * 1e3, 3),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


def delay_profile(delays: list[float]) -> dict:
    """Summarise per-answer delays (seconds) as the paper reads them.

    ``delays[i]`` is the gap between answer ``i`` and its predecessor
    (``delays[0]`` is TTF measured from enumeration start).  Returned
    values are microseconds for the per-answer gaps — at flat-loop
    speeds individual delays sit well under a millisecond — and
    milliseconds for the cumulative TTF/TT(k) marks.
    """
    if not delays:
        return {
            "produced": 0,
            "ttf_ms": 0.0,
            "ttk_ms": 0.0,
            "delay_p50_us": 0.0,
            "delay_p95_us": 0.0,
            "delay_p99_us": 0.0,
            "delay_max_us": 0.0,
        }
    return {
        "produced": len(delays),
        "ttf_ms": round(delays[0] * 1e3, 4),
        "ttk_ms": round(sum(delays) * 1e3, 4),
        "delay_p50_us": round(percentile(delays, 50) * 1e6, 3),
        "delay_p95_us": round(percentile(delays, 95) * 1e6, 3),
        "delay_p99_us": round(percentile(delays, 99) * 1e6, 3),
        "delay_max_us": round(max(delays) * 1e6, 3),
    }
