"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``query``    — ranked enumeration over a directory of CSV relations::

      python -m repro.cli query data/ "Q(x,z) :- R(x,y), S(y,z)" --top 5

* ``explain``  — print the evaluation plan for a query (``--analyze K``
  runs it instrumented and prints the EXPLAIN ANALYZE report: per-stage
  wall time, operation counters, and the TTF/TT(k) delay profile);
* ``trace``    — run a query under an always-sampling tracer and write
  the spans as Chrome trace-event JSON (loadable in Perfetto /
  ``chrome://tracing``)::

      python -m repro.cli trace data/ "Q(x,z) :- R(x,y), S(y,z)" --out trace.json

* ``profile``  — run a query under the sampling profiler and write
  collapsed-stack output (flamegraph-ready) plus a per-stage summary::

      python -m repro.cli profile data/ "Q(x,z) :- R(x,y), S(y,z)" --out profile.txt

* ``top``      — live operator view polling a running gateway's
  ``GET /metrics`` (sessions, latency percentiles, memory, breaker);
* ``generate`` — write one of the paper's synthetic workloads as CSV
  and/or straight into a SQLite file (``--db-path``);
* ``serve``    — start the streaming query server over a dataset::

      python -m repro.cli serve data/ --port 7654

  Clients speak the JSON-lines protocol of :mod:`repro.serve.protocol`
  (``prepare``/``fetch``/``explain``/``close``); see
  :class:`repro.serve.client.ServeClient`.

Relations are CSV files named ``<relation>.csv`` with a trailing weight
column (see :mod:`repro.data.io`).  Constants in queries (``R(x, 5)``)
are compiled into selections automatically.

Storage backends (``--backend memory|sqlite``): with ``--backend
sqlite --db-path data.db`` the query runs over a persistent SQLite
database.  An empty/missing ``.db`` file is populated once from the
CSV directory; a populated one is opened directly — the CSV directory
may then be omitted, and repeated invocations skip ingestion entirely
(the cross-process warm start).
"""

from __future__ import annotations

import argparse
import itertools
import sys

from repro.data.backend import SQLiteBackend
from repro.data.database import Database
from repro.data.io import load_database, save_database
from repro.engine import Engine
from repro.ranking.dioid import NAMED_DIOIDS

#: Kept as a module-level alias: the flag choices below and the serving
#: protocol resolve ranking functions through the same shared registry.
DIOIDS = NAMED_DIOIDS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ranked enumeration of conjunctive-query answers (any-k).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_backend_options(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--backend", default="memory",
                         choices=["memory", "sqlite"],
                         help="where relation tuples live (default: memory)")
        cmd.add_argument("--db-path", default=None, metavar="FILE",
                         help="SQLite database file (required with "
                              "--backend sqlite); ingested from the CSV "
                              "directory when empty, reused as-is otherwise")
        cmd.add_argument("--core-cache", default="auto",
                         choices=["auto", "on", "off"],
                         help="persist compiled enumeration cores next to "
                              "the SQLite file (<db>.core) and warm-start "
                              "from them (default: auto — on for "
                              "file-backed databases)")

    query_cmd = commands.add_parser("query", help="run a ranked query")
    query_cmd.add_argument("data", nargs="?", default=None,
                           help="directory of CSV relations (optional when "
                                "an already-populated --db-path is given)")
    query_cmd.add_argument("text", help="query, e.g. 'Q(x) :- R(x, y)'")
    add_backend_options(query_cmd)
    query_cmd.add_argument("--top", type=int, default=10,
                           help="number of results (default 10; 0 = all)")
    query_cmd.add_argument("--shards", type=int, default=None, metavar="N",
                           help="partition the anchor relation into N "
                                "fragments and run the parallel execution "
                                "layer (fragment T-DPs + ranked merge)")
    query_cmd.add_argument("--shard-parallel", default="auto",
                           choices=["auto", "fused", "thread", "process"],
                           help="fragment build mode with --shards "
                                "(default: auto)")
    query_cmd.add_argument("--algorithm", default="take2",
                           choices=["take2", "lazy", "eager", "all",
                                    "recursive", "batch"])
    query_cmd.add_argument("--dioid", default="tropical",
                           choices=sorted(DIOIDS))
    query_cmd.add_argument("--projection", default="all_weight",
                           choices=["all_weight", "min_weight"])
    query_cmd.add_argument("--witness", action="store_true",
                           help="also print witnesses")
    query_cmd.add_argument("--time", action="store_true",
                           help="print preprocessing vs enumeration time")
    query_cmd.add_argument("--repeat", type=int, default=1,
                           help="run the query this many times, reusing the "
                                "prepared plan (preprocessing paid once)")

    explain_cmd = commands.add_parser("explain", help="show the query plan")
    explain_cmd.add_argument("data", nargs="?", default=None,
                             help="directory of CSV relations (optional when "
                                  "an already-populated --db-path is given)")
    explain_cmd.add_argument("text", help="the query")
    add_backend_options(explain_cmd)
    explain_cmd.add_argument("--shards", type=int, default=None, metavar="N",
                             help="show the sharded plan (anchor atom, "
                                  "fragment layout, build mode)")
    explain_cmd.add_argument("--analyze", type=int, default=None, metavar="K",
                             help="EXPLAIN ANALYZE: run the query "
                                  "instrumented, enumerate the top K "
                                  "answers (0 = all), and report per-stage "
                                  "wall time, counters, and delay profile")
    explain_cmd.add_argument("--algorithm", default="take2",
                             choices=["take2", "lazy", "eager", "all",
                                      "recursive", "batch"],
                             help="any-k variant for --analyze")

    trace_cmd = commands.add_parser(
        "trace", help="run a query traced; export Chrome trace-event JSON"
    )
    trace_cmd.add_argument("data", nargs="?", default=None,
                           help="directory of CSV relations (optional when "
                                "an already-populated --db-path is given)")
    trace_cmd.add_argument("text", help="the query")
    add_backend_options(trace_cmd)
    trace_cmd.add_argument("--top", type=int, default=10,
                           help="answers to enumerate (default 10; 0 = all)")
    trace_cmd.add_argument("--out", default="trace.json", metavar="FILE",
                           help="trace-event JSON output path "
                                "(default: trace.json)")
    trace_cmd.add_argument("--shards", type=int, default=None, metavar="N",
                           help="trace the sharded (parallel) plan")
    trace_cmd.add_argument("--algorithm", default="take2",
                           choices=["take2", "lazy", "eager", "all",
                                    "recursive", "batch"])
    trace_cmd.add_argument("--dioid", default="tropical",
                           choices=sorted(DIOIDS))
    trace_cmd.add_argument("--analyze", action="store_true",
                           help="also print the EXPLAIN ANALYZE report")

    serve_cmd = commands.add_parser(
        "serve", help="start the streaming query server over a dataset"
    )
    serve_cmd.add_argument("data", nargs="?", default=None,
                           help="directory of CSV relations (optional when "
                                "an already-populated --db-path is given)")
    add_backend_options(serve_cmd)
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=7654,
                           help="TCP port (default 7654; 0 = ephemeral)")
    serve_cmd.add_argument("--max-sessions", type=int, default=64,
                           help="LRU-evict named sessions beyond this count")
    serve_cmd.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                           help="expire sessions idle for this long")
    serve_cmd.add_argument("--budget", type=int, default=None,
                           help="per-session cap on total served results")
    serve_cmd.add_argument("--slice", type=int, default=64, metavar="RESULTS",
                           help="scheduler time-slice: results enumerated "
                                "between event-loop yields (default 64)")
    serve_cmd.add_argument("--http-port", type=int, default=None, metavar="PORT",
                           help="also serve the HTTP/WebSocket gateway on "
                                "this port (0 = ephemeral; default: off)")
    serve_cmd.add_argument("--auth-token", default=None, metavar="TOKEN",
                           help="require this bearer token on every request "
                                "(TCP and HTTP alike; default: open)")
    serve_cmd.add_argument("--rate-limit", type=float, default=None,
                           metavar="REQ_PER_SEC",
                           help="per-client sustained request rate; excess "
                                "is rejected at the edge with 429/"
                                "ERR_THROTTLED (default: unlimited)")
    serve_cmd.add_argument("--burst", type=float, default=None, metavar="N",
                           help="rate-limit burst capacity (default: "
                                "max(1, rate-limit))")
    serve_cmd.add_argument("--max-frame", type=int, default=1 << 20,
                           metavar="BYTES",
                           help="largest accepted request frame (default 1MiB)")
    serve_cmd.add_argument("--trace-sample", default=None, metavar="RATIO",
                           help="trace requests through the engine: 'off' "
                                "(default), 'always', or a sample ratio in "
                                "[0,1]; spans land in a bounded ring buffer "
                                "surfaced via GET /metrics")
    serve_cmd.add_argument("--max-in-flight", type=int, default=None,
                           metavar="N",
                           help="shed fetches beyond N concurrently "
                                "executing ones with 503/ERR_OVERLOADED "
                                "(default: unlimited)")
    serve_cmd.add_argument("--breaker-threshold", type=int, default=None,
                           metavar="N",
                           help="open a circuit breaker after N consecutive "
                                "internal failures, shedding prepare/fetch "
                                "until it half-opens (default: off)")
    serve_cmd.add_argument("--breaker-reset", type=float, default=30.0,
                           metavar="SECONDS",
                           help="seconds an open breaker waits before "
                                "letting a probe request through "
                                "(default 30)")
    serve_cmd.add_argument("--drain", type=float, default=0.0,
                           metavar="SECONDS",
                           help="on shutdown, stop accepting connections "
                                "but let in-flight requests finish for up "
                                "to this long (default 0: immediate)")

    profile_cmd = commands.add_parser(
        "profile",
        help="run a query under the sampling profiler; write collapsed stacks",
    )
    profile_cmd.add_argument("data", nargs="?", default=None,
                             help="directory of CSV relations (optional when "
                                  "an already-populated --db-path is given)")
    profile_cmd.add_argument("text", help="the query")
    add_backend_options(profile_cmd)
    profile_cmd.add_argument("--top", type=int, default=10,
                             help="answers to enumerate per run "
                                  "(default 10; 0 = all)")
    profile_cmd.add_argument("--algorithm", default="take2",
                             choices=["take2", "lazy", "eager", "all",
                                      "recursive", "batch"])
    profile_cmd.add_argument("--dioid", default="tropical",
                             choices=sorted(DIOIDS))
    profile_cmd.add_argument("--repeat", type=int, default=1,
                             help="enumeration passes over the prepared plan "
                                  "(more passes = more samples)")
    profile_cmd.add_argument("--hz", type=float, default=97.0,
                             help="sampling rate (default 97)")
    profile_cmd.add_argument("--min-seconds", type=float, default=0.5,
                             metavar="S",
                             help="keep re-running the enumeration until this "
                                  "much wall time has passed, so fast queries "
                                  "still collect samples (default 0.5)")
    profile_cmd.add_argument("--out", default="profile.txt", metavar="FILE",
                             help="collapsed-stack output path "
                                  "(default: profile.txt)")

    top_cmd = commands.add_parser(
        "top", help="live operator view over a running gateway's /metrics"
    )
    top_cmd.add_argument("--url", default="http://127.0.0.1:8080/metrics",
                         help="gateway metrics endpoint "
                              "(default: http://127.0.0.1:8080/metrics)")
    top_cmd.add_argument("--interval", type=float, default=2.0,
                         help="seconds between polls (default 2)")
    top_cmd.add_argument("--iterations", type=int, default=None, metavar="N",
                         help="render N frames then exit "
                              "(default: run until interrupted)")
    top_cmd.add_argument("--token", default=None, metavar="TOKEN",
                         help="bearer token if the gateway requires auth")

    gen_cmd = commands.add_parser(
        "generate", help="write a synthetic workload as CSV and/or SQLite"
    )
    gen_cmd.add_argument("kind", choices=["uniform", "cycle-worst-case",
                                          "bitcoin-like", "twitter-like"])
    gen_cmd.add_argument("out", nargs="?", default=None,
                         help="output CSV directory (optional with --db-path)")
    gen_cmd.add_argument("--db-path", default=None, metavar="FILE",
                         help="also/instead write into this SQLite file")
    gen_cmd.add_argument("--relations", type=int, default=3)
    gen_cmd.add_argument("--tuples", type=int, default=1000)
    gen_cmd.add_argument("--seed", type=int, default=0)
    return parser


def _open_database(args: argparse.Namespace) -> Database:
    """Open the queried database per ``--backend``/``--db-path``/``data``."""
    if args.backend == "sqlite":
        if not args.db_path:
            raise SystemExit("--backend sqlite requires --db-path FILE")
        backend = SQLiteBackend(args.db_path)
        if backend.relation_names():
            # Warm start: the file already holds the dataset.
            return backend.database()
        if args.data is None:
            backend.close()
            raise SystemExit(
                f"{args.db_path}: empty database and no CSV directory given"
            )
        return load_database(args.data, backend=backend)
    if args.data is None:
        raise SystemExit("a CSV data directory is required with --backend memory")
    return load_database(args.data)


def _command_query(args: argparse.Namespace) -> int:
    import time

    engine = Engine(_open_database(args), core_cache=args.core_cache)
    limit = None if args.top == 0 else args.top
    repeats = max(1, args.repeat)
    count = 0
    for run in range(repeats):
        # prepare() inside the timed region so run 1's "preprocessing"
        # covers parse + logical planning + binding (matching the
        # runner's phase definition); later runs hit the caches.
        start = time.perf_counter()
        prepared = engine.prepare(
            args.text,
            dioid=DIOIDS[args.dioid],
            algorithm=args.algorithm,
            projection=args.projection,
            shards=args.shards,
            shard_parallel=args.shard_parallel,
        )
        prepared.bind()
        preprocess = time.perf_counter() - start
        # Answers are collected during the timed region and printed
        # after it, so run 1's enumeration time is not inflated by
        # terminal I/O relative to the print-free later runs.
        collected = []
        enum_start = time.perf_counter()
        count = 0
        for result in itertools.islice(prepared.iter(), limit):
            count += 1
            if run == 0:
                collected.append(result)
        enumeration = time.perf_counter() - enum_start
        for index, result in enumerate(collected, start=1):
            row = ", ".join(
                f"{v}={result.assignment[v]}" for v in prepared.query.head
            )
            line = f"#{index:<4} weight={result.weight}  {row}"
            if args.witness and result.witness is not None:
                line += f"  witness={result.witness}"
            print(line)
        if run == 0 and count == 0:
            print("(no results)")
        if args.time or repeats > 1:
            print(
                f"run {run + 1}: preprocessing={preprocess * 1e3:.2f} ms  "
                f"enumeration={enumeration * 1e3:.2f} ms  ({count} results)"
            )
    engine.close()
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    engine = Engine(_open_database(args), core_cache=args.core_cache)
    if args.analyze is not None:
        prepared = engine.prepare(
            args.text, algorithm=args.algorithm, shards=args.shards
        )
        k = None if args.analyze == 0 else args.analyze
        print(prepared.analyze(k).render())
        engine.close()
        return 0
    # One parse, one bind: the physical report reuses the bound T-DP's
    # statistics instead of rebuilding the plan a second time.
    print(engine.explain(args.text, shards=args.shards))
    engine.close()
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import write_chrome_trace
    from repro.obs.trace import Tracer

    tracer = Tracer(capacity=65536, sample="always")
    engine = Engine(
        _open_database(args), core_cache=args.core_cache, tracer=tracer
    )
    prepared = engine.prepare(
        args.text,
        dioid=DIOIDS[args.dioid],
        algorithm=args.algorithm,
        shards=args.shards,
    )
    k = None if args.top == 0 else args.top
    # analyze() records its run into the engine tracer, so the exported
    # trace and the printed report describe the same spans.
    report = prepared.analyze(k, tracer=tracer)
    if args.analyze:
        print(report.render())
    events = write_chrome_trace(args.out, tracer)
    print(f"wrote {events} trace events to {args.out} "
          f"(load in Perfetto or chrome://tracing)")
    engine.close()
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    from repro.obs.trace import tracer_from_option
    from repro.serve.gateway import GatewayServer
    from repro.serve.policy import AccessPolicy
    from repro.serve.server import ServeServer

    # The gateway emits one JSON line per request on this logger; give
    # it a handler so `repro serve` actually shows the access log.
    logging.basicConfig(level=logging.INFO, format="%(message)s")

    engine = Engine(
        _open_database(args),
        core_cache=args.core_cache,
        tracer=tracer_from_option(args.trace_sample),
    )
    warmed = engine.warm_start()
    # One policy object for both transports: auth + rate limits cannot
    # diverge between the TCP port and the HTTP gateway.
    policy = None
    breaker = None
    if args.breaker_threshold is not None:
        from repro.serve.resilience import CircuitBreaker

        breaker = CircuitBreaker(
            failure_threshold=args.breaker_threshold,
            reset_timeout=args.breaker_reset,
        )
    if (
        args.auth_token is not None
        or args.rate_limit is not None
        or args.max_in_flight is not None
        or breaker is not None
    ):
        policy = AccessPolicy(
            auth_token=args.auth_token,
            rate_limit=args.rate_limit,
            burst=args.burst,
            breaker=breaker,
            max_in_flight=args.max_in_flight,
        )
    server = ServeServer(
        engine,
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        ttl_seconds=args.ttl,
        result_budget=args.budget,
        slice_size=args.slice,
        policy=policy,
        max_frame_bytes=args.max_frame,
        drain_s=args.drain,
    )
    gateway = None
    if args.http_port is not None:
        # The gateway shares the TCP server's SessionManager, so a
        # session opened over one transport is visible on the other.
        gateway = GatewayServer(
            engine,
            host=args.host,
            port=args.http_port,
            manager=server.manager,
            policy=policy,
            max_frame_bytes=args.max_frame,
            drain_s=args.drain,
        )

    async def main() -> None:
        host, port = await server.start()
        relations = ", ".join(
            f"{rel.name}[{len(rel)}]" for rel in engine.database
        )
        print(f"serving {relations}")
        if warmed:
            print(f"warm-started {warmed} plan(s) from the compiled core file")
        print(f"listening on {host}:{port}  (JSON lines; ops: "
              "prepare, fetch, explain, close, stats, ping)")
        servers = [server.serve_forever()]
        if gateway is not None:
            ghost, gport = await gateway.start()
            print(f"gateway on http://{ghost}:{gport}  (POST /v1/prepare, "
                  "/v1/fetch, /v1/close; GET /metrics, /healthz, /v1/ws)")
            servers.append(gateway.serve_forever())
        if policy is not None:
            auth = "token required" if policy.auth_token else "open"
            limit = (
                f"{policy.rate_limit:g} req/s (burst {policy.burst:g})"
                if policy.rate_limit else "unlimited"
            )
            print(f"edge policy: {auth}, rate limit {limit}")
            if policy.breaker is not None or policy.max_in_flight is not None:
                parts = []
                if policy.breaker is not None:
                    parts.append(
                        f"breaker trips after "
                        f"{policy.breaker.failure_threshold} failures"
                    )
                if policy.max_in_flight is not None:
                    parts.append(
                        f"max {policy.max_in_flight} in-flight fetches"
                    )
                print(f"overload gate: {', '.join(parts)}")
        await asyncio.gather(*servers)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        engine.close()
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    import time

    from repro.obs.profiler import SamplingProfiler

    engine = Engine(_open_database(args), core_cache=args.core_cache)
    prepared = engine.prepare(
        args.text, dioid=DIOIDS[args.dioid], algorithm=args.algorithm
    )
    prepared.bind()
    limit = None if args.top == 0 else args.top
    repeats = max(1, args.repeat)
    profiler = SamplingProfiler(hz=args.hz)
    started = time.perf_counter()
    count = 0
    passes = 0
    with profiler:
        # Honour both floors: at least --repeat passes, and keep
        # looping past them until --min-seconds of wall time has been
        # sampled (fast queries would otherwise yield zero samples).
        while passes < repeats or (
            time.perf_counter() - started < args.min_seconds
        ):
            count = sum(1 for _ in itertools.islice(prepared.iter(), limit))
            passes += 1
    elapsed = time.perf_counter() - started
    with open(args.out, "w", encoding="utf-8") as handle:
        collapsed = profiler.collapsed()
        handle.write(collapsed + ("\n" if collapsed else ""))
    stages = profiler.stage_summary()
    total = sum(stages.values()) or 1
    print(f"profiled {passes} enumeration pass(es) ({count} results each) "
          f"in {elapsed:.2f}s at {args.hz:g} Hz")
    print(f"{profiler.samples} snapshots -> {args.out} (collapsed stacks)")
    for stage, tally in sorted(stages.items(), key=lambda kv: -kv[1]):
        print(f"  {stage:<10} {tally:>6}  ({100.0 * tally / total:.1f}%)")
    engine.close()
    return 0


def _command_top(args: argparse.Namespace) -> int:
    from urllib.error import URLError

    from repro.obs.top import run_top

    try:
        frames = run_top(
            args.url,
            interval=args.interval,
            iterations=args.iterations,
            token=args.token,
        )
    except URLError as exc:
        print(f"cannot reach {args.url}: {exc.reason}", file=sys.stderr)
        return 1
    return 0 if frames else 1


def _command_generate(args: argparse.Namespace) -> int:
    from repro.data.generators import (
        uniform_database,
        worst_case_cycle_database,
    )
    from repro.data.graphs import bitcoin_otc_like, twitter_like

    if args.kind == "uniform":
        database = uniform_database(args.relations, args.tuples, seed=args.seed)
    elif args.kind == "cycle-worst-case":
        database = worst_case_cycle_database(
            args.relations, args.tuples, seed=args.seed
        )
    elif args.kind == "bitcoin-like":
        database = Database(
            [bitcoin_otc_like(num_nodes=max(4, args.tuples // 6),
                              num_edges=args.tuples, seed=args.seed)]
        )
    else:
        database = Database(
            [twitter_like(num_nodes=max(4, args.tuples // 8),
                          num_edges=args.tuples, seed=args.seed)]
        )
    if args.out is None and args.db_path is None:
        raise SystemExit("generate needs an output directory and/or --db-path")
    if args.out is not None:
        save_database(database, args.out)
        print(f"wrote {len(database)} relations "
              f"({database.total_tuples()} tuples) to {args.out}")
    if args.db_path is not None:
        with SQLiteBackend(args.db_path) as backend:
            for relation in database:
                backend.ingest(relation)
        print(f"wrote {len(database)} relations "
              f"({database.total_tuples()} tuples) to {args.db_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "query":
        return _command_query(args)
    if args.command == "explain":
        return _command_explain(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "profile":
        return _command_profile(args)
    if args.command == "top":
        return _command_top(args)
    if args.command == "generate":
        return _command_generate(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
