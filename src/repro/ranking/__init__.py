"""Ranking functions captured as selective dioids (paper Sections 2.2, 6).

A *selective dioid* is a semiring ``(W, plus, times, zero, one)`` whose
``plus`` always returns one of its operands; selectivity induces a total
order on ``W`` and therefore a ranking of query results.  The library
ships the orders the paper discusses:

* :data:`TROPICAL` — ``(R∪{∞}, min, +, ∞, 0)``: rank by sum of weights,
  smallest first (the paper's running example).
* :data:`MAX_PLUS` — ``(R∪{−∞}, max, +, −∞, 0)``: heaviest result first.
* :data:`MAX_TIMES` — ``([0,∞), max, ×, 0, 1)``: e.g. bag-semantics
  multiplicities or probabilities, largest product first.
* :data:`BOOLEAN` — ``({0,1}, ∨, ∧, 0, 1)`` with the inverted order
  ``1 ≤ 0`` so that plain (unranked) evaluation falls out of the ranked
  framework (Section 6.4).
* :class:`LexicographicDioid` — vector weights compared entry-wise
  (Section 2.2 "Generality").
* :class:`TieBreakingDioid` — the Section 6.3 product construction that
  appends a canonical tie-breaking dimension so duplicate results arrive
  consecutively in UT-DP unions.
"""

from repro.ranking.dioid import (
    BOOLEAN,
    MAX_PLUS,
    MAX_TIMES,
    NAMED_DIOIDS,
    TROPICAL,
    BooleanDioid,
    LexicographicDioid,
    MaxPlusDioid,
    MaxTimesDioid,
    SelectiveDioid,
    TieBreakingDioid,
    TropicalDioid,
)
from repro.ranking.lexicographic import (
    attribute_lexicographic,
    relation_lexicographic,
)
from repro.ranking.weights import (
    attribute_weight_rewrite,
    column_weights,
    random_weights,
    unit_weights,
)

__all__ = [
    "SelectiveDioid",
    "TropicalDioid",
    "MaxPlusDioid",
    "MaxTimesDioid",
    "BooleanDioid",
    "LexicographicDioid",
    "TieBreakingDioid",
    "TROPICAL",
    "MAX_PLUS",
    "MAX_TIMES",
    "BOOLEAN",
    "NAMED_DIOIDS",
    "column_weights",
    "random_weights",
    "unit_weights",
    "attribute_weight_rewrite",
    "attribute_lexicographic",
    "relation_lexicographic",
]
