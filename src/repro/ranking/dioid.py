"""Selective dioids: the algebraic structures behind ranking functions.

Definition 3 of the paper: a selective dioid is a semiring
``(W, plus, times, zero, one)`` where ``plus`` is *selective* —
``plus(x, y)`` is always ``x`` or ``y``.  Selectivity induces a total
order (``x <= y`` iff ``plus(x, y) == x``), which is what lets priority
queues rank partial solutions.

Implementation note
-------------------
All algorithms in this library order dioid values through
:meth:`SelectiveDioid.key`, which maps a value to a plain orderable
Python object (float, tuple, ...).  ``plus`` is then simply "pick the
operand with the smaller key".  This keeps ``heapq`` and ``sorted``
directly usable, makes comparisons cheap, and guarantees selectivity by
construction.  ``times`` is the aggregation operator that combines the
weights of the input tuples of a witness (Definition 4).

Some dioids additionally have an inverse for ``times`` (they are groups,
not just monoids — Section 6.2).  Those advertise ``has_inverse = True``
and implement :meth:`SelectiveDioid.divide`; the anyK-part algorithms use
the inverse for O(1) candidate-weight derivation on tree queries and fall
back to the paper's O(l^2) recomputation otherwise.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Iterable


class SelectiveDioid(ABC):
    """Abstract selective dioid ``(W, plus, times, zero, one)``.

    Subclasses define the value domain ``W``, the aggregation ``times``,
    the order key ``key``, and the identities ``zero`` (neutral for
    ``plus``, absorbing for ``times`` — the *worst* possible weight) and
    ``one`` (neutral for ``times`` — the weight of an empty witness).
    """

    #: Whether ``times`` has an inverse (the monoid is a group).
    has_inverse: bool = False

    #: Fast-path contract (see ``repro.dp.flat``): when ``True``, the
    #: order key *carries the whole value* — keys are plain floats,
    #: ``key`` is additive over ``times`` (``key(times(a, b)) ==
    #: key(a) + key(b)`` bit-for-bit under IEEE arithmetic), and the
    #: original value is recoverable via :meth:`value_from_key`.  The
    #: compiled enumeration core then runs entirely in key space with
    #: native ``+`` / float comparison instead of ``times``/``key``
    #: dispatch.  True for the tropical min/max dioids; leave ``False``
    #: for any dioid whose key is not an additive float image (the
    #: enumerators transparently fall back to the generic path).
    key_is_value: bool = False

    @property
    @abstractmethod
    def zero(self) -> Any:
        """Neutral element of ``plus`` / absorbing element of ``times``."""

    @property
    @abstractmethod
    def one(self) -> Any:
        """Neutral element of ``times``."""

    @abstractmethod
    def times(self, a: Any, b: Any) -> Any:
        """Aggregate two weights (Definition 4)."""

    @abstractmethod
    def key(self, a: Any) -> Any:
        """Map a value to an orderable key; smaller key ranks earlier."""

    def plus(self, a: Any, b: Any) -> Any:
        """Selective addition: return the better-ranked operand."""
        return a if self.key(a) <= self.key(b) else b

    def divide(self, a: Any, b: Any) -> Any:
        """Return ``c`` with ``times(c, b) == a``; only if ``has_inverse``."""
        raise NotImplementedError(f"{type(self).__name__} has no inverse")

    def value_from_key(self, key: Any) -> Any:
        """Recover the dioid value whose order key is ``key``.

        Only meaningful when :attr:`key_is_value` is ``True``; the
        default (identity) covers dioids whose key *is* the value, e.g.
        tropical min-plus.  Dioids with an order-flipping key (max-plus
        uses ``key(a) = -a``) override this with the inverse map.
        """
        return key

    def leq(self, a: Any, b: Any) -> bool:
        """Total order induced by selectivity: ``a`` ranks no worse than ``b``."""
        return self.key(a) <= self.key(b)

    def times_all(self, values: Iterable[Any]) -> Any:
        """Fold ``times`` over ``values`` starting from ``one``."""
        acc = self.one
        for value in values:
            acc = self.times(acc, value)
        return acc

    def is_zero(self, a: Any) -> bool:
        """Whether ``a`` equals the absorbing ``zero`` element."""
        return a == self.zero

    def __repr__(self) -> str:
        return type(self).__name__


class TropicalDioid(SelectiveDioid):
    """``(R∪{∞}, min, +, ∞, 0)`` — rank by total weight, smallest first.

    This is the paper's default ranking function: the weight of an output
    tuple is the sum of its witness's input-tuple weights and results are
    returned in increasing weight order.  Addition over the reals has an
    inverse, so this dioid is a group.
    """

    has_inverse = True
    #: Keys are the values themselves: the compiled flat core applies,
    #: and because the key IS the stored value the compiled arrays are
    #: core-persistable — they round-trip through a ``<db>.core`` mmap
    #: (:mod:`repro.dp.corebuf`) with no per-process rebuild.
    key_is_value = True

    @property
    def zero(self) -> float:
        return math.inf

    @property
    def one(self) -> float:
        return 0.0

    def times(self, a: float, b: float) -> float:
        return a + b

    def key(self, a: float) -> float:
        return a

    def divide(self, a: float, b: float) -> float:
        return a - b


class MaxPlusDioid(SelectiveDioid):
    """``(R∪{−∞}, max, +, −∞, 0)`` — heaviest total weight first.

    Section 6.4: finds the "longest" paths / heaviest witnesses.
    """

    has_inverse = True
    #: ``key(a) = -a`` is an additive, invertible float image of the
    #: value (IEEE negation is exact), so the flat key-space core applies
    #: and, like the tropical dioid, is core-persistable: negation is
    #: deterministic and bit-exact, so mmap-loaded arrays reproduce a
    #: fresh compile byte-for-byte.
    key_is_value = True

    @property
    def zero(self) -> float:
        return -math.inf

    @property
    def one(self) -> float:
        return 0.0

    def times(self, a: float, b: float) -> float:
        return a + b

    def key(self, a: float) -> float:
        return -a

    def divide(self, a: float, b: float) -> float:
        return a - b

    def value_from_key(self, key: float) -> float:
        return -key


class MaxTimesDioid(SelectiveDioid):
    """``([0,∞), max, ×, 0, 1)`` — largest product first.

    Section 6.4: with tuple weights equal to input multiplicities this
    simulates bag semantics, returning the highest-multiplicity output
    first; with probabilities it returns the most probable witness.
    ``times`` has no inverse on all of ``[0, ∞)`` (zero is not
    invertible), so this dioid advertises ``has_inverse = False``.
    """

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def times(self, a: float, b: float) -> float:
        return a * b

    def key(self, a: float) -> float:
        return -a


class BooleanDioid(SelectiveDioid):
    """``({False, True}, ∨, ∧, False, True)`` with inverted order ``1 ≤ 0``.

    Section 6.4: ranking by this dioid with the inverted order makes every
    satisfied witness compare equal (all weights are ``True``), so ranked
    enumeration degenerates to plain query evaluation; priority-queue
    maintenance on single-valued keys costs effectively constant time.
    Conjunction has no inverse (Example 17).
    """

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def times(self, a: bool, b: bool) -> bool:
        return a and b

    def key(self, a: bool) -> int:
        # Inverted order: True (1) ranks before False (0).
        return 0 if a else 1


class LexicographicDioid(SelectiveDioid):
    """Vector weights under element-wise addition, compared lexicographically.

    Section 2.2 ("Generality"): to order results lexicographically by
    their per-relation local weights, give the tuple of relation ``j`` the
    vector weight ``(0, ..., w'(r), ..., 0)`` (non-zero only at position
    ``j``).  ``times`` is element-wise vector addition (a group), and the
    induced order is the lexicographic order on the composed vectors.
    """

    has_inverse = True

    def __init__(self, dimensions: int):
        if dimensions < 1:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self._zero = (math.inf,) * dimensions
        self._one = (0.0,) * dimensions

    @property
    def zero(self) -> tuple:
        return self._zero

    @property
    def one(self) -> tuple:
        return self._one

    def times(self, a: tuple, b: tuple) -> tuple:
        return tuple(x + y for x, y in zip(a, b))

    def key(self, a: tuple) -> tuple:
        return a

    def divide(self, a: tuple, b: tuple) -> tuple:
        return tuple(x - y for x, y in zip(a, b))

    def unit_vector(self, position: int, weight: float) -> tuple:
        """Weight vector for a tuple of relation ``position`` (0-based)."""
        vec = [0.0] * self.dimensions
        vec[position] = weight
        return tuple(vec)

    def __repr__(self) -> str:
        return f"LexicographicDioid({self.dimensions})"


# Sentinel used by TieBreakingDioid for a variable not bound yet.  An
# empty tuple compares strictly below any one-tuple, giving partial
# assignments a well-defined lexicographic position.
_UNBOUND: tuple = ()


class TieBreakingDioid(SelectiveDioid):
    """Section 6.3: product of a base dioid with a canonical tie-breaker.

    Values are pairs ``(base_value, ids)`` where ``ids`` is a vector with
    one slot per query variable (in a fixed global order).  Each slot is
    either the empty tuple (variable not bound by this partial witness)
    or a one-tuple ``(value,)``.  ``times`` aggregates the base weights
    and merges the id vectors; the order key is
    ``(base_key, ids)`` compared lexicographically.

    Because a *full* solution's id vector is exactly its output
    assignment in global variable order, two identical output tuples
    produced by different trees of a decomposition receive identical
    keys, and any two distinct outputs receive distinct keys.  Hence
    duplicates arrive consecutively from the UT-DP union enumerator and
    can be eliminated on the fly with O(1) look-behind.

    ``times`` is only ever applied to *compatible* operands (partial
    witnesses that agree on shared variables), which is all the ranked
    enumeration algorithms require.
    """

    def __init__(self, base: SelectiveDioid, num_variables: int):
        self.base = base
        self.num_variables = num_variables
        self._one = (base.one, (_UNBOUND,) * num_variables)
        self._zero = (base.zero, (_UNBOUND,) * num_variables)

    @property
    def zero(self) -> tuple:
        return self._zero

    @property
    def one(self) -> tuple:
        return self._one

    def times(self, a: tuple, b: tuple) -> tuple:
        base_value = self.base.times(a[0], b[0])
        ids = tuple(
            y if x is _UNBOUND or x == _UNBOUND else x
            for x, y in zip(a[1], b[1])
        )
        return (base_value, ids)

    def key(self, a: tuple) -> tuple:
        return (self.base.key(a[0]), a[1])

    def lift(self, base_value: Any, bindings: dict[int, Any]) -> tuple:
        """Wrap ``base_value`` binding variable positions to values."""
        ids = [_UNBOUND] * self.num_variables
        for position, value in bindings.items():
            ids[position] = (value,)
        return (base_value, tuple(ids))

    def base_value(self, a: tuple) -> Any:
        """Recover the first (true weight) dimension (Section 6.3)."""
        return a[0]

    def __repr__(self) -> str:
        return f"TieBreakingDioid({self.base!r}, m={self.num_variables})"


#: Shared default instances (the dioids are stateless).
TROPICAL = TropicalDioid()
MAX_PLUS = MaxPlusDioid()
MAX_TIMES = MaxTimesDioid()
BOOLEAN = BooleanDioid()


def _named_dioid(name: str) -> "SelectiveDioid":
    """Pickle hook: resolve a registry name back to the shared instance.

    The engine keys plan caches on dioid *identity*, so a dioid that
    crosses a process boundary (the parallel preprocessor's worker pool
    pickles fragment T-DPs back to the parent) must unpickle to the very
    singleton the registry hands out — not to a fresh equal-but-distinct
    instance.
    """
    return NAMED_DIOIDS[name]


def _install_singleton_reduce() -> None:
    # Registered after NAMED_DIOIDS below; every stateless shared
    # instance round-trips through its canonical registry name.
    canonical = {
        id(TROPICAL): "tropical",
        id(MAX_PLUS): "max-plus",
        id(MAX_TIMES): "max-times",
        id(BOOLEAN): "boolean",
    }

    def reduce(self):
        name = canonical.get(id(self))
        if name is None:
            # A user-constructed instance: these classes are stateless,
            # so an equal fresh instance is a faithful round trip.
            return (type(self), ())
        return (_named_dioid, (name,))

    for cls in (TropicalDioid, MaxPlusDioid, MaxTimesDioid, BooleanDioid):
        cls.__reduce__ = reduce

#: Name -> shared instance, for surfaces that take the ranking function
#: as a string (the CLI flags and the serving wire protocol).  Sharing
#: one registry matters beyond convenience: the engine's plan-cache key
#: uses dioid *identity*, so every name must resolve to the same object
#: on every request.
NAMED_DIOIDS: dict[str, SelectiveDioid] = {
    "tropical": TROPICAL,
    "min-sum": TROPICAL,
    "max-plus": MAX_PLUS,
    "max-sum": MAX_PLUS,
    "max-times": MAX_TIMES,
    "boolean": BOOLEAN,
}

_install_singleton_reduce()
