"""Weight assignment helpers (Definition 4 and Section 6.1).

The ranking function aggregates *input tuple* weights.  Relations store a
weight per tuple (see :class:`repro.data.relation.Relation`); this module
provides the common ways of producing those weights:

* :func:`unit_weights` — all ones (counting / Boolean experiments),
* :func:`column_weights` — weight equals a column's value (the paper's
  running Example 6 sets weight = tuple label),
* :func:`random_weights` — uniform reals, the synthetic-workload default
  (the paper draws from ``[0, 10000]``),
* :func:`attribute_weight_rewrite` — the Section 6.1 rewriting that turns
  weights on *attributes* into extra unary atoms with weights on tuples.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence


def unit_weights(count: int) -> list[float]:
    """``count`` unit weights (neutral under the tropical dioid's times)."""
    return [1.0] * count


def column_weights(tuples: Sequence[tuple], column: int) -> list[float]:
    """Weight each tuple by the value in ``column`` (Example 6)."""
    return [float(t[column]) for t in tuples]


def random_weights(
    count: int,
    rng: random.Random,
    low: float = 0.0,
    high: float = 10_000.0,
) -> list[float]:
    """Uniform random weights in ``[low, high]`` (the paper's synthetic setup)."""
    return [rng.uniform(low, high) for _ in range(count)]


def attribute_weight_rewrite(
    database: "Database",
    query: "ConjunctiveQuery",
    attribute_weights: dict[str, Callable[[Any], float]],
):
    """Rewrite attribute weights into unary relations (Section 6.1).

    For every variable ``x`` with a weight function ``f`` in
    ``attribute_weights``, add a unary relation ``W_x`` containing the
    active domain of ``x`` with tuple weights ``f(value)``, and extend the
    query with the atom ``W_x(x)``.  The rewritten (still full) query ranks
    results by the combined tuple *and* attribute weights, as in
    Example 16.

    Returns the pair ``(new_database, new_query)``; the inputs are left
    untouched.
    """
    from repro.data.database import Database
    from repro.data.relation import Relation
    from repro.query.atom import Atom
    from repro.query.cq import ConjunctiveQuery

    new_relations = dict(database.relations)
    new_atoms = list(query.atoms)
    for var, weight_fn in sorted(attribute_weights.items()):
        if var not in query.variables:
            raise ValueError(f"unknown query variable {var!r}")
        domain: set = set()
        for atom in query.atoms:
            if var not in atom.variables:
                continue
            position = atom.variables.index(var)
            relation = database[atom.relation_name]
            domain.update(t[position] for t in relation.tuples)
        values = sorted(domain)
        name = f"__attr_weight_{var}"
        new_relations[name] = Relation(
            name,
            arity=1,
            tuples=[(v,) for v in values],
            weights=[float(weight_fn(v)) for v in values],
        )
        new_atoms.append(Atom(name, (var,)))
    rewritten = ConjunctiveQuery(
        head=query.head, atoms=tuple(new_atoms), name=query.name
    )
    return Database(new_relations), rewritten
