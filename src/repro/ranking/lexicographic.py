"""Convenience constructors for lexicographic rankings (Section 2.2).

The paper shows two lexicographic orders expressible as selective
dioids over vector weights:

* **by relation** — compare results on their R1 tuple's weight first,
  then R2's, and so on (the Section 2.2 "Generality" construction);
* **by attribute** — compare results on the values of chosen variables
  in a chosen priority order (the factorized-database comparison of
  Section 9.1.2 / Fig 18).

Both reduce to a :class:`~repro.ranking.dioid.LexicographicDioid` plus
a weight *lift* for :func:`repro.dp.builder.build_tdp`; these helpers
build the pair so callers need one line instead of a hand-written lift.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import LexicographicDioid


def relation_lexicographic(
    query: ConjunctiveQuery,
) -> tuple[LexicographicDioid, Callable]:
    """Rank by (w(r1), w(r2), ..., w(rl)) compared lexicographically.

    Atom order follows the query body.  Returns ``(dioid, lift)`` for
    ``build_tdp``; each tuple's weight becomes a unit vector with its
    stored weight at the atom's position.
    """
    dimensions = query.num_atoms
    dioid = LexicographicDioid(dimensions)
    position_of_atom = {id(atom): i for i, atom in enumerate(query.atoms)}

    def lift(atom, _values, raw_weight):
        position = position_of_atom.get(id(atom))
        if position is None:
            # Derived atoms (e.g. projections) carry no weight of their own.
            return dioid.one
        return dioid.unit_vector(position, raw_weight)

    return dioid, lift


def attribute_lexicographic(
    query: ConjunctiveQuery,
    order: Sequence[str],
) -> tuple[LexicographicDioid, Callable]:
    """Rank output tuples lexicographically by variable values.

    ``order`` lists variables by priority (e.g. ``["A", "C", "B"]`` for
    Fig 18's pathological order).  Each variable's value is contributed
    exactly once — by the first atom (in body order) containing it — so
    the composed vector of a full solution is precisely the output's
    value vector in priority order.  Values must be numeric (vector
    weights add element-wise).
    """
    missing = set(order) - set(query.variables)
    if missing:
        raise ValueError(f"unknown variables in order: {sorted(missing)}")
    if len(set(order)) != len(order):
        raise ValueError("order must not repeat variables")
    dioid = LexicographicDioid(len(order))
    priority = {var: i for i, var in enumerate(order)}

    # First atom (body order) responsible for contributing each variable.
    contributor: dict[tuple[int, str], int] = {}
    owned: dict[int, list[tuple[int, int]]] = {}
    for atom_index, atom in enumerate(query.atoms):
        for position, var in enumerate(atom.variables):
            if var in priority and var not in contributor:
                contributor[var] = atom_index  # type: ignore[index]
                owned.setdefault(atom_index, []).append(
                    (position, priority[var])
                )
    atom_index_of = {id(atom): i for i, atom in enumerate(query.atoms)}

    def lift(atom, values, _raw_weight):
        atom_index = atom_index_of.get(id(atom))
        slots = owned.get(atom_index, ())
        vector = [0.0] * len(order)
        for position, dim in slots:
            vector[dim] = float(values[position])
        return tuple(vector)

    return dioid, lift
