"""Conjunctive queries and their structural properties."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.query.atom import Atom


class ConjunctiveQuery:
    """A conjunctive query ``Q(head) :- atom1, ..., atoml``.

    The query is *full* when the head lists every body variable; ranked
    enumeration is optimal for full CQs (the paper's focus), while
    non-full queries go through the projection semantics of Section 8.1.
    """

    __slots__ = ("name", "head", "atoms", "_variables")

    def __init__(
        self,
        head: Sequence[str] | None,
        atoms: Iterable[Atom],
        name: str = "Q",
    ):
        self.name = name
        self.atoms: tuple[Atom, ...] = tuple(atoms)
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        # Variables ordered by first appearance in the body.
        ordered: list[str] = []
        seen: set[str] = set()
        for atom in self.atoms:
            for var in atom.variables:
                if var not in seen:
                    seen.add(var)
                    ordered.append(var)
        self._variables: tuple[str, ...] = tuple(ordered)
        if head is None:
            head = ordered
        self.head: tuple[str, ...] = tuple(head)
        missing = set(self.head) - seen
        if missing:
            raise ValueError(f"head variables {sorted(missing)} not in body")
        if len(set(self.head)) != len(self.head):
            raise ValueError("head variables must be distinct")

    # -- structural properties -------------------------------------------------

    @property
    def variables(self) -> tuple[str, ...]:
        """All body variables, ordered by first appearance."""
        return self._variables

    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    def is_full(self) -> bool:
        """Whether every body variable is returned (no projection)."""
        return set(self.head) == set(self._variables)

    def existential_variables(self) -> tuple[str, ...]:
        """Body variables projected away (empty for full queries)."""
        head = set(self.head)
        return tuple(v for v in self._variables if v not in head)

    def has_self_joins(self) -> bool:
        """Whether some relation appears in more than one atom."""
        names = [atom.relation_name for atom in self.atoms]
        return len(set(names)) != len(names)

    def relation_names(self) -> tuple[str, ...]:
        return tuple(atom.relation_name for atom in self.atoms)

    def hypergraph(self):
        """The query hypergraph (variables = nodes, atoms = edges)."""
        from repro.query.hypergraph import Hypergraph

        return Hypergraph(
            nodes=self._variables,
            edges=[atom.variable_set() for atom in self.atoms],
        )

    def is_acyclic(self) -> bool:
        """Alpha-acyclicity via the GYO reduction (Section 2.1)."""
        return self.hypergraph().is_acyclic()

    def is_free_connex(self) -> bool:
        """Free-connex acyclicity (Section 8.1).

        The query must be acyclic and remain acyclic after adding a
        hyperedge covering the head variables.
        """
        from repro.query.hypergraph import Hypergraph

        if not self.is_acyclic():
            return False
        edges = [atom.variable_set() for atom in self.atoms]
        edges.append(frozenset(self.head))
        return Hypergraph(nodes=self._variables, edges=edges).is_acyclic()

    # -- identity ---------------------------------------------------------------

    def canonical(self) -> tuple:
        """Stable, hashable description of the query's semantics.

        Covers the head and the atom sequence (relation names + variable
        lists) — everything equality considers; the display ``name`` is
        deliberately excluded so renamed copies of the same query compare
        and fingerprint identically.
        """
        return (self.head, tuple(atom.canonical() for atom in self.atoms))

    def fingerprint(self) -> str:
        """A stable hex digest identifying the query across processes.

        Two queries have equal fingerprints iff they are ``==``; unlike
        ``hash()`` the digest does not depend on ``PYTHONHASHSEED``, so
        it is usable as a persistent plan-cache key (the engine keys its
        prepared-query cache on it).
        """
        import hashlib

        payload = repr(self.canonical()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:32]

    # -- misc -------------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self.head == other.head and self.atoms == other.atoms

    def __hash__(self) -> int:
        return hash((self.head, self.atoms))

    def __repr__(self) -> str:
        body = ", ".join(repr(atom) for atom in self.atoms)
        return f"{self.name}({', '.join(self.head)}) :- {body}"
