"""Query atoms: one relational predicate occurrence in a CQ body."""

from __future__ import annotations

from typing import Iterable


class Atom:
    """An atom ``R(x1, ..., xk)``: a relation name plus a variable list.

    Different atoms may refer to the same physical relation (self-joins).
    Repeated variables inside one atom (e.g. ``R(x, x)``) encode an
    equality selection; the DP builder applies it while scanning the
    relation, matching the paper's remark that selections can be pushed
    into an O(n) preprocessing step.
    """

    __slots__ = ("relation_name", "variables")

    def __init__(self, relation_name: str, variables: Iterable[str]):
        self.relation_name = relation_name
        self.variables = tuple(variables)
        if not self.variables:
            raise ValueError(f"atom {relation_name} must have at least one variable")

    @property
    def arity(self) -> int:
        return len(self.variables)

    def variable_set(self) -> frozenset[str]:
        """The set of variables (collapsing repeats)."""
        return frozenset(self.variables)

    def has_repeated_variables(self) -> bool:
        return len(set(self.variables)) != len(self.variables)

    def positions_of(self, variables: Iterable[str]) -> tuple[int, ...]:
        """First position of each requested variable within this atom."""
        return tuple(self.variables.index(v) for v in variables)

    def satisfies_repeats(self, values: tuple) -> bool:
        """Check the implicit equality selection of repeated variables."""
        first_seen: dict[str, object] = {}
        for var, value in zip(self.variables, values):
            previous = first_seen.setdefault(var, value)
            if previous != value:
                return False
        return True

    def canonical(self) -> tuple:
        """Stable, hashable description used by query fingerprints."""
        return (self.relation_name, self.variables)

    def __eq__(self, other):
        if not isinstance(other, Atom):
            return NotImplemented
        return (
            self.relation_name == other.relation_name
            and self.variables == other.variables
        )

    def __hash__(self) -> int:
        return hash((self.relation_name, self.variables))

    def __repr__(self) -> str:
        return f"{self.relation_name}({', '.join(self.variables)})"
