"""Conjunctive-query representation (Section 2.1).

A full CQ ``Q(x) :- R1(x1), ..., Rl(xl)`` is a set of atoms over
variables; the associated hypergraph (variables = nodes, atoms =
hyperedges) determines acyclicity via the GYO reduction, which also
yields the join tree that the T-DP construction consumes.
"""

from repro.query.atom import Atom
from repro.query.builders import cycle_query, path_query, star_query
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import Hypergraph, gyo_reduction
from repro.query.jointree import JoinTree, build_join_tree
from repro.query.parser import parse_query

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Hypergraph",
    "gyo_reduction",
    "JoinTree",
    "build_join_tree",
    "parse_query",
    "path_query",
    "star_query",
    "cycle_query",
]
