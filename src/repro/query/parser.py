"""A small Datalog-style query parser.

Accepts the notation the paper uses, e.g.::

    Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3)

The head may be omitted (``R1(x1,x2), R2(x2,x3)``), in which case the
query is full: every body variable is returned in order of appearance.
Variable tokens are identifiers; the same relation name may appear in
several atoms (self-joins).
"""

from __future__ import annotations

import re

from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)\s*")


def _parse_atom_list(text: str) -> list[tuple[str, tuple[str, ...]]]:
    atoms: list[tuple[str, tuple[str, ...]]] = []
    position = 0
    while position < len(text):
        match = _ATOM_RE.match(text, position)
        if not match:
            raise ValueError(f"cannot parse atom at: {text[position:]!r}")
        name = match.group(1)
        args = tuple(
            token.strip() for token in match.group(2).split(",") if token.strip()
        )
        atoms.append((name, args))
        position = match.end()
        if position < len(text):
            if text[position] != ",":
                raise ValueError(
                    f"expected ',' between atoms at: {text[position:]!r}"
                )
            position += 1
    return atoms


def parse_query(text: str, name: str | None = None) -> ConjunctiveQuery:
    """Parse ``"Q(x,y) :- R(x,z), S(z,y)"`` into a :class:`ConjunctiveQuery`."""
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        head_parts = _parse_atom_list(head_text)
        if len(head_parts) != 1:
            raise ValueError("query head must be a single atom")
        head_name, head_vars = head_parts[0]
        head: tuple[str, ...] | None = head_vars
    else:
        body_text = text
        head_name = name or "Q"
        head = None
    body = _parse_atom_list(body_text)
    if not body:
        raise ValueError("query body is empty")
    identifier = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
    for rel, args in body:
        for token in args:
            if not identifier.match(token):
                raise ValueError(
                    f"{token!r} in atom {rel} is not a variable; for "
                    "constants use repro.query.selections.prepare()"
                )
    atoms = [Atom(rel, list(args)) for rel, args in body]
    for atom in atoms:
        if atom.arity == 0:
            raise ValueError(f"atom {atom.relation_name} has no variables")
    return ConjunctiveQuery(head=head, atoms=atoms, name=name or head_name)
