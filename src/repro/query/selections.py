"""Constants in queries, compiled away by preprocessing (Section 2.1).

The paper assumes w.l.o.g. that atoms carry no selection conditions
("selection conditions can always be applied directly to the tables in
a preprocessing step that takes O(n)").  This module makes that remark
operational: :func:`parse_query_with_constants` accepts atoms like
``R(x, 5)`` or ``R(x, 'paris')``, returning a constant-free query plus
the selection conditions, and :func:`apply_selections` materialises the
filtered per-atom relations.  :func:`prepare` bundles both.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.data.database import Database
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import _parse_atom_list

_QUOTED = re.compile(r"""^(['"])(.*)\1$""")


@dataclass(frozen=True)
class SelectionCondition:
    """One equality selection: atom's column ``position`` equals ``value``."""

    atom_index: int
    position: int
    value: Any


def _classify_token(token: str) -> tuple[bool, Any]:
    """Return ``(is_constant, value)`` for one atom argument token."""
    match = _QUOTED.match(token)
    if match:
        return True, match.group(2)
    try:
        return True, int(token)
    except ValueError:
        pass
    try:
        return True, float(token)
    except ValueError:
        pass
    if not re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", token):
        raise ValueError(f"cannot parse atom argument {token!r}")
    return False, token


def parse_query_with_constants(
    text: str, name: str | None = None
) -> tuple[ConjunctiveQuery, list[SelectionCondition]]:
    """Parse a query whose atoms may contain constant arguments.

    Constant positions are replaced by fresh variables (``_c<i>_<j>``);
    when the query has no explicit head, the head lists only the
    *user-written* variables, so constants never leak into answers.
    """
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        head_parts = _parse_atom_list(head_text)
        if len(head_parts) != 1:
            raise ValueError("query head must be a single atom")
        head_name, head_vars = head_parts[0]
        head: tuple[str, ...] | None = head_vars
    else:
        body_text = text
        head_name = name or "Q"
        head = None

    selections: list[SelectionCondition] = []
    atoms: list[Atom] = []
    seen_vars: list[str] = []
    for atom_index, (rel, args) in enumerate(_parse_atom_list(body_text)):
        variables: list[str] = []
        for position, token in enumerate(args):
            is_constant, value = _classify_token(token)
            if is_constant:
                fresh = f"_c{atom_index}_{position}"
                variables.append(fresh)
                selections.append(
                    SelectionCondition(atom_index, position, value)
                )
            else:
                variables.append(token)
                if token not in seen_vars:
                    seen_vars.append(token)
        atoms.append(Atom(rel, variables))
    if head is None:
        head = tuple(seen_vars)
    for var in head:
        if var.startswith("_c"):
            raise ValueError("head variables cannot be constants")
    query = ConjunctiveQuery(head=head, atoms=atoms, name=name or head_name)
    return query, selections


def rewrite_for_selections(
    query: ConjunctiveQuery,
    selections: list[SelectionCondition],
) -> ConjunctiveQuery:
    """Rewrite selected atoms to their derived relation names (pure).

    The renaming is deterministic (``<name>__sel<atom_index>``) and
    database-independent, so the engine can plan over the rewritten
    query before any data is filtered.
    """
    if not selections:
        return query
    new_atoms = list(query.atoms)
    for atom_index in {c.atom_index for c in selections}:
        atom = query.atoms[atom_index]
        derived_name = f"{atom.relation_name}__sel{atom_index}"
        new_atoms[atom_index] = Atom(derived_name, atom.variables)
    return ConjunctiveQuery(head=query.head, atoms=new_atoms, name=query.name)


def filter_database(
    database: Database,
    query: ConjunctiveQuery,
    selections: list[SelectionCondition],
) -> Database:
    """Materialise the filtered per-atom relations (the O(n) data work).

    ``query`` is the *original* (pre-rewrite) query; the derived
    relations carry the names :func:`rewrite_for_selections` expects.
    Each atom with conditions gets its own filtered copy, so self-joins
    with different selections stay independent.
    """
    if not selections:
        return database
    by_atom: dict[int, list[SelectionCondition]] = {}
    for condition in selections:
        by_atom.setdefault(condition.atom_index, []).append(condition)

    new_relations = dict(database.relations)
    for atom_index, conditions in by_atom.items():
        atom = query.atoms[atom_index]
        base = database[atom.relation_name]
        required = {c.position: c.value for c in conditions}

        def keep(values, required=required):
            return all(values[p] == v for p, v in required.items())

        derived_name = f"{atom.relation_name}__sel{atom_index}"
        new_relations[derived_name] = base.filter(keep, name=derived_name)
    return Database(new_relations)


def apply_selections(
    database: Database,
    query: ConjunctiveQuery,
    selections: list[SelectionCondition],
) -> tuple[Database, ConjunctiveQuery]:
    """Filter the selected atoms' relations; rewrite the query to use them.

    O(n) total, as the paper promises.  Composition of
    :func:`filter_database` and :func:`rewrite_for_selections`.
    """
    if not selections:
        return database, query
    return (
        filter_database(database, query, selections),
        rewrite_for_selections(query, selections),
    )


def prepare(
    database: Database, text: str, name: str | None = None
) -> tuple[Database, ConjunctiveQuery]:
    """Parse a query with constants and preprocess the database for it.

    Usage::

        db2, query = prepare(db, "Q(x) :- R(x, 5), S(5, x)")
        results = ranked_enumerate(db2, query)
    """
    query, selections = parse_query_with_constants(text, name=name)
    return apply_selections(database, query, selections)
