"""Builders for the query shapes of the experiments (Example 2, Section 7).

* :func:`path_query` — ``QPl(x) :- R1(x1,x2), ..., Rl(xl, xl+1)``
* :func:`star_query` — all atoms share the centre variable ``x1``
* :func:`cycle_query` — ``QCl(x) :- R1(x1,x2), ..., Rl(xl, x1)``

Pass ``relation=`` to evaluate the pattern as a self-join over a single
edge relation (the real-graph experiments join the ``E`` relation with
itself l times).
"""

from __future__ import annotations

from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery


def _relation_name(i: int, relation: str | None) -> str:
    return relation if relation is not None else f"R{i}"


def path_query(length: int, relation: str | None = None) -> ConjunctiveQuery:
    """The l-path query of Example 2 (the simplest acyclic query)."""
    if length < 1:
        raise ValueError("path length must be at least 1")
    atoms = [
        Atom(_relation_name(i, relation), (f"x{i}", f"x{i + 1}"))
        for i in range(1, length + 1)
    ]
    return ConjunctiveQuery(head=None, atoms=atoms, name=f"QP{length}")


def star_query(size: int, relation: str | None = None) -> ConjunctiveQuery:
    """The l-star query: every atom shares the centre variable ``x1``.

    Mirrors the paper's star SQL (``R1.A1 = R2.A1 = ...``): atom ``i`` is
    ``Ri(x1, yi)``, a typical data-warehouse join shape and the extreme
    shallow case for tree-based DP.
    """
    if size < 1:
        raise ValueError("star size must be at least 1")
    atoms = [
        Atom(_relation_name(i, relation), ("x1", f"y{i}"))
        for i in range(1, size + 1)
    ]
    return ConjunctiveQuery(head=None, atoms=atoms, name=f"QS{size}")


def cycle_query(length: int, relation: str | None = None) -> ConjunctiveQuery:
    """The l-cycle query of Example 2 (the simplest cyclic query, l >= 3)."""
    if length < 3:
        raise ValueError("cycles need at least three atoms")
    atoms = [
        Atom(_relation_name(i, relation), (f"x{i}", f"x{i % length + 1}"))
        for i in range(1, length + 1)
    ]
    return ConjunctiveQuery(head=None, atoms=atoms, name=f"QC{length}")
