"""Join trees of acyclic conjunctive queries.

A join tree has one node per atom; for every variable, the atoms
containing it form a connected subtree (running intersection property).
The GYO elimination order yields such a tree directly: each removed ear
becomes the child of its witness.  Disconnected queries (Cartesian
products) give a *forest*; we attach every component root below a
virtual root, which matches the T-DP construction's single start stage
``S0 = {s0}``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import gyo_reduction


class JoinTree:
    """A rooted join forest over the atoms of an acyclic CQ.

    ``parent[i]`` is the parent atom index of atom ``i`` or ``-1`` when
    atom ``i`` hangs off the virtual root.  ``order`` serialises the
    atoms parents-first (Section 5.1's tree order), which is the stage
    order of the T-DP construction.
    """

    __slots__ = ("query", "parent", "order")

    def __init__(self, query: ConjunctiveQuery, parent: Sequence[int]):
        self.query = query
        self.parent = list(parent)
        if len(self.parent) != len(query.atoms):
            raise ValueError("parent array must have one entry per atom")
        self.order = self._serialize()

    def _serialize(self) -> list[int]:
        children: dict[int, list[int]] = {i: [] for i in range(-1, len(self.parent))}
        for child, parent in enumerate(self.parent):
            children[parent].append(child)
        order: list[int] = []
        stack = sorted(children[-1], reverse=True)
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(sorted(children[node], reverse=True))
        if len(order) != len(self.parent):
            raise ValueError("parent array contains a cycle")
        return order

    # -- structure accessors ----------------------------------------------------

    def children(self, node: int) -> list[int]:
        """Child atom indexes of ``node`` (use -1 for the virtual root)."""
        return [c for c, p in enumerate(self.parent) if p == node]

    def roots(self) -> list[int]:
        """Atoms directly below the virtual root (one per component)."""
        return self.children(-1)

    def shared_variables(self, child: int) -> tuple[str, ...]:
        """Variables a child atom shares with its parent (the join key).

        Sorted for determinism; empty for component roots (Cartesian
        product with the rest of the query).
        """
        parent = self.parent[child]
        if parent == -1:
            return ()
        child_vars = self.query.atoms[child].variable_set()
        parent_vars = self.query.atoms[parent].variable_set()
        return tuple(sorted(child_vars & parent_vars))

    def depth(self, node: int) -> int:
        """Number of edges between ``node`` and the virtual root."""
        depth = 0
        while self.parent[node] != -1:
            node = self.parent[node]
            depth += 1
        return depth + 1

    def is_path(self) -> bool:
        """Whether the forest is a single chain (serial DP applies)."""
        root_count = len(self.roots())
        if root_count != 1:
            return False
        return all(len(self.children(i)) <= 1 for i in range(len(self.parent)))

    def validate(self) -> None:
        """Assert the running intersection property (defensive check)."""
        for var in self.query.variables:
            holders = [
                i
                for i, atom in enumerate(self.query.atoms)
                if var in atom.variable_set()
            ]
            # The atoms containing var must form a connected subtree.
            holder_set = set(holders)
            for node in holders:
                parent = self.parent[node]
                if parent == -1:
                    continue
                # Walk up until we meet another holder or the root; every
                # node on the way must also contain var for connectivity.
                walker = parent
                while walker != -1 and walker not in holder_set:
                    walker = self.parent[walker]
                if walker == -1:
                    continue
                walker = parent
                while walker not in holder_set:
                    if var not in self.query.atoms[walker].variable_set():
                        raise ValueError(
                            f"running intersection violated for {var!r}"
                        )
                    walker = self.parent[walker]
        # At most one holder subtree per variable: count connected roots.
        for var in self.query.variables:
            holders = {
                i
                for i, atom in enumerate(self.query.atoms)
                if var in atom.variable_set()
            }
            subtree_roots = 0
            for node in holders:
                parent = self.parent[node]
                if parent == -1 or parent not in holders:
                    # Check whether some strict ancestor holds var.
                    walker = parent
                    found_above = False
                    while walker != -1:
                        if walker in holders:
                            found_above = True
                            break
                        walker = self.parent[walker]
                    if not found_above:
                        subtree_roots += 1
            if subtree_roots > 1:
                raise ValueError(f"variable {var!r} spans disconnected atoms")

    # -- transformations ----------------------------------------------------------

    def rerooted(self, new_root: int) -> "JoinTree":
        """Re-root the component containing ``new_root`` at that atom.

        The join-tree property is direction-independent, so re-rooting
        preserves it.  Other components keep their roots.
        """
        adjacency: dict[int, set[int]] = {i: set() for i in range(len(self.parent))}
        for child, parent in enumerate(self.parent):
            if parent != -1:
                adjacency[child].add(parent)
                adjacency[parent].add(child)
        new_parent = list(self.parent)
        # BFS from new_root inside its component.
        visited = {new_root}
        new_parent[new_root] = -1
        queue = [new_root]
        while queue:
            node = queue.pop(0)
            for neighbour in sorted(adjacency[node]):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                new_parent[neighbour] = node
                queue.append(neighbour)
        return JoinTree(self.query, new_parent)

    def __iter__(self) -> Iterator[int]:
        return iter(self.order)

    def __repr__(self) -> str:
        parts = []
        for i in self.order:
            parent = self.parent[i]
            label = repr(self.query.atoms[i])
            if parent == -1:
                parts.append(label)
            else:
                parts.append(f"{label}<-{self.query.atoms[parent].relation_name}")
        return f"JoinTree({'; '.join(parts)})"


def build_join_tree(
    query: ConjunctiveQuery,
    root: int | None = None,
    priority: list[int] | None = None,
) -> JoinTree:
    """Construct a join tree via GYO (Section 2.1); raises on cyclic queries.

    When ``root`` is given the tree is re-rooted at that atom.  The
    optional ``priority`` biases the GYO removal order (lower priority
    atoms removed — and thus placed deeper — first), which the
    free-connex construction uses to keep free atoms at the top.
    """
    edges = [atom.variable_set() for atom in query.atoms]
    result = gyo_reduction(edges, priority=priority)
    if not result.acyclic:
        raise ValueError(f"query {query!r} is cyclic; no join tree exists")
    parent = [-1] * len(edges)
    for child, witness in result.elimination:
        parent[child] = -1 if witness is None else witness
    tree = JoinTree(query, parent)
    if root is not None:
        tree = tree.rerooted(root)
    return tree
