"""Query hypergraphs, GYO reduction, and alpha-acyclicity (Section 2.1).

The GYO (Graham / Yu-Ozsoyoglu) reduction repeatedly removes *ears*: a
hyperedge ``e`` is an ear if every node of ``e`` either occurs in no
other edge, or the nodes shared with other edges are all contained in a
single *witness* edge ``w``.  The hypergraph is alpha-acyclic iff the
reduction can remove every edge; the removal order (child = removed
edge, parent = witness) is exactly a join forest of the query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass
class GYOResult:
    """Outcome of the GYO reduction.

    ``elimination`` records ``(edge_index, witness_index_or_None)`` in
    removal order; ``remaining`` lists the edges that could not be
    removed (empty iff the hypergraph is acyclic).
    """

    acyclic: bool
    elimination: list[tuple[int, int | None]]
    remaining: list[int]


def gyo_reduction(
    edges: Sequence[frozenset],
    priority: Sequence[int] | None = None,
) -> GYOResult:
    """Run the GYO reduction on ``edges`` (sets of variables).

    Deterministic: each round considers the ears among the active edges
    and removes the one with the smallest ``(priority, -index)`` pair —
    i.e. lowest priority class first, and the *highest-indexed* edge
    within the class, witnessed by the lowest-indexed candidate.  With
    the default all-zero priority this roots join trees at early atoms
    and keeps them shallow (a star query becomes a star-shaped tree
    rooted at its centre, as in the paper's experiments).  The priority
    hook lets the free-connex construction of Section 8.1 keep the free
    atoms at the top by removing existential atoms first.  Subset edges
    (including duplicates) are ears of their superset, so they are
    handled uniformly.
    """
    if priority is None:
        priority = [0] * len(edges)
    active: list[int] = list(range(len(edges)))
    elimination: list[tuple[int, int | None]] = []

    def occurrence_counts(indexes: list[int]) -> dict:
        counts: dict = {}
        for i in indexes:
            for var in edges[i]:
                counts[var] = counts.get(var, 0) + 1
        return counts

    progress = True
    while progress and active:
        progress = False
        counts = occurrence_counts(active)
        best: tuple | None = None  # (priority, index, position, witness)
        for position, e_idx in enumerate(active):
            edge = edges[e_idx]
            shared = {var for var in edge if counts[var] > 1}
            if not shared:
                witness = None  # isolated edge: component root
            else:
                witness = None
                for w_idx in active:
                    if w_idx != e_idx and shared <= edges[w_idx]:
                        witness = w_idx
                        break
                if witness is None:
                    continue  # not an ear
            candidate = (priority[e_idx], -e_idx, position, witness)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        if best is not None:
            _prio, neg_idx, position, witness = best
            e_idx = -neg_idx
            elimination.append((e_idx, witness))
            active.pop(position)
            progress = True
    return GYOResult(
        acyclic=not active,
        elimination=elimination,
        remaining=list(active),
    )


class Hypergraph:
    """A hypergraph over named nodes; hyperedges are variable sets."""

    __slots__ = ("nodes", "edges")

    def __init__(self, nodes: Sequence[str], edges: Sequence[frozenset]):
        self.nodes = tuple(nodes)
        self.edges = [frozenset(e) for e in edges]

    def is_acyclic(self) -> bool:
        """Alpha-acyclicity via GYO; O(|Q|^2) for our query sizes."""
        return gyo_reduction(self.edges).acyclic

    def is_connected(self) -> bool:
        """Whether the hypergraph has a single connected component."""
        if not self.edges:
            return True
        visited = {0}
        component_vars = set(self.edges[0])
        changed = True
        while changed:
            changed = False
            for idx, edge in enumerate(self.edges):
                if idx in visited:
                    continue
                if edge & component_vars:
                    visited.add(idx)
                    component_vars |= edge
                    changed = True
        covered_all_edges = len(visited) == len(self.edges)
        isolated_nodes = set(self.nodes) - component_vars
        return covered_all_edges and not isolated_nodes

    def primal_edges(self) -> set[tuple[str, str]]:
        """Edges of the primal (Gaifman) graph: co-occurring variable pairs."""
        pairs: set[tuple[str, str]] = set()
        for edge in self.edges:
            ordered = sorted(edge)
            for i, u in enumerate(ordered):
                for v in ordered[i + 1:]:
                    pairs.add((u, v))
        return pairs

    def __repr__(self) -> str:
        edges = ", ".join("{" + ",".join(sorted(e)) + "}" for e in self.edges)
        return f"Hypergraph(nodes={len(self.nodes)}, edges=[{edges}])"
