"""Engine subsystem: explicit plans, prepared queries, and caching.

Separates the paper's once-per-query preprocessing phase from the
per-request enumeration phase:

* :mod:`repro.engine.plan` — the pure planning layer
  (:func:`~repro.engine.plan.plan` → :class:`~repro.engine.plan.LogicalPlan`,
  :func:`~repro.engine.plan.bind` → :class:`~repro.engine.plan.PhysicalPlan`);
* :mod:`repro.engine.engine` — the session layer
  (:class:`~repro.engine.engine.Engine`,
  :class:`~repro.engine.engine.PreparedQuery`) with fingerprint-keyed
  plan caching and database-version invalidation.
"""

from repro.engine.engine import Engine, EngineStats, PreparedQuery
from repro.engine.stream import PrefixStream
from repro.engine.plan import (
    ACYCLIC_TDP,
    ALL_WEIGHT_PROJECTION,
    FREE_CONNEX_MINWEIGHT,
    GENERIC_DECOMPOSITION,
    SIMPLE_CYCLE_UNION,
    LogicalPlan,
    PhysicalPlan,
    bind,
    plan,
)

__all__ = [
    "Engine",
    "EngineStats",
    "PreparedQuery",
    "PrefixStream",
    "LogicalPlan",
    "PhysicalPlan",
    "plan",
    "bind",
    "ACYCLIC_TDP",
    "SIMPLE_CYCLE_UNION",
    "GENERIC_DECOMPOSITION",
    "FREE_CONNEX_MINWEIGHT",
    "ALL_WEIGHT_PROJECTION",
]
