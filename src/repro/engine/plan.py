"""Planning layer: logical plans, physical plans, and the pure planner.

The paper separates a once-per-query preprocessing phase (join tree or
decomposition selection, T-DP bottom-up) from the per-request
enumeration phase.  This module makes that split explicit:

* :func:`plan` is a *pure* function of the query (and execution options)
  that classifies it — acyclic T-DP, simple-cycle decomposition, generic
  hypertree decomposition, free-connex min-weight, or an all-weight
  projection wrapper — and returns an inspectable :class:`LogicalPlan`;
  no database is touched, so plans are cacheable and ``explain()``-able
  for free.
* :func:`bind` runs the preprocessing phase of a logical plan against a
  concrete database, producing a :class:`PhysicalPlan` that holds the
  built T-DPs (and decomposition bags) and can start *enumeration-only*
  runs via :meth:`PhysicalPlan.iter` — each call creates fresh any-k
  enumerators over the shared, read-only T-DP structures, so repeated
  executions pay TT(k) enumeration cost without re-paying preprocessing.

:func:`repro.enumeration.api.ranked_enumerate` is a thin compatibility
wrapper over ``plan`` + ``bind``; the :class:`~repro.engine.engine.Engine`
adds caching and invalidation on top.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only (lazy runtime import)
    from repro.parallel.sharder import ShardSpec

from repro.anyk.base import make_enumerator
from repro.anyk.union import UnionEnumerator
from repro.data.database import Database
from repro.data.index import IndexCache
from repro.decomposition.base import TreeTask
from repro.decomposition.cycle import decompose_cycle, detect_simple_cycle
from repro.decomposition.generic import decompose_generic
from repro.dp.builder import build_tdp
from repro.dp.flat import compile_tdp
from repro.enumeration.result import QueryResult
from repro.obs.trace import NULL_TRACER
from repro.query.cq import ConjunctiveQuery
from repro.query.jointree import JoinTree, build_join_tree
from repro.ranking.dioid import TROPICAL, SelectiveDioid, TieBreakingDioid
from repro.util.counters import OpCounter

#: Strategy names: how the (inner full) query will be evaluated.
ACYCLIC_TDP = "acyclic-tdp"
SIMPLE_CYCLE_UNION = "simple-cycle-union"
GENERIC_DECOMPOSITION = "generic-decomposition"
FREE_CONNEX_MINWEIGHT = "free-connex-minweight"
ALL_WEIGHT_PROJECTION = "all-weight-projection"

VALID_ALGORITHMS = (
    "take2", "lazy", "eager", "all", "recursive", "batch", "batch_nosort",
)
VALID_PROJECTIONS = ("all_weight", "min_weight")


@dataclass(eq=False)
class LogicalPlan:
    """A pure, database-independent evaluation plan for one query.

    ``strategy`` is one of the module-level strategy constants;
    ``join_tree`` is precomputed for :data:`ACYCLIC_TDP` plans (the GYO
    reduction depends only on the query), ``cycle_walk`` for
    :data:`SIMPLE_CYCLE_UNION` plans, and ``inner`` holds the full-query
    sub-plan of an :data:`ALL_WEIGHT_PROJECTION` wrapper.
    """

    query: ConjunctiveQuery
    strategy: str
    dioid: SelectiveDioid
    algorithm: str
    projection: str
    cycle_threshold: int | None = None
    join_tree: JoinTree | None = None
    cycle_walk: list[tuple[int, str]] | None = None
    inner: "LogicalPlan | None" = None
    #: Sharding request (:class:`repro.parallel.sharder.ShardSpec`), or
    #: ``None``.  Only the acyclic T-DP strategy (and the all-weight
    #: projection wrapper around it) binds sharded; other strategies
    #: keep the spec for explain transparency and bind unsharded.
    shard: "ShardSpec | None" = None

    @property
    def shard_supported(self) -> bool:
        """Whether binding honours :attr:`shard` for this strategy."""
        if self.strategy == ACYCLIC_TDP:
            return True
        if self.strategy == ALL_WEIGHT_PROJECTION and self.inner is not None:
            return self.inner.shard_supported
        return False

    def explain(self, indent: str = "") -> str:
        """A textual rendering of the plan (no data statistics)."""
        lines = [f"{indent}logical plan: {self.query!r}"]
        lines.append(
            f"{indent}  strategy: {self.strategy}  "
            f"algorithm: {self.algorithm}  dioid: {self.dioid!r}"
        )
        if self.projection != "all_weight" or not self.query.is_full():
            lines.append(f"{indent}  projection: {self.projection}")
        if self.shard is not None:
            if self.shard_supported:
                lines.append(f"{indent}  shards: {self.shard.describe()}")
            else:
                lines.append(
                    f"{indent}  shards: requested {self.shard.describe()} — "
                    f"unsupported for strategy {self.strategy}; "
                    "binding unsharded"
                )
        if self.join_tree is not None:
            from repro.enumeration.explain import tree_ascii

            lines.append(f"{indent}  join tree:")
            lines.extend(
                indent + "  " + line for line in tree_ascii(self.join_tree)
            )
        if self.cycle_walk is not None:
            walk = " -> ".join(entry for _idx, entry in self.cycle_walk)
            lines.append(
                f"{indent}  cycle walk: {walk} "
                f"({len(self.cycle_walk)} heavy members + 1 light)"
            )
        if self.inner is not None:
            lines.append(f"{indent}  inner full-query plan:")
            lines.append(self.inner.explain(indent + "    "))
        return "\n".join(lines)


def plan(
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
    algorithm: str = "take2",
    projection: str = "all_weight",
    cycle_threshold: int | None = None,
    shards: "ShardSpec | int | None" = None,
) -> LogicalPlan:
    """Classify ``query`` and build its :class:`LogicalPlan` (pure).

    Replaces the string-flag branching previously inlined in
    ``ranked_enumerate``: the Section 5.4 dispatch — acyclic T-DP,
    simple-cycle decomposition, generic decomposition — plus the Section
    8.1 projection semantics, each as an explicit plan object.

    ``shards`` (an int or a :class:`repro.parallel.sharder.ShardSpec`)
    requests the parallel execution layer; planning stays pure — the
    anchor atom and fragment bounds are resolved against the database at
    bind time by the :class:`~repro.parallel.sharder.Sharder`.
    """
    if projection not in VALID_PROJECTIONS:
        raise ValueError(f"unknown projection semantics {projection!r}")
    if algorithm.lower() not in VALID_ALGORITHMS:
        raise ValueError(f"unknown any-k algorithm {algorithm!r}")
    if shards is not None:
        from repro.parallel.sharder import ShardSpec

        if isinstance(shards, int):
            shards = ShardSpec(shards)
        elif not isinstance(shards, ShardSpec):
            raise TypeError(
                f"shards must be an int or ShardSpec, got {shards!r}"
            )

    common = dict(
        dioid=dioid,
        algorithm=algorithm,
        projection=projection,
        cycle_threshold=cycle_threshold,
        shard=shards,
    )
    if projection == "min_weight":
        # Free-connex validation happens at bind time (the construction
        # itself raises), keeping error behaviour of the legacy path.
        return LogicalPlan(query, FREE_CONNEX_MINWEIGHT, **common)
    if not query.is_full():
        full_query = ConjunctiveQuery(
            head=None, atoms=query.atoms, name=query.name
        )
        inner = plan(
            full_query,
            dioid=dioid,
            algorithm=algorithm,
            cycle_threshold=cycle_threshold,
            shards=shards,
        )
        return LogicalPlan(
            query, ALL_WEIGHT_PROJECTION, inner=inner, **common
        )
    if query.is_acyclic():
        return LogicalPlan(
            query, ACYCLIC_TDP, join_tree=build_join_tree(query), **common
        )
    walk = detect_simple_cycle(query)
    if walk is not None:
        return LogicalPlan(
            query, SIMPLE_CYCLE_UNION, cycle_walk=walk, **common
        )
    return LogicalPlan(query, GENERIC_DECOMPOSITION, **common)


# -- physical plans ------------------------------------------------------------


class PhysicalPlan:
    """A logical plan bound to one database state (preprocessing done).

    Subclasses hold the materialised T-DP structures; :meth:`iter`
    starts one enumeration run over them.  The T-DPs are read-only
    during enumeration (each any-k strategy builds its own private
    ranking structures), so concurrent and repeated runs are safe.

    The built structures are *algorithm-independent*: the any-k
    algorithm only selects how connectors are ranked at enumeration
    time, so :meth:`iter` accepts an ``algorithm`` override and the
    engine shares one bound plan across prepared queries that differ
    only in algorithm.
    """

    def __init__(self, logical: LogicalPlan, database: Database):
        self.logical = logical
        self.database = database
        #: Wall-clock seconds spent in :func:`bind` (the preprocessing
        #: phase); enumeration-only runs do not re-pay this.
        self.preprocess_seconds: float = 0.0

    def iter(
        self,
        counter: OpCounter | None = None,
        algorithm: str | None = None,
    ) -> Iterator[QueryResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release bind-time resources (overridden where there are any).

        Mapped warm-start plans hold memoryview slices of the engine's
        ``.core`` mmap; dropping them here lets ``CoreCache.close()``
        actually unmap the file instead of tripping ``BufferError``.
        """

    def top(
        self,
        k: int,
        counter: OpCounter | None = None,
        algorithm: str | None = None,
    ) -> list[QueryResult]:
        """The first ``k`` results (fewer if the output is smaller)."""
        return list(itertools.islice(self.iter(counter, algorithm), k))

    def explain(self) -> str:
        """Logical plan plus physical (post-preprocessing) statistics."""
        lines = [self.logical.explain()]
        lines.append(
            f"physical: preprocessing took "
            f"{self.preprocess_seconds * 1e3:.2f} ms"
        )
        lines.extend(self._physical_stats())
        return "\n".join(lines)

    def _physical_stats(self) -> list[str]:
        return []

    @staticmethod
    def _tdp_lines(label: str, tdp) -> list[str]:
        stats = tdp.stats()
        return [
            f"  {label}: {stats['states']} states, "
            f"{stats['connectors']} connectors"
            + (" (EMPTY)" if stats["empty"] else "")
        ]


class AcyclicPhysical(PhysicalPlan):
    """Acyclic full CQ: one T-DP, any-k enumeration (Section 4/5).

    Binding also lowers the built T-DP into its compiled flat core
    (:func:`repro.dp.flat.compile_tdp`) when the dioid supports it, so
    the compilation cost lands in ``preprocess_seconds`` — paid once
    per database version — and every enumeration run (any algorithm,
    any serving session) starts on the shared arrays.
    """

    def __init__(self, logical: LogicalPlan, database: Database, tdp):
        super().__init__(logical, database)
        self.tdp = tdp
        self.compiled = compile_tdp(tdp)

    def close(self) -> None:
        if self.tdp is not None:
            self.tdp._compiled = None
        self.tdp = None
        self.compiled = None

    def iter(
        self,
        counter: OpCounter | None = None,
        algorithm: str | None = None,
    ) -> Iterator[QueryResult]:
        enumerator = make_enumerator(
            self.tdp, algorithm or self.logical.algorithm, counter=counter
        )
        head = self.logical.query.head

        def generate() -> Iterator[QueryResult]:
            for result in enumerator:
                yield QueryResult(
                    result.weight,
                    result.assignment,
                    head,
                    witness_ids=result.witness_ids,
                    witness=result.witness,
                )

        return generate()

    def _physical_stats(self) -> list[str]:
        lines = self._tdp_lines("t-dp", self.tdp)
        if self.compiled is not None:
            stats = self.compiled.stats()
            # Mapped warm starts replay the persisted core; flag them so
            # explain() distinguishes a rebuilt plan from a replayed one.
            from repro.dp.corebuf import MappedShell

            mapped = (
                " (mapped warm start)"
                if isinstance(self.tdp, MappedShell)
                else ""
            )
            lines.append(
                f"  compiled core: {stats['entries']} flat entries "
                f"({'chain' if self.compiled.is_chain else 'tree'} layout, "
                f"key space: {self.logical.dioid!r}){mapped}"
            )
        return lines


class UnionPhysical(PhysicalPlan):
    """UT-DP over decomposition members with tie-breaking (+ opt. dedup).

    Each member is ranked under the Section 6.3 tie-breaking dioid so
    that ties across members resolve identically and duplicates arrive
    consecutively; the reported weight is the base (first) dimension.
    ``dedup`` is off for the cycle and generic decompositions (their
    member outputs are disjoint) and exists for overlapping
    decompositions plugged in via ``enumerate_union``.
    """

    def __init__(
        self,
        logical: LogicalPlan,
        database: Database,
        tasks: list[TreeTask],
        dedup: bool = False,
    ):
        super().__init__(logical, database)
        self.tasks = tasks
        self.dedup = dedup
        query = logical.query
        variables = query.variables
        var_position = {v: i for i, v in enumerate(variables)}
        self.tie = TieBreakingDioid(logical.dioid, len(variables))
        self.tdps = []
        for task in tasks:
            lift = make_tie_lift(self.tie, var_position)
            tree = build_join_tree(task.query)
            self.tdps.append(
                build_tdp(task.database, tree, dioid=self.tie, lift=lift)
            )

    def iter(
        self,
        counter: OpCounter | None = None,
        algorithm: str | None = None,
    ) -> Iterator[QueryResult]:
        algorithm = algorithm or self.logical.algorithm
        members = [
            make_enumerator(tdp, algorithm, counter=counter)
            for tdp in self.tdps
        ]
        head = self.logical.query.head

        def identity(result) -> tuple:
            return (result.key, result.output_tuple(head))

        union = UnionEnumerator(
            members, identity=identity, dedup=self.dedup, counter=counter
        )
        task_of_tdp = {id(tdp): task for tdp, task in zip(self.tdps, self.tasks)}
        database = self.database
        query = self.logical.query
        tie = self.tie

        def generate() -> Iterator[QueryResult]:
            for result in union:
                task = task_of_tdp.get(id(result.tdp))
                if task is None:
                    raise ValueError(
                        "result does not belong to any member enumerator"
                    )
                witness_ids, witness = recover_witness(
                    database, query, task, result
                )
                yield QueryResult(
                    tie.base_value(result.weight),
                    result.assignment,
                    head,
                    witness_ids=witness_ids,
                    witness=witness,
                )

        return generate()

    def _physical_stats(self) -> list[str]:
        lines = [f"  union of {len(self.tasks)} member trees:"]
        for task, tdp in zip(self.tasks, self.tdps):
            lines.extend(
                self._tdp_lines(task.label or task.query.name, tdp)
            )
        return lines


class MinWeightPhysical(PhysicalPlan):
    """Free-connex min-weight projection (Section 8.1, Theorem 20)."""

    def __init__(self, logical: LogicalPlan, database: Database):
        super().__init__(logical, database)
        from repro.enumeration.projections import build_free_connex_plan

        self.fc_plan = build_free_connex_plan(
            database, logical.query, dioid=logical.dioid
        )
        self.tdp = (
            None
            if self.fc_plan.empty
            else build_tdp(
                self.fc_plan.database, self.fc_plan.tree, dioid=logical.dioid
            )
        )
        if self.tdp is not None:
            compile_tdp(self.tdp)

    def iter(
        self,
        counter: OpCounter | None = None,
        algorithm: str | None = None,
    ) -> Iterator[QueryResult]:
        logical = self.logical
        fc_plan = self.fc_plan
        tdp = self.tdp
        algorithm = algorithm or logical.algorithm

        def generate() -> Iterator[QueryResult]:
            if tdp is None:
                return
            enumerator = make_enumerator(tdp, algorithm, counter=counter)
            dioid = logical.dioid
            for result in enumerator:
                yield QueryResult(
                    dioid.times(fc_plan.offset, result.weight),
                    result.assignment,
                    logical.query.head,
                )

        return generate()

    def _physical_stats(self) -> list[str]:
        if self.tdp is None:
            return ["  free region: EMPTY"]
        return self._tdp_lines("reduced free-region t-dp", self.tdp)


class ProjectionPhysical(PhysicalPlan):
    """All-weight projection: rank the full query, project each answer."""

    def __init__(
        self, logical: LogicalPlan, database: Database, inner: PhysicalPlan
    ):
        super().__init__(logical, database)
        self.inner = inner

    def close(self) -> None:
        self.inner.close()

    def iter(
        self,
        counter: OpCounter | None = None,
        algorithm: str | None = None,
    ) -> Iterator[QueryResult]:
        head = self.logical.query.head
        head_set = set(head)
        inner_iter = self.inner.iter(counter, algorithm)

        def generate() -> Iterator[QueryResult]:
            for result in inner_iter:
                projected = {
                    var: value
                    for var, value in result.assignment.items()
                    if var in head_set
                }
                yield QueryResult(
                    result.weight,
                    projected,
                    head,
                    witness_ids=result.witness_ids,
                    witness=result.witness,
                )

        return generate()

    def _physical_stats(self) -> list[str]:
        return self.inner._physical_stats()


def bind(
    logical: LogicalPlan,
    database: Database,
    indexes: IndexCache | None = None,
    core_cache=None,
    tracer=NULL_TRACER,
) -> PhysicalPlan:
    """Run the preprocessing phase of ``logical`` against ``database``.

    This is the only place data-dependent work happens before
    enumeration: decomposition bag materialisation and T-DP bottom-up
    passes.  The elapsed wall-clock time is recorded on the returned
    plan as ``preprocess_seconds``.

    ``core_cache`` (a :class:`repro.dp.corebuf.CoreCache`, or ``None``)
    enables warm starts for the acyclic T-DP strategy: a fresh entry for
    this plan's persistence key skips the build + compile entirely and
    enumerates straight off the mmapped arrays; a miss or stale entry
    falls through to the normal build and rewrites the file.

    ``tracer`` (:class:`repro.obs.trace.Tracer`) records a per-stage
    span tree of the preprocessing phase — T-DP build, flat compile,
    core-cache load/store, decomposition, shard build.  The default
    no-op tracer keeps the cost at one constant method call per stage.
    """
    start = time.perf_counter()
    physical = _bind(logical, database, indexes, core_cache, tracer)
    physical.preprocess_seconds = time.perf_counter() - start
    return physical


def warm_meta(logical: LogicalPlan) -> dict:
    """The replay recipe stored beside a core entry (``Engine.warm_start``)."""
    from repro.dp.corebuf import dioid_core_name

    return {
        "query": logical.query,
        "dioid": dioid_core_name(logical.dioid),
        "shards": logical.shard,
    }


def _bind(
    logical: LogicalPlan,
    database: Database,
    indexes: IndexCache | None,
    core_cache=None,
    tracer=NULL_TRACER,
) -> PhysicalPlan:
    strategy = logical.strategy
    if strategy == ACYCLIC_TDP:
        if logical.shard is not None:
            from repro.parallel.physical import bind_sharded

            return bind_sharded(
                logical,
                database,
                indexes=indexes,
                core_cache=core_cache,
                tracer=tracer,
            )
        key = None
        if core_cache is not None:
            from repro.dp.corebuf import core_key

            key = core_key(logical.query, logical.dioid, None)
            with tracer.span("core.load") as span:
                shell = core_cache.load_tdp(
                    key, database, logical.query, logical.join_tree
                )
                span.set(hit=shell is not None)
            if shell is not None:
                # compile_tdp() inside AcyclicPhysical returns the
                # pre-assembled mapped core via the TDP memo slot.
                return AcyclicPhysical(logical, database, shell)
        with tracer.span("tdp.build") as span:
            tdp = build_tdp(database, logical.join_tree, dioid=logical.dioid)
            span.set(states=tdp.num_states())
        with tracer.span("tdp.compile") as span:
            physical = AcyclicPhysical(logical, database, tdp)
            if physical.compiled is not None:
                span.set(entries=physical.compiled.stats()["entries"])
        if key is not None and physical.compiled is not None:
            from repro.dp.corebuf import export_compiled

            with tracer.span("core.store"):
                meta, data = export_compiled(physical.compiled)
                core_cache.store(
                    key, database, meta, data, warm=warm_meta(logical)
                )
        return physical
    if strategy == SIMPLE_CYCLE_UNION:
        with tracer.span("decompose", kind="simple-cycle") as span:
            tasks = decompose_cycle(
                database,
                logical.query,
                dioid=logical.dioid,
                threshold=logical.cycle_threshold,
                indexes=indexes,
                walk=logical.cycle_walk,
            )
            span.set(members=len(tasks))
        with tracer.span("tdp.build", members=len(tasks)):
            return UnionPhysical(logical, database, tasks, dedup=False)
    if strategy == GENERIC_DECOMPOSITION:
        with tracer.span("decompose", kind="generic"):
            tasks = [
                decompose_generic(database, logical.query, dioid=logical.dioid)
            ]
        with tracer.span("tdp.build", members=len(tasks)):
            return UnionPhysical(logical, database, tasks, dedup=False)
    if strategy == FREE_CONNEX_MINWEIGHT:
        with tracer.span("tdp.build", projection="min_weight"):
            return MinWeightPhysical(logical, database)
    if strategy == ALL_WEIGHT_PROJECTION:
        inner = _bind(logical.inner, database, indexes, core_cache, tracer)
        return ProjectionPhysical(logical, database, inner)
    raise AssertionError(f"unhandled strategy {strategy!r}")


# -- shared helpers (also used by the UCQ pipeline in enumeration.api) ---------


def make_tie_lift(tie: TieBreakingDioid, var_position: dict[str, int]):
    """Lift bag weights into the tie-breaking dioid with their bindings.

    Variables absent from ``var_position`` (e.g. non-head variables in
    the UCQ pipeline) simply do not participate in tie-breaking.
    """

    def lift(atom, values, raw_weight):
        bindings = {
            var_position[var]: value
            for var, value in zip(atom.variables, values)
            if var in var_position
        }
        return tie.lift(raw_weight, bindings)

    return lift


def recover_witness(
    database: Database, query: ConjunctiveQuery, task: TreeTask, result
) -> tuple[tuple | None, tuple | None]:
    """Map bag-level states back to original witness ids and tuples."""
    if not task.lineage:
        return None, None
    tdp = result.tdp
    merged: list[tuple[int, int]] = []
    for stage, state in enumerate(result.states):
        atom = task.query.atoms[tdp.atom_of_stage[stage]]
        per_tuple = task.lineage.get(atom.relation_name)
        if per_tuple is None:
            continue
        merged.extend(per_tuple[tdp.tuple_ids[stage][state]])
    merged.sort()
    witness_ids = tuple(tuple_id for _atom, tuple_id in merged)
    # tuple_at is a plain list index in memory and a rowid point lookup
    # for backend-stored relations (no materialisation per witness).
    witness = tuple(
        database[query.atoms[atom_index].relation_name].tuple_at(tuple_id)
        for atom_index, tuple_id in merged
    )
    return witness_ids, witness
