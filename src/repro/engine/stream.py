"""Memoized result streams: the emitted-prefix cache behind serving.

Ranked enumeration is monotone — the first ``k`` answers of a run are a
prefix of the first ``k + j`` answers of the same run — so re-running
the enumeration to serve an overlapping request is pure waste.  A
:class:`PrefixStream` wraps one enumeration run and memoizes every
result it has emitted:

* ``prefix(100)`` after ``prefix(5)`` enumerates only answers 6..100 —
  zero duplicate enumeration steps (assertable via the attributed
  :class:`~repro.util.counters.OpCounter` deltas);
* any number of cursors/readers can consume the same stream at
  different positions (pagination, overlapping ``top(k)`` calls) while
  the underlying enumerator advances at most once per rank.

Streams are engine-cached per ``(physical plan, algorithm)`` and
version-stamped, so the engine's :attr:`Database.version` invalidation
extends to them: a database mutation makes the next request rebuild the
stream against a freshly bound plan (see ``Engine._stream_for``).
The enumerator under a stream runs on the physical plan's compiled
flat core when the dioid supports it (``repro.dp.flat``) — the
stream's internal counter selects the *counting* compiled loop
variants, so per-request ``OpCounter`` attribution keeps working on
the fast path.

Extension is guarded by a lock, making one stream safe to share across
threads as well as asyncio tasks; the memoized prefix itself is
append-only, so replays need no locking at all.
"""

from __future__ import annotations

from threading import RLock
from typing import Any, Callable, Iterator

from repro.enumeration.result import QueryResult
from repro.obs.trace import NULL_TRACER
from repro.util.counters import OpCounter


class PrefixStream:
    """One enumeration run with a memoized, shareable emitted prefix.

    ``factory`` starts the underlying run lazily (on the first pull) and
    receives the stream's internal :class:`OpCounter`, so every
    enumeration operation ever spent on this stream is accounted exactly
    once.  Callers that pass their own counter to :meth:`ensure` /
    :meth:`prefix` get the *delta* spent on their behalf — replayed
    results attribute zero operations, which is precisely the claim the
    serving layer's "no repeated-prefix work" tests assert.
    """

    __slots__ = (
        "_factory", "_iterator", "_results", "_exhausted", "_lock",
        "_tracer", "counter", "replays", "extensions", "_result_bytes",
    )

    def __init__(
        self,
        factory: Callable[[OpCounter], Iterator[QueryResult]],
        tracer=None,
    ):
        self._factory = factory
        self._tracer = NULL_TRACER if tracer is None else tracer
        self._iterator: Iterator[QueryResult] | None = None
        self._results: list[QueryResult] = []
        self._exhausted = False
        self._lock = RLock()
        #: Every enumeration operation spent by this stream, cumulative.
        self.counter = OpCounter()
        #: Requests answered entirely from the memo (no enumeration work).
        self.replays = 0
        #: Results pulled from the underlying enumerator.
        self.extensions = 0
        #: Cached per-result byte estimate (computed on first scrape).
        self._result_bytes: int | None = None

    # -- state -----------------------------------------------------------------

    @property
    def produced(self) -> int:
        """Number of results materialised so far."""
        return len(self._results)

    @property
    def exhausted(self) -> bool:
        """Whether the underlying enumeration ran dry."""
        return self._exhausted

    @property
    def done(self) -> bool:
        """Exhausted *and* the full output is memoized (total is known)."""
        return self._exhausted

    def __len__(self) -> int:
        return len(self._results)

    # -- extension -------------------------------------------------------------

    def ensure(self, n: int, counter: OpCounter | None = None) -> int:
        """Grow the memoized prefix to at least ``n`` results.

        Returns the number of results actually available (``< n`` only
        when the output is smaller).  Work done on behalf of this call
        is added to ``counter`` as a delta of the stream's internal
        counter; calls that are fully served by the memo add nothing.
        """
        if n < 0:
            # Mirrors itertools.islice (the pre-memoization top(k)
            # path): a negative request is a caller bug, not "almost
            # everything" via Python's negative slicing.
            raise ValueError(f"result count must be non-negative, got {n}")
        if len(self._results) >= n:
            self.replays += 1
            return n
        with self._lock:
            if self._exhausted or len(self._results) >= n:
                return min(n, len(self._results))
            before = self.counter.as_dict() if counter is not None else None
            if self._iterator is None:
                self._iterator = self._factory(self.counter)
            results = self._results
            iterator = self._iterator
            # The span covers only actual extension work — fully
            # memoized requests take the lock-free replay path above
            # and never reach the tracer.
            with self._tracer.span("stream.extend", target=n) as span:
                while len(results) < n:
                    nxt = next(iterator, None)
                    if nxt is None:
                        self._exhausted = True
                        break
                    results.append(nxt)
                    self.extensions += 1
                span.set(
                    produced=len(results), exhausted=self._exhausted
                )
            if counter is not None:
                after = self.counter.as_dict()
                for name, value in after.items():
                    setattr(
                        counter,
                        name,
                        getattr(counter, name) + value - before[name],
                    )
            return len(results)

    def prefix(
        self, k: int, counter: OpCounter | None = None
    ) -> list[QueryResult]:
        """The first ``k`` ranked answers (fewer if the output is smaller)."""
        available = self.ensure(k, counter=counter)
        return self._results[:available]

    def slice(
        self, start: int, stop: int, counter: OpCounter | None = None
    ) -> list[QueryResult]:
        """Results ``start..stop-1`` (clamped to the actual output size)."""
        if start < 0:
            raise ValueError(f"slice start must be non-negative, got {start}")
        if stop <= start:
            return []
        available = self.ensure(stop, counter=counter)
        return self._results[start:min(stop, available)]

    def get(self, index: int, counter: OpCounter | None = None) -> QueryResult | None:
        """The answer at rank ``index`` (0-based), or ``None`` past the end."""
        if index < 0:
            raise ValueError(f"rank must be non-negative, got {index}")
        available = self.ensure(index + 1, counter=counter)
        return self._results[index] if index < available else None

    def __iter__(self) -> Iterator[QueryResult]:
        """Replay-then-extend iteration over the whole ranked output."""
        index = 0
        while True:
            result = self.get(index)
            if result is None:
                return
            yield result
            index += 1

    def memory_bytes(self) -> int:
        """Estimated bytes held by the memoized prefix (scrape-time).

        A per-result estimate is measured once from the first memoized
        answer (results of one stream are homogeneous — same query,
        same arity) and multiplied by the prefix length, so polling this
        never walks the whole memo.
        """
        import sys

        results = self._results
        if not results:
            return sys.getsizeof(results)
        if self._result_bytes is None:
            sample = results[0]
            size = sys.getsizeof(sample)
            assignment = getattr(sample, "assignment", None)
            if isinstance(assignment, dict):
                # Keys are the query's variable names, shared across
                # every result — charge only the values per result.
                size += sys.getsizeof(assignment)
                size += sum(sys.getsizeof(v) for v in assignment.values())
            weight = getattr(sample, "weight", None)
            if weight is not None:
                size += sys.getsizeof(weight)
            self._result_bytes = size
        return sys.getsizeof(results) + self._result_bytes * len(results)

    def stats(self) -> dict[str, Any]:
        """Observability snapshot (memo size, replay/extension counts)."""
        return {
            "produced": len(self._results),
            "exhausted": self._exhausted,
            "replays": self.replays,
            "extensions": self.extensions,
            "memory_bytes": self.memory_bytes(),
        }

    def __repr__(self) -> str:
        state = "exhausted" if self._exhausted else "open"
        return f"PrefixStream({len(self._results)} memoized, {state})"
