"""Engine/session layer: prepared queries with sound plan & index caching.

An :class:`Engine` wraps one :class:`~repro.data.database.Database` and
hands out :class:`PreparedQuery` objects::

    engine = Engine(db)
    prepared = engine.prepare("Q(x, y, z) :- R(x, y), S(y, z)")
    top5 = prepared.top(5)        # pays preprocessing once
    more = prepared.top(100)      # enumeration-only: plan + T-DP reused

``prepare`` is idempotent: the plan cache is keyed on the query
fingerprint plus execution options (dioid, algorithm, projection,
cycle threshold), LRU-evicted beyond ``max_cached_plans``.  Bound
*physical* plans are additionally shared across prepared queries that
differ only in the any-k algorithm — the built T-DPs (and their
compiled flat enumeration cores, see :mod:`repro.dp.flat`) are
algorithm-independent, so switching algorithms costs no second
preprocessing or compilation pass.  A prepared
query stamps the database's monotone :attr:`Database.version` when it
binds; any mutation (``Database.add``/``remove``/``touch`` or
``Relation.add`` on a contained relation) changes the version, and the
next execution transparently re-runs the preprocessing phase — cached
results are never stale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Iterator

from repro.data.database import Database
from repro.data.index import IndexCache
from repro.engine.plan import LogicalPlan, PhysicalPlan, bind, plan
from repro.engine.stream import PrefixStream
from repro.enumeration.result import QueryResult
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.query.cq import ConjunctiveQuery
from repro.query.selections import (
    SelectionCondition,
    filter_database,
    parse_query_with_constants,
    rewrite_for_selections,
)
from repro.ranking.dioid import TROPICAL, SelectiveDioid
from repro.util.counters import OpCounter

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.serve.cursor import Cursor


class EngineStats:
    """Plan-cache and binding counters (observability for tests/tuning).

    Every field is backed by a typed :class:`~repro.obs.metrics.Counter`
    registered with the gateway's scrape registry — but attribute reads
    return plain ints and writes go through the counter, so
    ``stats.binds += 1`` increments, ``before = stats.binds`` snapshots,
    and ``stats.binds == before + 1`` comparisons all keep exact int
    semantics (an aliasing-free snapshot, unlike handing out the
    mutable instrument itself).  The ``core_*`` and recovery fields are
    *mirrors* of authoritative counters elsewhere
    (:class:`~repro.dp.corebuf.CoreCache`,
    :data:`repro.serve.resilience.COUNTERS`) refreshed after every bind
    by plain assignment.
    """

    _FIELDS = (
        "prepare_hits",
        "prepare_misses",
        "binds",
        #: Binds that went through the parallel execution layer.
        "sharded_binds",
        "evictions",
        "stream_hits",
        "stream_misses",
        #: Compiled-core file counters; a ``core_hit`` bind skipped the
        #: T-DP build + compile entirely.
        "core_hits",
        "core_misses",
        "core_stale",
        "core_writes",
        #: Recovery mirrors — how often transient faults were absorbed
        #: (retries), pools respawned, or builds downgraded.
        "retries",
        "worker_respawns",
        "pool_downgrades",
    )

    def __init__(self):
        object.__setattr__(
            self,
            "_counters",
            {
                name: Counter(f"repro_engine_{name}_total", f"Engine {name}.")
                for name in self._FIELDS
            },
        )

    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        try:
            return int(counters[name])
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value) -> None:
        if name in self._FIELDS:
            self._counters[name].set(value)
        else:
            object.__setattr__(self, name, value)

    def as_dict(self) -> dict:
        return {name: int(counter) for name, counter in self._counters.items()}

    def register_metrics(self, registry: MetricsRegistry) -> None:
        for counter in self._counters.values():
            registry.attach(counter)


class PreparedQuery:
    """A cached physical plan plus everything needed to (re)bind it.

    Created by :meth:`Engine.prepare`.  Execution methods (:meth:`iter`,
    :meth:`top`, :meth:`first`) run only the enumeration phase when the
    underlying database is unchanged since the last bind; otherwise they
    re-run preprocessing first (and count a bind in the engine stats).
    """

    __slots__ = (
        "engine", "logical", "selections", "physical_key", "_source_query",
        "_physical", "_bound_version",
    )

    def __init__(
        self,
        engine: "Engine",
        logical: LogicalPlan,
        physical_key: tuple,
        selections: tuple[SelectionCondition, ...] = (),
        source_query: ConjunctiveQuery | None = None,
    ):
        self.engine = engine
        self.logical = logical
        #: Engine-level key for the *bound* plan.  Excludes the any-k
        #: algorithm: the built T-DP structures are algorithm-independent
        #: (the algorithm only selects connector ranking at enumeration
        #: time), so prepared queries differing only in algorithm share
        #: one physical plan and preprocessing is paid once.
        self.physical_key = physical_key
        #: Constant selections compiled out of the query text; applied to
        #: the database at bind time (the paper's O(n) preprocessing).
        self.selections = selections
        #: Pre-rewrite query (needed to locate base relations to filter).
        self._source_query = source_query or logical.query
        self._physical: PhysicalPlan | None = None
        self._bound_version: int = -1

    # -- binding ---------------------------------------------------------------

    @property
    def query(self) -> ConjunctiveQuery:
        """The (selection-rewritten) query this plan evaluates."""
        return self.logical.query

    @property
    def is_bound(self) -> bool:
        """Whether a physical plan is cached for the current db version."""
        return (
            self._physical is not None
            and self._bound_version == self.engine.database.version
        )

    @property
    def preprocess_seconds(self) -> float | None:
        """Preprocessing wall-clock of the last bind (None if unbound)."""
        return None if self._physical is None else self._physical.preprocess_seconds

    def bind(self, force: bool = False, tracer=None) -> PhysicalPlan:
        """Ensure the physical plan matches the database's current state.

        A no-op when already bound at the current version (unless
        ``force``).  Delegates to the engine's shared physical-plan
        cache, so sibling prepared queries (same query/dioid/projection,
        different algorithm) bind at most once per database version —
        and, since binding also compiles the flat enumeration core,
        the ``CompiledTDP`` is version-stamped and shared the same way
        (across algorithms, cursors, and serving sessions).

        ``tracer`` overrides the engine's tracer for this bind — the
        hook :func:`repro.obs.analyze.analyze_prepared` uses to record
        preprocessing spans into its private always-sampling tracer.
        """
        version = self.engine.database.version
        if not force and self._physical is not None and self._bound_version == version:
            # Converge on the engine's canonical physical for this key
            # when one exists (a sibling PreparedQuery — e.g. created
            # after this one was LRU-evicted from the plan cache — may
            # have re-bound): the stream cache stamps by physical-plan
            # identity, so divergent-but-equivalent plans would churn
            # the memoized prefix on every alternation.  (Lock-free
            # dict peek; the version check makes a raced entry safe.)
            entry = self.engine._physicals.get(self.physical_key)
            if (
                entry is not None
                and entry[0] == version
                and entry[1] is not self._physical
            ):
                self._physical = entry[1]
            return self._physical
        self._physical = self.engine._bind_physical(
            self, version, force=force, tracer=tracer
        )
        self._bound_version = version
        return self._physical

    def invalidate(self) -> None:
        """Drop the cached physical plan (next run re-preprocesses)."""
        self._physical = None
        self._bound_version = -1
        with self.engine._lock:
            self.engine._physicals.pop(self.physical_key, None)
        with self.engine._stream_lock:
            self.engine._streams.pop(self.stream_key, None)

    # -- execution (enumeration phase only, when bound) ------------------------

    @property
    def stream_key(self) -> tuple:
        """Engine-level key of this query's shared result stream.

        Streams memoize *emitted results*, whose order may depend on how
        the any-k algorithm breaks ties — so unlike the physical plan,
        the stream key includes the algorithm.  The shard configuration
        rides in through ``physical_key``: a prefix memoized under one
        ``shards=`` can interleave exact-weight ties differently from
        another fragmentation, so re-preparing with a different shard
        count must (and does) get a fresh stream, never a stale prefix.
        """
        return self.physical_key + (self.logical.algorithm,)

    def iter(self, counter: OpCounter | None = None) -> Iterator[QueryResult]:
        """Start one ranked enumeration run (lazy; TT(k) to pull k).

        Always a *fresh* enumeration over the shared bound plan: the
        instrumented cost of the run is exactly the paper's TT(k), which
        the experiment harness relies on.  Use :meth:`top` or
        :meth:`cursor` for the memoizing serving path.
        """
        return self.bind().iter(counter, algorithm=self.logical.algorithm)

    def __iter__(self) -> Iterator[QueryResult]:
        return self.iter()

    def stream(self) -> PrefixStream:
        """The shared memoized result stream for the current db version.

        One stream per (physical plan, algorithm) lives on the engine;
        overlapping :meth:`top` calls and any number of cursors consume
        it without re-enumerating the common prefix.  A database
        mutation invalidates it together with the physical plan.
        """
        return self.engine._stream_for(self)

    def top(self, k: int, counter: OpCounter | None = None) -> list[QueryResult]:
        """The first ``k`` ranked answers (fewer if the output is smaller).

        Served from the shared prefix stream: ``top(5)`` then
        ``top(100)`` enumerates answers 6..100 only, and a repeated
        ``top(k)`` does no enumeration work at all.  A passed
        ``counter`` receives the operations spent *on behalf of this
        call* (zero for fully memoized prefixes).

        The memoized prefix is retained (that is the point: later
        overlapping requests replay it), so a huge one-off ``top(k)``
        holds its k results until a database mutation, LRU pressure, or
        an explicit :meth:`invalidate`/``engine.clear_caches()``; use
        :meth:`iter` for transient full scans.
        """
        return self.stream().prefix(k, counter=counter)

    def cursor(self, budget: int | None = None) -> "Cursor":
        """A pausable, resumable pagination handle over :meth:`stream`.

        Cursors over the same prepared query share the emitted prefix;
        see :class:`repro.serve.cursor.Cursor`.
        """
        from repro.serve.cursor import Cursor

        return Cursor(self, budget=budget)

    def first(self, counter: OpCounter | None = None) -> QueryResult | None:
        """The top-ranked answer, or ``None`` on empty output (TTF cost)."""
        return next(self.iter(counter), None)

    def explain(self) -> str:
        """Logical plan, plus physical statistics when already bound."""
        if self._physical is not None:
            return self._physical.explain()
        return self.logical.explain()

    def analyze(self, k: int | None = 10, rebind: bool = True, tracer=None):
        """EXPLAIN ANALYZE: run up to ``k`` answers instrumented.

        Force-rebinds under an always-sampling tracer (so the per-stage
        tree covers plan → T-DP build → compile → core-cache → shard
        build), drains ``k`` ranked answers clocking each arrival, and
        returns an :class:`~repro.obs.analyze.AnalyzeReport` carrying
        per-stage wall time, OpCounter attribution, per-shard emit
        counts, compiled-core stats, and the TTF / TT(k) /
        per-answer-delay profile.  ``rebind=False`` profiles the warm
        serving path instead (no preprocessing re-run).
        """
        from repro.obs.analyze import analyze_prepared

        return analyze_prepared(self, k, rebind=rebind, tracer=tracer)

    def __repr__(self) -> str:
        state = "bound" if self.is_bound else "unbound"
        return (
            f"PreparedQuery({self.logical.query.name}, "
            f"{self.logical.strategy}, {self.logical.algorithm}, {state})"
        )


class Engine:
    """Session object: one database, cached prepared queries and indexes.

    The database may live on any storage backend; an engine over a
    :class:`~repro.data.backend.SQLiteBackend` database binds plans
    against the persistent store (lazy row streams, server-side degree
    statistics) and gets cross-process warm starts for free — reopening
    the ``.db`` file skips ingestion, and only the in-process plan/T-DP
    caches are rebuilt.  Engines are context managers; leaving the
    ``with`` block closes the owning backend.
    """

    def __init__(
        self,
        database: Database,
        max_cached_plans: int = 64,
        core_cache: Any = "auto",
        tracer: Any = None,
    ):
        self.database = database
        self.max_cached_plans = max_cached_plans
        self.indexes = IndexCache()
        self.stats = EngineStats()
        #: Engine-wide tracer (:class:`repro.obs.trace.Tracer`), default
        #: the shared no-op :data:`~repro.obs.trace.NULL_TRACER` so the
        #: instrumentation points cost one attribute read + a constant
        #: method call when tracing is off.
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: Persistent compiled-core cache (``<db>.core`` warm starts).
        #: ``"auto"``/``"on"`` attach to the backend's ``core_path``
        #: (no-op for path-less backends, e.g. in-memory); ``"off"`` /
        #: ``False`` / ``None`` disables persistence; any other string
        #: is an explicit core-file path; a prebuilt
        #: :class:`~repro.dp.corebuf.CoreCache` is used as-is.
        self.core_cache = self._resolve_core_cache(core_cache, database)
        #: Guards the plan/physical caches and their stats.  Binding
        #: (preprocessing) runs under this lock, so concurrent sessions
        #: binding the same query preprocess once; enumeration and
        #: stream lookups do NOT take it (streams have their own lock
        #: below), so a long-running fetch — and a heavy bind — never
        #: blocks another session's already-bound fetch.
        self._lock = threading.RLock()
        self._plans: OrderedDict[tuple, PreparedQuery] = OrderedDict()
        #: Bound physical plans, shared across algorithm variants:
        #: physical_key -> (database version at bind, PhysicalPlan).
        self._physicals: OrderedDict[tuple, tuple[int, PhysicalPlan]] = (
            OrderedDict()
        )
        #: Shared memoized result streams, under their own lock (never
        #: nested with ``_lock``): stream_key -> (bound physical plan at
        #: creation, stream).  Stamping with the physical plan *object*
        #: (not a version number) makes staleness structurally
        #: impossible: a stream is served only to callers whose bind()
        #: resolved to the exact plan it wraps.
        self._stream_lock = threading.RLock()
        self._streams: OrderedDict[tuple, tuple[PhysicalPlan, PrefixStream]] = (
            OrderedDict()
        )

    def prepare(
        self,
        query: ConjunctiveQuery | str,
        dioid: SelectiveDioid = TROPICAL,
        algorithm: str = "take2",
        projection: str = "all_weight",
        cycle_threshold: int | None = None,
        shards: "int | Any | None" = None,
        shard_atom: int | None = None,
        shard_strategy: str = "range",
        shard_tie_break: str = "arrival",
        shard_parallel: str = "auto",
        shard_workers: int | None = None,
    ) -> PreparedQuery:
        """Plan ``query`` (or fetch the cached plan) for later execution.

        ``query`` may be a :class:`ConjunctiveQuery` or Datalog-style
        text; text may contain constants (``R(x, 5)``), which compile
        into selections applied at bind time.  Binding is deferred: the
        first execution (or an explicit :meth:`PreparedQuery.bind`) runs
        the preprocessing phase.

        ``shards`` (an int or a prebuilt
        :class:`repro.parallel.sharder.ShardSpec`) routes binding
        through the parallel execution layer: the anchor relation is
        partitioned into that many fragments, fragment T-DPs build
        concurrently (:class:`~repro.parallel.build.ParallelPreprocessor`),
        and enumeration merges the per-fragment streams.  The shard
        configuration is part of the physical *and* stream cache keys,
        so re-preparing with a different ``shards=`` never reuses a
        bound plan or a memoized result prefix built under another
        fragmentation.  The remaining ``shard_*`` keywords refine the
        spec (ignored when ``shards`` is ``None`` or already a spec).
        """
        spec = self._shard_spec(
            shards, shard_atom, shard_strategy, shard_tie_break,
            shard_parallel, shard_workers,
        )
        source_query, selections = self._resolve(query)
        planned_query = (
            rewrite_for_selections(source_query, list(selections))
            if selections
            else source_query
        )
        physical_key = (
            planned_query.fingerprint(),
            tuple(
                (c.atom_index, c.position, c.value) for c in selections
            ),
            id(dioid),
            projection,
            cycle_threshold,
            # Only the result-affecting shard fields: prepares that
            # differ merely in build mechanics (parallel mode, worker
            # count) share one bound plan and one memoized prefix.
            None if spec is None else spec.cache_key(),
        )
        key = physical_key + (algorithm.lower(),)
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self._plans.move_to_end(key)
                self.stats.prepare_hits += 1
                return cached
        # Planning is pure (no database access), so it runs outside the
        # lock; a racing duplicate prepare just loses the insert below.
        with self.tracer.span(
            "engine.prepare", query=planned_query.name, algorithm=algorithm
        ) as span:
            logical = plan(
                planned_query,
                dioid=dioid,
                algorithm=algorithm,
                projection=projection,
                cycle_threshold=cycle_threshold,
                shards=spec,
            )
            span.set(strategy=logical.strategy)
        prepared = PreparedQuery(
            self,
            logical,
            physical_key,
            selections=selections,
            source_query=source_query,
        )
        with self._lock:
            raced = self._plans.get(key)
            if raced is not None:
                self._plans.move_to_end(key)
                self.stats.prepare_hits += 1
                return raced
            self._plans[key] = prepared
            self.stats.prepare_misses += 1
            while len(self._plans) > self.max_cached_plans:
                self._plans.popitem(last=False)
                self.stats.evictions += 1
        return prepared

    @staticmethod
    def _resolve_core_cache(option: Any, database: Database):
        if option in ("off", False, None):
            return None
        from repro.dp.corebuf import CoreCache

        if isinstance(option, CoreCache):
            return option
        if option in ("auto", "on", True):
            path = getattr(database.backend, "core_path", None)
            return None if path is None else CoreCache(path)
        if isinstance(option, str):
            return CoreCache(option)
        raise ValueError(f"unknown core_cache option {option!r}")

    def _bind_physical(
        self,
        prepared: PreparedQuery,
        version: int,
        force: bool = False,
        tracer=None,
    ) -> PhysicalPlan:
        """Fetch or build the shared physical plan for ``prepared``.

        Runs under the engine lock: concurrent sessions binding the
        same physical key preprocess once, and the LRU eviction below
        never races a lookup.
        """
        if tracer is None:
            tracer = self.tracer
        with self._lock:
            key = prepared.physical_key
            entry = self._physicals.get(key)
            if not force and entry is not None and entry[0] == version:
                self._physicals.move_to_end(key)
                return entry[1]
            database = self.database
            core_cache = self.core_cache
            if prepared.selections:
                # Selections bind against a filtered *copy* of the
                # database whose contents the persistence key cannot
                # see — never serve or store cores for those.
                database = filter_database(
                    database, prepared._source_query, list(prepared.selections)
                )
                core_cache = None
            with tracer.span(
                "engine.bind",
                query=prepared.logical.query.name,
                strategy=prepared.logical.strategy,
            ) as span:
                physical = bind(
                    prepared.logical,
                    database,
                    indexes=self.indexes,
                    core_cache=core_cache,
                    tracer=tracer,
                )
                span.set(
                    preprocess_ms=round(physical.preprocess_seconds * 1e3, 4),
                    sharded=bool(getattr(physical, "shard_count", 0)),
                )
            if core_cache is not None:
                stats = core_cache.stats()
                self.stats.core_hits = stats["hits"]
                self.stats.core_misses = stats["misses"]
                self.stats.core_stale = stats["stale"]
                self.stats.core_writes = stats["writes"]
            from repro.serve.resilience import COUNTERS as _recovery_counters

            recovery = _recovery_counters.snapshot()
            self.stats.retries = sum(
                count
                for name, count in recovery.items()
                if name.startswith("retries_")
            )
            self.stats.worker_respawns = recovery.get("worker_respawns", 0)
            self.stats.pool_downgrades = recovery.get("pool_downgrades", 0)
            self._physicals[key] = (version, physical)
            self._physicals.move_to_end(key)
            while len(self._physicals) > self.max_cached_plans:
                self._physicals.popitem(last=False)
            self.stats.binds += 1
            if getattr(physical, "shard_count", 0):
                self.stats.sharded_binds += 1
            return physical

    @staticmethod
    def _shard_spec(
        shards, atom, strategy, tie_break, parallel, workers
    ):
        """Normalise the ``prepare`` shard keywords into a ShardSpec."""
        if shards is None:
            return None
        from repro.parallel.sharder import ShardSpec

        if isinstance(shards, ShardSpec):
            return shards
        return ShardSpec(
            shards,
            atom=atom,
            strategy=strategy,
            tie_break=tie_break,
            parallel=parallel,
            workers=workers,
        )

    def _stream_for(self, prepared: PreparedQuery) -> PrefixStream:
        """Fetch or create the shared memoized stream for ``prepared``.

        Stamped with the bound physical plan it wraps: a database
        mutation rebinds (``Database.version`` discipline), the stamp no
        longer matches, and a fresh stream over the fresh plan replaces
        the entry — a raced stale insert can at worst serve the
        requester whose bind predated the mutation, never later ones.
        The stream pulls lazily: creating it does no enumeration work.

        Memoized prefixes live until replaced, LRU-evicted, or
        explicitly dropped (:meth:`PreparedQuery.invalidate`,
        :meth:`clear_caches`) — the serving layer bounds their growth
        with per-session result budgets.
        """
        physical = prepared.bind()
        with self._stream_lock:
            key = prepared.stream_key
            entry = self._streams.get(key)
            if entry is not None and entry[0] is physical:
                self._streams.move_to_end(key)
                self.stats.stream_hits += 1
                return entry[1]
            algorithm = prepared.logical.algorithm
            stream = PrefixStream(
                lambda counter: physical.iter(counter, algorithm=algorithm),
                tracer=self.tracer,
            )
            self._streams[key] = (physical, stream)
            self.stats.stream_misses += 1
            while len(self._streams) > self.max_cached_plans:
                self._streams.popitem(last=False)
            return stream

    @staticmethod
    def _resolve(
        query: ConjunctiveQuery | str,
    ) -> tuple[ConjunctiveQuery, tuple[SelectionCondition, ...]]:
        if isinstance(query, str):
            parsed, selections = parse_query_with_constants(query)
            return parsed, tuple(selections)
        return query, ()

    # -- convenience -----------------------------------------------------------

    def execute(
        self,
        query: ConjunctiveQuery | str,
        k: int | None = None,
        counter: OpCounter | None = None,
        **options: Any,
    ) -> list[QueryResult]:
        """Prepare-and-run shortcut: top ``k`` answers (all if ``None``)."""
        prepared = self.prepare(query, **options)
        if k is None:
            return list(prepared.iter(counter))
        return prepared.top(k, counter=counter)

    def explain(self, query: ConjunctiveQuery | str, **options: Any) -> str:
        """The (cached) plan report for ``query``, binding if needed."""
        prepared = self.prepare(query, **options)
        prepared.bind()
        return prepared.explain()

    def cached_plans(self) -> int:
        """Number of prepared queries currently in the plan cache."""
        return len(self._plans)

    @classmethod
    def from_backend(
        cls,
        backend,
        max_cached_plans: int = 64,
        core_cache: Any = "auto",
        tracer: Any = None,
    ) -> "Engine":
        """An engine over every relation stored in ``backend``."""
        return cls(
            Database.from_backend(backend),
            max_cached_plans=max_cached_plans,
            core_cache=core_cache,
            tracer=tracer,
        )

    # -- memory accounting -----------------------------------------------------

    @staticmethod
    def _compiled_cores(physical: PhysicalPlan) -> list:
        """Compiled flat cores reachable from one bound physical plan."""
        cores = []
        compiled = getattr(physical, "compiled", None)
        if compiled is not None:
            cores.append(compiled)
        tdps = []
        tdp = getattr(physical, "tdp", None)
        if tdp is not None:
            tdps.append(tdp)
        tdps.extend(getattr(physical, "tdps", ()) or ())
        for candidate in tdps:
            core = getattr(candidate, "_compiled", None)
            if core:  # None = not compiled yet, False = unsupported dioid
                cores.append(core)
        return cores

    def memory_stats(self) -> dict:
        """Scrape-time estimate of engine-held memory.

        ``stream_bytes`` covers memoized result prefixes;
        ``core_heap_bytes`` sums the heap structures of compiled cores
        reachable from bound plans (mmap-backed columns count zero);
        ``core_mmap_bytes`` is the mapped span of the ``.core`` file —
        the heap-vs-mmap split shows what warm starts moved off the
        heap.  Everything here is an estimate computed on demand; no
        instrument is touched on the enumeration path.
        """
        with self._stream_lock:
            streams = [stream for _physical, stream in self._streams.values()]
        with self._lock:
            physicals = [entry[1] for entry in self._physicals.values()]
        heap = 0
        seen: set[int] = set()
        for physical in physicals:
            for core in self._compiled_cores(physical):
                if id(core) in seen:
                    continue
                seen.add(id(core))
                estimate = getattr(core, "memory_bytes", None)
                if estimate is not None:
                    heap += estimate()
        return {
            "stream_count": len(streams),
            "stream_bytes": sum(s.memory_bytes() for s in streams),
            "core_heap_bytes": heap,
            "core_mmap_bytes": (
                0 if self.core_cache is None else self.core_cache.mmap_bytes()
            ),
        }

    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Attach engine counters and memory gauges to a registry."""
        self.stats.register_metrics(registry)
        for field in (
            "stream_count",
            "stream_bytes",
            "core_heap_bytes",
            "core_mmap_bytes",
        ):
            registry.gauge(
                f"repro_engine_{field}",
                f"Engine memory accounting: {field}.",
                fn=lambda field=field: self.memory_stats()[field],
            )

    def clear_caches(self) -> None:
        """Drop all cached plans, streams, and indexes.

        Also the explicit way to release memoized result prefixes on a
        long-lived engine over a never-mutating database.
        """
        with self._lock:
            self._plans.clear()
            self._physicals.clear()
            self.indexes.clear()
        with self._stream_lock:
            self._streams.clear()

    def warm_start(self) -> int:
        """Pre-bind every stored core matching the current database state.

        Replays the replay recipes stored beside ``.core`` entries
        (query + dioid + shard spec): each fresh entry binds straight
        off the mmap, so a serving process answers its first request of
        a known query at enumeration cost.  Returns how many plans were
        warmed; entries for other database versions (or with broken
        recipes) are skipped silently — the normal miss path handles
        them.
        """
        if self.core_cache is None:
            return 0
        from repro.ranking.dioid import NAMED_DIOIDS

        version = self.database.version
        warmed = 0
        for _key, meta, db_version in self.core_cache.entries():
            if db_version != version:
                continue
            warm = meta.get("warm")
            if not warm:
                continue
            dioid = NAMED_DIOIDS.get(warm.get("dioid"))
            if dioid is None:
                continue
            try:
                prepared = self.prepare(
                    warm["query"], dioid=dioid, shards=warm.get("shards")
                )
                prepared.bind()
            except Exception:
                continue
            warmed += 1
        return warmed

    def close(self) -> None:
        """Drop caches, release bound plans, and close storage.

        Bound physical plans are explicitly :meth:`~repro.engine.plan.
        PhysicalPlan.close`\\ d first: warm-started plans hold memoryview
        slices of the core file's mmap, and the mmap can only unmap once
        those views are gone.
        """
        with self._lock:
            physicals = [entry[1] for entry in self._physicals.values()]
        self.clear_caches()
        for physical in physicals:
            physical.close()
        if self.core_cache is not None:
            self.core_cache.close()
        self.database.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Engine({self.database!r}, plans={len(self._plans)}, "
            f"version={self.database.version})"
        )
