"""repro — ranked enumeration of answers to full conjunctive queries.

A from-scratch reproduction of Tziavelis et al., "Optimal Algorithms for
Ranked Enumeration of Answers to Full Conjunctive Queries" (VLDB 2020):
the any-k framework (anyK-part with Take2/Lazy/Eager/All, anyK-rec /
Recursive), tree-based dynamic programming over join trees, unions of
trees for cyclic queries, selective-dioid ranking functions, and every
baseline the paper evaluates against.

Quickstart::

    from repro import Database, Relation, parse_query, ranked_enumerate

    db = Database([
        Relation.from_pairs("R", [(1, 2), (1, 3)], weights=[1.0, 5.0]),
        Relation.from_pairs("S", [(2, 7), (3, 7)], weights=[2.0, 0.5]),
    ])
    query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
    for result in ranked_enumerate(db, query, algorithm="take2"):
        print(result.weight, result.assignment)

Repeated executions should go through the engine, which caches the
physical plan (join tree / decomposition + built T-DPs) and re-runs
only the enumeration phase::

    from repro import Engine

    engine = Engine(db)
    prepared = engine.prepare(query)   # preprocessing paid here, once
    top5 = prepared.top(5)
    top50 = prepared.top(50)           # enumerates answers 6..50 only

``top`` calls (and :meth:`PreparedQuery.cursor` pagination handles)
share a memoized emitted-prefix stream, so overlapping requests never
repeat enumeration work.  The :mod:`repro.serve` subsystem exposes the
same engine over a streaming JSON-lines server with named sessions and
resumable cursors (``python -m repro.cli serve``).

Datasets can live on a persistent storage backend instead of in-memory
lists; the same plans run unchanged over a SQLite file::

    from repro import SQLiteBackend

    backend = SQLiteBackend("data.db")     # reopening skips ingestion
    for relation in db:
        backend.ingest(relation)
    with Engine.from_backend(backend) as engine:
        print(engine.execute(query, k=5))
"""

from repro.anyk import (
    AnyKPart,
    Batch,
    Enumerator,
    RankedResult,
    Recursive,
    UnionEnumerator,
    make_enumerator,
)
from repro.data import (
    Database,
    HashIndex,
    IndexCache,
    MemoryBackend,
    Relation,
    SQLiteBackend,
    StorageBackend,
)
from repro.dp import TDP, build_tdp, build_tdp_for_query
from repro.engine import (
    Engine,
    LogicalPlan,
    PhysicalPlan,
    PrefixStream,
    PreparedQuery,
    plan,
)
from repro.enumeration import QueryResult, ranked_enumerate
from repro.homomorphism import min_cost_homomorphism, ranked_homomorphisms
from repro.query import (
    Atom,
    ConjunctiveQuery,
    JoinTree,
    build_join_tree,
    cycle_query,
    parse_query,
    path_query,
    star_query,
)
from repro.ranking import (
    BOOLEAN,
    MAX_PLUS,
    MAX_TIMES,
    NAMED_DIOIDS,
    TROPICAL,
    LexicographicDioid,
    SelectiveDioid,
    TieBreakingDioid,
)
from repro.parallel import (
    ParallelPreprocessor,
    Sharder,
    ShardedPhysical,
    ShardMerge,
    ShardSpec,
)
from repro.serve import (
    Cursor,
    ServeClient,
    ServeServer,
    ServerThread,
    SessionManager,
)
from repro.util import OpCounter

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Relation",
    "HashIndex",
    "IndexCache",
    "StorageBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "Engine",
    "PreparedQuery",
    "LogicalPlan",
    "PhysicalPlan",
    "plan",
    "Atom",
    "ConjunctiveQuery",
    "parse_query",
    "path_query",
    "star_query",
    "cycle_query",
    "JoinTree",
    "build_join_tree",
    "TDP",
    "build_tdp",
    "build_tdp_for_query",
    "Enumerator",
    "RankedResult",
    "make_enumerator",
    "AnyKPart",
    "Recursive",
    "Batch",
    "UnionEnumerator",
    "SelectiveDioid",
    "TROPICAL",
    "MAX_PLUS",
    "MAX_TIMES",
    "BOOLEAN",
    "NAMED_DIOIDS",
    "LexicographicDioid",
    "TieBreakingDioid",
    "PrefixStream",
    "ShardSpec",
    "Sharder",
    "ShardedPhysical",
    "ShardMerge",
    "ParallelPreprocessor",
    "Cursor",
    "SessionManager",
    "ServeServer",
    "ServerThread",
    "ServeClient",
    "OpCounter",
    "QueryResult",
    "ranked_enumerate",
    "min_cost_homomorphism",
    "ranked_homomorphisms",
    "__version__",
]
