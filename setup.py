"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that editable installs work in offline environments whose setuptools
lacks PEP 660 support (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
