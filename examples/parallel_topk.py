"""Parallel execution: fragment-sharded preprocessing with a ranked merge.

The dominant cold-query cost is the O(n) preprocessing phase; the
parallel layer partitions one anchor relation into disjoint fragments,
builds one (strictly smaller) T-DP per fragment, and merges the
per-fragment any-k streams back into the exact global ranked order.
This script shows the whole surface:

* ``Engine.prepare(query, shards=N)`` — the one-keyword opt-in;
* the bit-identical guarantee (sharded top-k == unsharded top-k);
* the preprocessing win, measured;
* the shard plan in ``explain()`` and per-shard attribution stats.

Run:  python examples/parallel_topk.py
"""

import time

from repro import Database, Engine
from repro.data.graphs import twitter_like
from repro.query.parser import parse_query


def timed_bind(engine: Engine, query, **kwargs):
    engine.clear_caches()
    start = time.perf_counter()
    prepared = engine.prepare(query, **kwargs)
    physical = prepared.bind()
    return prepared, physical, (time.perf_counter() - start) * 1e3


def main() -> None:
    edges = twitter_like(num_nodes=2_000, num_edges=30_000, seed=7)
    engine = Engine(Database([edges.rename("E")]))
    query = parse_query(
        "Q(a, b, c, d) :- E(a, b), E(b, c), E(c, d)"
    )

    serial, _physical, serial_ms = timed_bind(engine, query)
    top_serial = serial.top(5)

    sharded, physical, sharded_ms = timed_bind(engine, query, shards=4)
    top_sharded = sharded.top(5)

    print(f"serial preprocessing:  {serial_ms:7.1f} ms")
    print(f"4-shard preprocessing: {sharded_ms:7.1f} ms "
          f"({serial_ms / sharded_ms:.2f}x)\n")

    print("top-5 lightest 3-hop chains (bit-identical to the serial run):")
    assert [(r.weight, r.assignment) for r in top_sharded] == [
        (r.weight, r.assignment) for r in top_serial
    ]
    for rank, result in enumerate(top_sharded, start=1):
        chain = " -> ".join(
            str(result.assignment[v]) for v in ("a", "b", "c", "d")
        )
        print(f"  #{rank}  weight={result.weight:.3f}  {chain}")

    print("\nshard plan (from explain()):")
    for line in sharded.explain().splitlines():
        if "shard" in line or "fragment" in line:
            print(f"  {line.strip()}")

    # Pull a bigger prefix, then show which fragment served what.
    sharded.top(500)
    stats = physical.shard_stats()
    print(f"\nper-shard attribution after top-500: "
          f"{stats['last_shard_counts']} "
          f"(anchor states per fragment: {stats['fragment_states']})")


if __name__ == "__main__":
    main()
