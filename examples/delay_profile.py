"""Observability: EXPLAIN ANALYZE and the delay profile of a 4-path query.

Ranked enumeration is judged by *when* answers arrive, not just how
many: TTF (time to first answer), TT(k) (time to the k-th), and the
per-answer delay distribution are the quantities the paper plots in
Section 7.  ``PreparedQuery.analyze(k)`` measures all of them live on
the serving plan — preprocessing stages, operation counters, and the
delay percentiles of one instrumented run — with zero setup.

This script runs EXPLAIN ANALYZE on a 4-path query, prints the full
report, then compares the delay profile of three any-k variants on the
same database.

Run:  python examples/delay_profile.py
"""

from repro import Engine
from repro.data.generators import uniform_database
from repro.query.builders import path_query

K = 2_000


def main() -> None:
    # Four binary relations, 4000 tuples each: the paper's uniform
    # synthetic workload for path queries (Section 7).
    database = uniform_database(4, 4_000, seed=42)
    engine = Engine(database)
    query = path_query(4)

    print("=== EXPLAIN ANALYZE (anyk-take2, first 2000 answers) ===\n")
    prepared = engine.prepare(query, algorithm="take2")
    print(prepared.analyze(K).render())

    print("\n=== delay profiles across any-k variants ===\n")
    header = (
        f"{'variant':<10} {'TTF ms':>9} {'TT(k) ms':>10} "
        f"{'p50 us':>8} {'p99 us':>8} {'max us':>9}"
    )
    print(header)
    print("-" * len(header))
    for algorithm in ("take2", "lazy", "eager"):
        report = engine.prepare(query, algorithm=algorithm).analyze(K)
        delay = report.delay
        print(
            f"{algorithm:<10} {delay['ttf_ms']:>9.3f} {delay['ttk_ms']:>10.3f} "
            f"{delay['delay_p50_us']:>8.2f} {delay['delay_p99_us']:>8.2f} "
            f"{delay['delay_max_us']:>9.2f}"
        )

    print(
        "\nTTF is dominated by the shared preprocessing; the variants "
        "differ in per-answer delay — exactly the trade-off the any-k "
        "taxonomy is about."
    )


if __name__ == "__main__":
    main()
