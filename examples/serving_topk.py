"""Paginated top-k serving: a client pages through influence chains.

The serving-layer twist on ``influence_paths.py``: instead of a local
enumeration loop, a live asyncio JSON-lines server owns the engine and
a client paginates the heaviest 4-hop follow chains page by page —
each page costs only its own incremental any-k delay, and the already
emitted prefix is never recomputed (not even by a second client).

Part two upgrades to the production front door: the same engine behind
the HTTP gateway, with bearer-token auth, a per-client rate limit, and
a ``/metrics`` scrape — the deployment shape of ``repro serve
--http-port --auth-token --rate-limit``.

Run:  python examples/serving_topk.py
"""

from repro import Database, Engine
from repro.data.graphs import graph_statistics, twitter_like
from repro.serve import (
    AccessPolicy,
    GatewayThread,
    HttpServeClient,
    ServeClient,
    ServeClientError,
    ServerThread,
)


def main() -> None:
    edges = twitter_like(num_nodes=1_000, num_edges=8_000, seed=5)
    stats = graph_statistics(edges)
    print(
        f"follower network: {stats['nodes']} accounts, "
        f"{stats['edges']} follows, max degree {stats['max_degree']}"
    )
    engine = Engine(Database([edges.rename("E")]))

    # In production this is `python -m repro.cli serve`; here the server
    # runs on a daemon thread so one script shows both sides.
    with ServerThread(engine, result_budget=10_000) as (host, port):
        print(f"server listening on {host}:{port}\n")
        with ServeClient(host, port) as client:
            response = client.prepare(
                "analyst",
                "Q(a, b, c, d, e) :- E(a, b), E(b, c), E(c, d), E(d, e)",
                dioid="max-plus",  # heaviest chains first
            )
            cursor = response["cursor"]
            print(f"prepared ({response['strategy']}), paging top chains:")

            rank = 0
            for page_number in range(1, 4):
                page = client.fetch("analyst", cursor, 5)
                print(f"-- page {page_number} --")
                for row in page.results:
                    rank += 1
                    chain = " -> ".join(
                        str(row["assignment"][v]) for v in "abcde"
                    )
                    print(f"  #{rank:<3} influence {row['weight']:8.3f}  {chain}")
                if page.exhausted:
                    break

            # The ranked order is a protocol guarantee (max-plus ranks
            # by largest weight, so the stream is non-increasing).
            weights = []
            client2 = ServeClient(host, port)
            cursor2 = client2.prepare(
                "verifier",
                "Q(a, b, c, d, e) :- E(a, b), E(b, c), E(c, d), E(d, e)",
                dioid="max-plus",
            )["cursor"]
            page = client2.fetch("verifier", cursor2, 15)
            weights = [row["weight"] for row in page.results]
            assert weights == sorted(weights, reverse=True), "not ranked!"
            client2.close()
            print(
                f"\nsecond session re-read the same top-{len(weights)} "
                "without re-enumerating (shared prefix cache)"
            )
            served = client.stats()["engine"]
            print(
                f"engine: {served['binds']} preprocessing pass(es), "
                f"{served['stream_misses']} enumeration stream(s) "
                f"for {2} sessions"
            )

    # -- part two: the HTTP gateway front door ------------------------
    # Same engine, but behind auth + rate limiting at the edge; this is
    # what `repro serve --http-port --auth-token --rate-limit` deploys.
    policy = AccessPolicy(auth_token="s3cret", rate_limit=50.0)
    print("\ngateway: bearer auth + 50 req/s per client")
    with GatewayThread(engine, policy=policy, result_budget=10_000) as (
        host,
        port,
    ):
        try:
            with HttpServeClient(host, port) as anon:
                anon.prepare("intruder", "Q(a, b) :- E(a, b)")
        except ServeClientError as exc:
            print(f"unauthenticated prepare rejected at the edge: {exc.code}")

        with HttpServeClient(host, port, token="s3cret") as http:
            cursor = http.prepare(
                "analyst-http",
                "Q(a, b, c, d, e) :- E(a, b), E(b, c), E(c, d), E(d, e)",
                dioid="max-plus",
            )["cursor"]
            page = http.fetch("analyst-http", cursor, 5)
            print("top chains over HTTP (identical to the TCP ranking):")
            for rank, row in enumerate(page.results, start=1):
                chain = " -> ".join(str(row["assignment"][v]) for v in "abcde")
                print(f"  #{rank:<3} influence {row['weight']:8.3f}  {chain}")

            metrics = http.metrics()
            latency = metrics["latency"]["fetch"]
            print(
                f"gateway metrics: {metrics['gateway']['http_requests']} "
                f"HTTP requests, fetch p95 {latency['p95_ms']:.2f} ms, "
                f"{metrics['sessions']['session_count']} live session(s)"
            )
    engine.close()


if __name__ == "__main__":
    main()
