"""Chaos demo: the fault-tolerance layer recovering, end to end.

Runs four deterministic failure drills against one small any-k workload
and shows each one recovering with **bit-identical ranked output**:

1. a storm of transient ``database is locked`` errors absorbed by the
   SQLite retrier;
2. a pool worker killed mid shard build, respawned transparently;
3. a truncated ``.core`` warm-start container degrading to a cold
   rebuild;
4. a fetch deadline cutting a page short — the partial page is still
   the exact ranked prefix, and the cursor resumes where it stopped.

Everything is driven through :mod:`repro.util.faults` — the same
``REPRO_FAULTS`` rules CI's chaos-smoke lane uses — so each drill is
replayable byte for byte.

Run:  PYTHONPATH=src python examples/chaos_demo.py
"""

from __future__ import annotations

import tempfile
import os

from repro.data.backend import SQLiteBackend
from repro.data.generators import uniform_database
from repro.engine import Engine
from repro.query.builders import path_query
from repro.serve.resilience import COUNTERS
from repro.serve.session import SessionManager
from repro.util import faults

QUERY = "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"


def signature(results):
    return [(round(r.weight, 6), r.output_tuple) for r in results]


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    database = uniform_database(3, 30, domain_size=5, seed=11)
    baseline = signature(Engine(database).prepare(path_query(3)).iter())
    print(f"baseline: {len(baseline)} ranked answers (fault-free run)")

    with tempfile.TemporaryDirectory() as tmp:
        banner("1. sqlite busy storm")
        sqlite = SQLiteBackend(os.path.join(tmp, "demo.db"))
        for relation in database:
            sqlite.ingest(relation)
        engine = Engine(sqlite.database(), core_cache="off")
        with faults.injected("sqlite.execute=raise:2:3:busy"):
            results = signature(engine.prepare(path_query(3)).iter())
        assert results == baseline
        print(f"three injected 'database is locked' errors, "
              f"{COUNTERS.get('retries_sqlite')} retries, output identical")

        banner("2. worker killed mid shard build")
        token = os.path.join(tmp, "kill-once")
        open(token, "w").close()
        engine = Engine(database, core_cache="off")
        with faults.injected(f"worker.scan=exit:1:0:{token}"):
            results = signature(
                engine.prepare(
                    path_query(3), shards=2, shard_parallel="process"
                ).iter()
            )
        assert results == baseline
        print(f"one pool worker killed (os._exit), "
              f"{COUNTERS.get('worker_respawns')} respawn, output identical")

        banner("3. truncated .core container")
        core_path = os.path.join(tmp, "plans.core")
        warm = Engine(database, core_cache=core_path)
        list(warm.prepare(path_query(3)).iter())  # writes the core file
        payload = open(core_path, "rb").read()
        open(core_path, "wb").write(payload[: len(payload) // 2])
        cold = Engine(database, core_cache=core_path)
        results = signature(cold.prepare(path_query(3)).iter())
        assert results == baseline
        print(f"container cut to {len(payload) // 2} of {len(payload)} bytes; "
              "warm start degraded to a cold rebuild, output identical")

    banner("4. fetch deadline -> partial page")
    manager = SessionManager(Engine(database), slice_size=8)
    _, cursor = manager.open_cursor("demo", QUERY)
    outcome = manager.fetch("demo", cursor, 200, deadline_ms=0.05)
    served = len(outcome.results)
    assert outcome.deadline_exceeded
    assert signature(outcome.results) == baseline[:served]
    rest = manager.fetch("demo", cursor, 200 - served)
    assert signature(outcome.results + rest.results) == baseline[:200]
    print(f"deadline expired after {served} of 200 answers; the partial "
          "page is the exact ranked prefix and the cursor resumed cleanly")

    print("\nall drills recovered with bit-identical output")


if __name__ == "__main__":
    main()
