"""Quickstart: ranked enumeration of a 3-way join in ten lines.

Builds a tiny database, writes the query in Datalog notation, and pulls
ranked answers one at a time — the any-k interface: no k fixed up
front, results stream in weight order, stop whenever satisfied.

Also shows the engine API: ``Engine.prepare`` caches the physical plan
(join tree + built T-DP), so repeated executions — different k, fresh
iterations — pay only the enumeration phase, and mutating the database
transparently invalidates the cached plan.

Run:  python examples/quickstart.py
"""

import time

from repro import Database, Engine, Relation, parse_query, ranked_enumerate


def main() -> None:
    # Three weighted relations: think (user -> item), (item -> shop),
    # (shop -> city), with weights as costs.
    db = Database(
        [
            Relation("R", 2, [(1, 10), (1, 11), (2, 10)], [1.0, 4.0, 2.0]),
            Relation("S", 2, [(10, 100), (11, 100), (10, 101)], [3.0, 0.5, 6.0]),
            Relation("T", 2, [(100, 7), (101, 7), (100, 8)], [2.0, 1.0, 9.0]),
        ]
    )
    query = parse_query("Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)")

    print(f"query: {query}")
    print("answers in increasing total weight:")
    for rank, result in enumerate(ranked_enumerate(db, query), start=1):
        print(
            f"  #{rank}: weight={result.weight:5.1f}  "
            f"assignment={result.assignment}  witness={result.witness}"
        )

    # Any-k: the top answer alone costs only linear preprocessing.
    top = next(iter(ranked_enumerate(db, query, algorithm="lazy")))
    print(f"top answer again, via Lazy: {top.output_tuple} ({top.weight})")

    # Engine API: prepare once, execute many times.  The second and
    # third runs reuse the cached physical plan — preprocessing ~0.
    engine = Engine(db)
    prepared = engine.prepare(query, algorithm="lazy")
    for run in range(1, 4):
        start = time.perf_counter()
        was_bound = prepared.is_bound
        results = prepared.top(3)
        elapsed = (time.perf_counter() - start) * 1e3
        phase = "enumeration only" if was_bound else "preprocessing + enumeration"
        print(
            f"run {run}: top-3 in {elapsed:.3f} ms ({phase}); "
            f"best={results[0].output_tuple}"
        )
    print(f"plan: {prepared.logical.strategy}  "
          f"cached plans: {engine.cached_plans()}")

    # Mutation bumps the database version; the engine rebinds soundly.
    db["R"].add((3, 11), 0.2)
    fresh_best = prepared.first()
    print(f"after insert (db version {db.version}): "
          f"new best {fresh_best.output_tuple} ({fresh_best.weight})")


if __name__ == "__main__":
    main()
