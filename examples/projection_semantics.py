"""Projection semantics on a free-connex query (Section 8.1).

A star-schema scenario: orders join products join warehouses, but the
analyst only wants (product, warehouse) pairs ranked by their *cheapest*
realising order — the min-weight projection semantics.  The same query
under all-weight semantics returns one ranked answer per witness.

Run:  python examples/projection_semantics.py
"""

import itertools

from repro import Database, Relation, parse_query, ranked_enumerate


def main() -> None:
    orders = Relation(
        "Orders", 2,
        [(1, 100), (2, 100), (3, 101), (4, 101), (5, 102)],
        [9.0, 4.0, 7.0, 2.0, 5.0],
    )  # (order_id, product), weight = handling cost
    stock = Relation(
        "Stock", 2,
        [(100, 7), (100, 8), (101, 7), (102, 8)],
        [1.0, 3.0, 2.0, 1.5],
    )  # (product, warehouse), weight = shipping cost
    db = Database([orders, stock])
    query = parse_query("Q(product, wh) :- Orders(o, product), Stock(product, wh)")
    print(f"query: {query}")
    print(f"free-connex: {query.is_free_connex()}")

    print("\nmin-weight semantics (each pair once, cheapest witness):")
    for result in ranked_enumerate(db, query, projection="min_weight"):
        print(f"  cost {result.weight:4.1f}  product={result.assignment['product']}"
              f" warehouse={result.assignment['wh']}")

    print("\nall-weight semantics (one answer per witness):")
    results = ranked_enumerate(db, query, projection="all_weight")
    for result in itertools.islice(results, 6):
        print(f"  cost {result.weight:4.1f}  {result.output_tuple}")


if __name__ == "__main__":
    main()
