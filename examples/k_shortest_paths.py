"""k-lightest paths in a multi-stage DAG — the paper's DP view directly.

The ranked-enumeration framework is, at heart, a k-shortest-path
algorithm family for multi-stage DAGs (Section 3).  This example uses
the direct DP interface — no queries, no relations — to rank flight
itineraries through fixed legs: origin -> hub -> hub -> destination.

Run:  python examples/k_shortest_paths.py
"""

from repro.dp.direct import k_lightest_paths


def main() -> None:
    # Stage nodes: (airport, leg price when arriving there).  The first
    # stage's "price" is a checked-bag fee at the origin, say.
    stages = [
        [("BOS", 30.0), ("JFK", 45.0)],
        [("ORD", 120.0), ("ATL", 95.0), ("DFW", 110.0)],
        [("DEN", 80.0), ("PHX", 105.0)],
        [("SFO", 150.0), ("LAX", 130.0)],
    ]
    # Allowed legs between consecutive stages (by node index).
    edges = [
        {(0, 0), (0, 1), (1, 1), (1, 2)},          # east coast -> mid hubs
        {(0, 0), (1, 0), (1, 1), (2, 1)},          # mid -> mountain hubs
        {(0, 0), (0, 1), (1, 1)},                  # mountain -> west coast
    ]

    print("five cheapest itineraries:")
    for price, itinerary in k_lightest_paths(stages, edges, k=5):
        print(f"  ${price:7.2f}  " + " -> ".join(itinerary))

    # The same ranking, heaviest first, via the max-plus dioid:
    from repro.ranking.dioid import MAX_PLUS

    print("\nmost expensive itinerary (max-plus):")
    (price, itinerary), *_ = k_lightest_paths(
        stages, edges, k=1, dioid=MAX_PLUS
    )
    print(f"  ${price:7.2f}  " + " -> ".join(itinerary))


if __name__ == "__main__":
    main()
