"""Top-ranked 4-cycles in a trust network (the paper's Example 1).

The introduction's motivating query: in a who-trusts-whom network,
find the most suspicious trust cycles — here, the cycles with the most
*negative* total trust, surfaced first without materialising the O(n²)
cycle set.  The cyclic query goes through the simple-cycle heavy/light
decomposition and the UT-DP union automatically.

Run:  python examples/trust_cycles.py
"""

import itertools
import time

from repro import Database, cycle_query, ranked_enumerate
from repro.data.graphs import bitcoin_otc_like, graph_statistics


def main() -> None:
    edges = bitcoin_otc_like(num_nodes=800, num_edges=4_500, seed=3)
    stats = graph_statistics(edges)
    print(
        f"trust network: {stats['nodes']} users, {stats['edges']} trust "
        f"ratings, max degree {stats['max_degree']}"
    )
    db = Database([edges.rename("E")])
    query = cycle_query(4, relation="E")

    start = time.perf_counter()
    results = ranked_enumerate(db, query, algorithm="lazy")
    print("\nten most negative trust 4-cycles:")
    for result in itertools.islice(results, 10):
        cycle = " -> ".join(
            str(result.assignment[f"x{i}"]) for i in (1, 2, 3, 4)
        )
        print(f"  total trust {result.weight:6.1f}:  {cycle} -> start")
    elapsed = time.perf_counter() - start
    print(f"\n(top-10 in {elapsed * 1e3:.0f} ms, including the decomposition;")
    print(" the full cycle set was never materialised)")


if __name__ == "__main__":
    main()
