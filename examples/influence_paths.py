"""Heaviest influence chains in a follower network (max-plus ranking).

A data-exploration scenario over a Twitter-like graph whose edge
weights are PageRank sums: find the 4-hop follow chains through the
most influential accounts.  Ranking by *largest* total weight uses the
max-plus dioid — the same algorithms run unchanged on any selective
dioid (Section 6.4).

Run:  python examples/influence_paths.py
"""

import itertools

from repro import MAX_PLUS, Database, path_query, ranked_enumerate
from repro.data.graphs import graph_statistics, twitter_like


def main() -> None:
    edges = twitter_like(num_nodes=1_000, num_edges=8_000, seed=5)
    stats = graph_statistics(edges)
    print(
        f"follower network: {stats['nodes']} accounts, "
        f"{stats['edges']} follows, max degree {stats['max_degree']}"
    )
    db = Database([edges.rename("E")])
    query = path_query(4, relation="E")

    print("\nfive most influential 4-hop follow chains:")
    results = ranked_enumerate(db, query, dioid=MAX_PLUS, algorithm="take2")
    for result in itertools.islice(results, 5):
        chain = " -> ".join(
            str(result.assignment[f"x{i}"]) for i in range(1, 6)
        )
        print(f"  influence {result.weight:7.3f}:  {chain}")

    # Switching the ranking direction is a one-argument change: the
    # default tropical dioid surfaces the *least* influential chains.
    least = next(iter(ranked_enumerate(db, query, algorithm="take2")))
    print(f"\nleast influential chain weighs {least.weight:.3f}")


if __name__ == "__main__":
    main()
