"""Ranked graph-motif search via homomorphisms (Section 8.2).

Find the cheapest embeddings of a small pattern graph (a "motif") into
a weighted network — the minimum-cost homomorphism problem.  Cyclic
motifs are handled through the same decomposition machinery as cyclic
queries; acyclic motifs get the linear-time top-1 of Algorithm 3.

Run:  python examples/motif_ranking.py
"""

import itertools

from repro.data.graphs import preferential_attachment_digraph
from repro.homomorphism import min_cost_homomorphism, ranked_homomorphisms


def main() -> None:
    import random

    rng = random.Random(13)
    edges = preferential_attachment_digraph(150, 700, seed=13)
    weights = [round(rng.uniform(1.0, 20.0), 1) for _ in edges]
    print(f"network: 150 nodes, {len(edges)} weighted edges")

    # Motif 1 (acyclic): a "fork" — one account feeding two chains.
    fork = [("root", "a"), ("a", "b"), ("a", "c")]
    cost, mapping = min_cost_homomorphism(fork, edges, weights)
    print(f"\ncheapest fork embedding: cost={cost:.1f} mapping={mapping}")

    # Motif 2 (cyclic): a feedback triangle, ranked enumeration.
    triangle = [("x", "y"), ("y", "z"), ("z", "x")]
    print("\nfive cheapest feedback triangles:")
    stream = ranked_homomorphisms(triangle, edges, weights)
    found = False
    for cost, mapping in itertools.islice(stream, 5):
        found = True
        print(
            f"  cost {cost:6.1f}: "
            f"{mapping['x']} -> {mapping['y']} -> {mapping['z']} -> back"
        )
    if not found:
        print("  (no triangles in this network)")


if __name__ == "__main__":
    main()
