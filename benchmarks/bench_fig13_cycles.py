"""Fig 13 (a-d): TT(k) for 6-cycle queries via the UT-DP decomposition.

The 6-cycle exercises the full pipeline: heavy/light partitioning into
7 trees, per-tree T-DP with tie-breaking, and the union priority queue.
As in the paper, Recursive's TTL shines on the worst-case synthetic
instance, and the decomposition lets every any-k variant return early
results long before a batch join could finish.
"""

import pytest

from benchmarks.conftest import (
    ANYK_ALGORITHMS,
    WITH_BATCH,
    cached_workload,
    run_ttk_benchmark,
)
from repro.experiments.workloads import (
    bitcoin,
    synthetic_large,
    synthetic_small,
    twitter,
)

FIGURE = "fig13"


@pytest.mark.parametrize("algorithm", WITH_BATCH)
def test_synthetic_small_ttl(benchmark, algorithm):
    workload = cached_workload(
        f"{FIGURE}/cycle6-small", lambda: synthetic_small("cycle", 6)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
def test_synthetic_large_topk(benchmark, algorithm):
    workload = cached_workload(
        f"{FIGURE}/cycle6-large", lambda: synthetic_large("cycle", 6)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
def test_bitcoin_topk(benchmark, algorithm):
    workload = cached_workload(
        f"{FIGURE}/cycle6-bitcoin", lambda: bitcoin("cycle", 6)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
def test_twitter_topk(benchmark, algorithm):
    workload = cached_workload(
        f"{FIGURE}/cycle6-twitter", lambda: twitter("cycle", 6)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)
