"""Fig 5: the complexity table, regenerated empirically.

For each algorithm we measure on a 4-path the quantities the table
bounds analytically:

* TTF — preprocessing + first result (paper: O(l n) for all but Eager,
  which pays an extra sort);
* Delay(k) — mean delay over the first k results;
* TTL — full ranked output on a small instance (paper: Recursive wins
  worst-case outputs);
* MEM(k) — candidate-queue growth (for anyK-part) / memo size (for
  Recursive) after k results.

The printed table in ``benchmarks/results/fig05.txt`` mirrors the
paper's rows; the pytest-benchmark table carries the TTF timings.
"""

import time

import pytest

from benchmarks.conftest import (
    WITH_BATCH,
    cached_workload,
    pedantic,
    record_result,
)
from repro.anyk.base import make_enumerator
from repro.anyk.partition import AnyKPart
from repro.data.generators import uniform_database
from repro.dp.builder import build_tdp_for_query
from repro.query.builders import path_query
from repro.util.counters import OpCounter

FIGURE = "fig05"
K = 2_000


def _workload():
    from repro.experiments.workloads import Workload

    db = uniform_database(4, 5_000, seed=5)
    return Workload("fig05/4-path", db, path_query(4), K)


def _ttl_workload():
    from repro.experiments.workloads import Workload

    db = uniform_database(4, 600, domain_size=150, seed=5)
    return Workload("fig05/4-path-ttl", db, path_query(4), None)


@pytest.mark.parametrize("algorithm", WITH_BATCH)
def test_complexity_row(benchmark, algorithm):
    workload = cached_workload(f"{FIGURE}/main", _workload)
    ttl_workload = cached_workload(f"{FIGURE}/ttl", _ttl_workload)

    def measure_row():
        counter = OpCounter()
        start = time.perf_counter()
        tdp = build_tdp_for_query(workload.database, workload.query)
        enum = make_enumerator(tdp, algorithm, counter=counter)
        iterator = iter(enum)
        next(iterator)
        ttf = time.perf_counter() - start
        for _ in range(K - 1):
            next(iterator)
        ttk = time.perf_counter() - start
        mem = (
            enum.peak_candidates()
            if isinstance(enum, AnyKPart)
            else counter.pq_push
        )
        return ttf, ttk, mem

    ttf, ttk, mem = pedantic(benchmark, measure_row)

    # TTL on the small instance (full ranked output).
    start = time.perf_counter()
    tdp = build_tdp_for_query(ttl_workload.database, ttl_workload.query)
    enum = make_enumerator(tdp, algorithm)
    produced = sum(1 for _ in enum)
    ttl = time.perf_counter() - start

    delay_us = (ttk - ttf) / max(1, K - 1) * 1e6
    benchmark.extra_info["ttf_ms"] = round(ttf * 1e3, 2)
    benchmark.extra_info["delay_us"] = round(delay_us, 2)
    record_result(
        FIGURE,
        f"{algorithm:>10}: TTF={ttf * 1e3:9.2f} ms  "
        f"Delay(avg over {K})={delay_us:9.2f} us  "
        f"TTL({produced} results)={ttl:7.3f} s  MEM(k)~{mem} entries",
    )
