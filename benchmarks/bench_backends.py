"""Storage backends head-to-head: cold load, warm plan, enumeration.

One dataset (a 4-path over uniform relations), one top-k query, three
ways of storing the tuples:

* ``memory``       — CSV parsed into in-memory lists (the historical path);
* ``sqlite``       — CSV bulk-ingested into a fresh SQLite file, query
                     bound against the persistent store;
* ``sqlite-warm``  — the already-populated SQLite file merely reopened
                     (the cross-process warm start: no ingestion at all).

Each cell reports the three phases separately: ``load_ms`` (build/open
the database), ``preprocess_ms`` (plan bind: join tree + T-DP
bottom-up), and ``enum_ms`` — plus a warm in-process re-run
(``warm_enum_ms``) over the same prepared plan, whose preprocessing
must be ~0 regardless of backend.

Set ``BENCH_SMOKE=1`` to shrink the dataset for CI smoke runs (the
assertions still execute, so a backend perf/correctness regression
fails the job quickly).
"""

from __future__ import annotations

import os
import shutil

import pytest

from benchmarks.conftest import pedantic, record_result
from repro.data.backend import SQLiteBackend
from repro.data.generators import uniform_database
from repro.data.io import load_database, save_database
from repro.engine import Engine
from repro.experiments.runner import measure_cold_start, measure_enumeration
from repro.query.builders import path_query

FIGURE = "backends"
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
RELATIONS = 4
TUPLES = 200 if SMOKE else 4_000
K = 100 if SMOKE else 1_000
QUERY = path_query(RELATIONS)


@pytest.fixture(scope="module")
def dataset(tmp_path_factory) -> dict:
    """Generate the dataset once; persist it as CSV and as a SQLite file."""
    root = tmp_path_factory.mktemp("bench_backends")
    csv_dir = os.path.join(str(root), "csv")
    db_path = os.path.join(str(root), "data.db")
    database = uniform_database(
        RELATIONS, TUPLES, domain_size=max(2, TUPLES // 8), seed=11
    )
    save_database(database, csv_dir)
    with SQLiteBackend(db_path) as backend:
        for relation in database:
            backend.ingest(relation)
    return {"csv": csv_dir, "db": db_path}


def _factory(kind: str, dataset: dict, scratch: str):
    """The database-opening step each backend pays on a cold start."""
    if kind == "memory":
        return lambda: load_database(dataset["csv"])
    if kind == "sqlite":
        def build():
            path = os.path.join(scratch, "fresh.db")
            if os.path.exists(path):
                os.remove(path)
            return load_database(dataset["csv"], backend=SQLiteBackend(path))
        return build
    if kind == "sqlite-warm":
        def reopen():
            path = os.path.join(scratch, "warm.db")
            if not os.path.exists(path):
                shutil.copy(dataset["db"], path)
            return SQLiteBackend(path).database()
        return reopen
    raise AssertionError(kind)


@pytest.mark.parametrize("kind", ["memory", "sqlite", "sqlite-warm"])
def test_backend_cold_and_warm(benchmark, dataset, tmp_path, kind):
    factory = _factory(kind, dataset, str(tmp_path))

    def job():
        return measure_cold_start(factory, QUERY, "take2", K)

    cold = pedantic(benchmark, job, rounds=1 if SMOKE else 3)
    assert cold.produced > 0

    # Warm in-process pass: same database, prepared plan reused.
    engine = Engine(factory())
    prepared = engine.prepare(QUERY, algorithm="take2")
    prepared.bind()
    warm = measure_enumeration(prepared, K)
    assert warm.preprocess == 0.0, "warm run must skip preprocessing"
    assert warm.produced == cold.produced
    engine.close()

    benchmark.extra_info["backend"] = kind
    benchmark.extra_info["n_tuples"] = TUPLES * RELATIONS
    benchmark.extra_info["load_ms"] = round(cold.load * 1e3, 3)
    benchmark.extra_info["preprocess_ms"] = round(cold.preprocess * 1e3, 3)
    benchmark.extra_info["enum_ms"] = round(cold.enumeration * 1e3, 3)
    benchmark.extra_info["warm_enum_ms"] = round(warm.enumeration * 1e3, 3)
    record_result(
        FIGURE,
        f"{kind:<12} n={TUPLES * RELATIONS:<7} "
        f"load={cold.load * 1e3:8.2f} ms  "
        f"pre={cold.preprocess * 1e3:8.2f} ms  "
        f"enum={cold.enumeration * 1e3:8.2f} ms  |  "
        f"warm enum={warm.enumeration * 1e3:8.2f} ms  "
        f"({cold.produced} results)",
    )
