"""Fig 10 (a-l): TT(k) for all size-4 queries.

Twelve cells, as in the paper: {4-path, 4-star, 4-cycle} x {synthetic
small (full ranked output), synthetic large (top n/2), Bitcoin-like,
Twitter-like}.  Batch participates only in the small-synthetic cells —
on the large/graph cells the full output is infeasible, which is the
paper's own observation ("Batch runs out of memory or we terminate it").

Expected shapes (paper Section 7.1):

* small synthetic TTL: Recursive finishes first on paths/cycles (suffix
  sharing), loses its edge on stars;
* small k on every cell: Lazy is the consistent top performer;
* All underperforms throughout (candidate flooding).
"""

import pytest

from benchmarks.conftest import (
    ANYK_ALGORITHMS,
    WITH_BATCH,
    cached_workload,
    run_ttk_benchmark,
)
from repro.experiments.workloads import (
    bitcoin,
    synthetic_large,
    synthetic_small,
    twitter,
)

FIGURE = "fig10"


@pytest.mark.parametrize("algorithm", WITH_BATCH)
@pytest.mark.parametrize("shape", ["path", "star", "cycle"])
def test_synthetic_small_ttl(benchmark, shape, algorithm):
    workload = cached_workload(
        f"{FIGURE}/{shape}-small", lambda: synthetic_small(shape, 4)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
@pytest.mark.parametrize("shape", ["path", "star", "cycle"])
def test_synthetic_large_topk(benchmark, shape, algorithm):
    workload = cached_workload(
        f"{FIGURE}/{shape}-large", lambda: synthetic_large(shape, 4)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
@pytest.mark.parametrize("shape", ["path", "star", "cycle"])
def test_bitcoin_topk(benchmark, shape, algorithm):
    workload = cached_workload(
        f"{FIGURE}/{shape}-bitcoin", lambda: bitcoin(shape, 4)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
@pytest.mark.parametrize("shape", ["path", "star", "cycle"])
def test_twitter_topk(benchmark, shape, algorithm):
    workload = cached_workload(
        f"{FIGURE}/{shape}-twitter", lambda: twitter(shape, 4)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)
