"""Repeated execution of a prepared query: preprocessing amortised away.

The engine's core serving claim: ``Engine.prepare`` pays the
preprocessing phase (join tree / decomposition + T-DP bottom-up) once,
and every later execution of the :class:`PreparedQuery` runs only the
enumeration phase.  This bench runs the same top-k query cold and then
repeatedly warm, and reports both sides: the cold run's preprocessing
time and the warm runs' (≈ 0) preprocessing plus enumeration-only delay.
"""

import pytest

from benchmarks.conftest import cached_workload, pedantic, record_result
from repro.engine import Engine
from repro.experiments.runner import measure_enumeration, measure_ttk
from repro.experiments.workloads import synthetic_large

FIGURE = "prepared_reuse"
REPETITIONS = 5


def _workload():
    return synthetic_large("path", 4, k=1_000)


@pytest.mark.parametrize("algorithm", ["take2", "lazy"])
def test_prepared_query_reuse(benchmark, algorithm):
    workload = cached_workload(f"{FIGURE}/wl", _workload)
    cold = measure_ttk(
        workload.database, workload.query, algorithm, workload.k
    )
    engine = Engine(workload.database)
    prepared = engine.prepare(workload.query, algorithm=algorithm)
    prepared.bind()

    def job():
        return measure_enumeration(prepared, workload.k)

    warm = pedantic(benchmark, job, rounds=REPETITIONS)

    assert warm.preprocess == 0.0, "warm run must skip preprocessing"
    assert warm.produced == cold.produced

    benchmark.extra_info["workload"] = workload.name
    benchmark.extra_info["cold_preprocess_ms"] = round(cold.preprocess * 1e3, 3)
    benchmark.extra_info["cold_enum_ms"] = round(cold.enumeration * 1e3, 3)
    benchmark.extra_info["warm_preprocess_ms"] = round(warm.preprocess * 1e3, 3)
    benchmark.extra_info["warm_enum_ms"] = round(warm.enumeration * 1e3, 3)
    benchmark.extra_info["warm_ttf_ms"] = round(warm.ttf * 1e3, 3)
    record_result(
        FIGURE,
        f"{workload.name:<24} {algorithm:>10}: "
        f"cold pre={cold.preprocess * 1e3:8.2f} ms  "
        f"cold enum={cold.enumeration * 1e3:8.2f} ms  |  "
        f"warm pre={warm.preprocess * 1e3:.2f} ms  "
        f"warm enum={warm.enumeration * 1e3:8.2f} ms  "
        f"warm TTF={warm.ttf * 1e3:7.2f} ms  "
        f"({warm.produced} results x{REPETITIONS} reps)",
    )
