"""Serving under concurrent load: latency percentiles and throughput.

One engine, one live asyncio server (in-process, thread-hosted), N
concurrent clients — each with its own TCP connection and named session
— paginating a top-K query in fixed-size pages.  Reported per session
count: p50/p95/p99 fetch latency and aggregate answers/sec.

Two correctness gates ride along (they are the ISSUE-3 acceptance
criteria, so a regression fails the benchmark, not just skews it):

* every concurrent session's ranked prefix is **bit-identical** to a
  single-session baseline run — concurrency must not perturb ranking;
* ``prepared.top(5)`` followed by ``prepared.top(100)`` performs zero
  duplicate enumeration steps (OpCounter-attributed), i.e. the shared
  emitted-prefix cache works under the serving path too.

Clients mix any-k algorithms (half ``take2``, half ``lazy``), so the
load exercises distinct memoized streams over one shared physical plan.

Set ``BENCH_SMOKE=1`` for the CI-sized run (assertions still execute).
"""

from __future__ import annotations

import itertools
import os
import threading
import time

import pytest

from benchmarks.conftest import pedantic, record_result
from repro.data.generators import uniform_database
from repro.engine import Engine
from repro.experiments.runner import LatencyStats
from repro.serve import ServeClient, ServerThread
from repro.util.counters import OpCounter

FIGURE = "serving"
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
RELATIONS = 3
TUPLES = 300 if SMOKE else 3_000
K = 120 if SMOKE else 1_000
PAGE = 20 if SMOKE else 50
SESSION_COUNTS = [1, 8] if SMOKE else [1, 2, 4, 8, 16]
QUERY_TEXT = "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"


def signature(results):
    return [(round(r.weight, 6), r.output_tuple) for r in results]


def wire_signature(rows):
    return [
        (
            round(row["weight"], 6),
            tuple(row["assignment"][v] for v in ("x1", "x2", "x3", "x4")),
        )
        for row in rows
    ]


@pytest.fixture(scope="module")
def engine() -> Engine:
    database = uniform_database(
        RELATIONS, TUPLES, domain_size=max(2, TUPLES // 10), seed=13
    )
    engine = Engine(database)
    # Pay preprocessing before the timed load (the serving steady state).
    engine.prepare(QUERY_TEXT, algorithm="take2").bind()
    return engine


@pytest.fixture(scope="module")
def baseline(engine) -> list:
    """Single-session ranked prefix every concurrent session must match."""
    return signature(
        itertools.islice(engine.prepare(QUERY_TEXT, algorithm="take2").iter(), K)
    )


@pytest.fixture(scope="module")
def server(engine):
    with ServerThread(engine, slice_size=32, max_sessions=128) as address:
        yield address


def _client_job(
    address: tuple,
    name: str,
    algorithm: str,
    latencies: list[float],
    outputs: dict,
    errors: list,
) -> None:
    try:
        with ServeClient(*address, timeout=120) as client:
            cursor = client.prepare(name, QUERY_TEXT, algorithm=algorithm)[
                "cursor"
            ]
            rows: list[dict] = []
            while len(rows) < K:
                start = time.perf_counter()
                page = client.fetch(name, cursor, min(PAGE, K - len(rows)))
                latencies.append(time.perf_counter() - start)
                rows.extend(page.results)
                if page.exhausted:
                    break
            outputs[name] = wire_signature(rows[:K])
    except Exception as exc:  # pragma: no cover - failure detail
        errors.append(exc)


@pytest.mark.parametrize("sessions", SESSION_COUNTS)
def test_concurrent_sessions_latency(benchmark, engine, baseline, server, sessions):
    def job() -> LatencyStats:
        latencies: list[float] = []
        outputs: dict = {}
        errors: list = []
        threads = [
            threading.Thread(
                target=_client_job,
                args=(
                    server,
                    f"bench-{sessions}-{i}",
                    "take2" if i % 2 == 0 else "lazy",
                    latencies,
                    outputs,
                    errors,
                ),
            )
            for i in range(sessions)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        elapsed = time.perf_counter() - start
        assert not errors, errors
        assert len(outputs) == sessions
        # Bit-identical ranked prefixes vs. the single-session baseline.
        for name, rows in outputs.items():
            assert rows == baseline[: len(rows)], (
                f"{name} diverged from the single-session prefix"
            )
        return LatencyStats.from_samples(
            latencies, answers=sessions * K, elapsed=elapsed
        )

    stats = pedantic(benchmark, job, rounds=1 if SMOKE else 3)
    benchmark.extra_info.update(stats.as_dict())
    benchmark.extra_info["sessions"] = sessions
    record_result(
        FIGURE,
        f"sessions={sessions:<3} page={PAGE:<4} K={K:<6} {stats.row()}",
    )


def test_top_prefix_reuse_under_serving(engine):
    """ISSUE-3 acceptance: top(5) then top(100) — zero duplicate steps."""
    prepared = engine.prepare(QUERY_TEXT, algorithm="take2")
    prepared.invalidate()  # fresh stream: measure from a cold prefix
    c5, c100 = OpCounter(), OpCounter()
    top5 = prepared.top(5, counter=c5)
    top100 = prepared.top(100, counter=c100)
    fresh = OpCounter()
    list(itertools.islice(prepared.iter(fresh), 100))
    duplicates = {
        op: getattr(c5, op) + getattr(c100, op) - getattr(fresh, op)
        for op in OpCounter.__slots__
    }
    assert all(extra == 0 for extra in duplicates.values()), duplicates
    assert signature(top100[:5]) == signature(top5)
    record_result(
        FIGURE,
        f"prefix reuse: top(5)+top(100) == one top(100)  "
        f"({fresh.total_pq_ops()} pq ops total, 0 duplicated)",
    )


def test_overload_shedding_row(engine, baseline):
    """Informational: serving under a deliberately tiny in-flight cap.

    An ``AccessPolicy(max_in_flight=1)`` forces the edge to shed
    concurrent fetches with 503 + ``Retry-After``; clients opt into
    retries and wait the hint out.  The correctness gate is the same
    bit-identity check as the latency rows — shedding plus retry must be
    lossless — while the shed count and wall-clock are reported as an
    informational row (no latency gate: this run *is* degraded by
    design).
    """
    from repro.serve.policy import AccessPolicy

    sessions = 4 if SMOKE else 8
    policy = AccessPolicy(max_in_flight=1)
    with ServerThread(
        engine, slice_size=32, max_sessions=128, policy=policy
    ) as address:
        outputs: dict = {}
        errors: list = []

        def job(name: str) -> None:
            try:
                with ServeClient(*address, timeout=120, retries=100) as client:
                    cursor = client.prepare(name, QUERY_TEXT)["cursor"]
                    rows: list[dict] = []
                    while len(rows) < K:
                        page = client.fetch(name, cursor, min(PAGE, K - len(rows)))
                        rows.extend(page.results)
                        if page.exhausted:
                            break
                    outputs[name] = wire_signature(rows[:K])
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=job, args=(f"shed-{i}",))
            for i in range(sessions)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        elapsed = time.perf_counter() - start
        shed = policy.shed
    assert not errors, errors
    assert len(outputs) == sessions
    for name, rows in outputs.items():
        assert rows == baseline[: len(rows)], (
            f"{name} diverged under load shedding"
        )
    record_result(
        FIGURE,
        f"overload  sessions={sessions:<3} max_in_flight=1 shed={shed:<5} "
        f"elapsed={elapsed:.2f}s  (informational; bit-identity held)",
    )
