#!/usr/bin/env python
"""Hot-path benchmark: compiled flat core vs. object-graph enumeration.

Measures the enumeration phase of every any-k variant on fixed-seed
workloads, on both cores over the *same* bound T-DP:

* ``object`` — the object-graph reference path (``flat=False``);
* ``flat``   — the compiled flat core (the production default).

Per variant x query shape it records answers/sec, TTF (enumerator
creation to first answer, warm plan), TTL (creation to last requested
answer), and per-answer delay p50/p99 — and asserts the two cores
produce bit-identical ranked prefixes before trusting any number.

Results merge into ``BENCH_hotpath.json`` at the repo root (one section
per mode, ``full`` and ``smoke``), which is committed so every future
PR has a recorded perf trajectory to compare against.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py          # full mode
    BENCH_SMOKE=1 python benchmarks/bench_hotpath.py           # CI-sized
    BENCH_SMOKE=1 BENCH_CHECK=1 python benchmarks/bench_hotpath.py
        # regression gate: fail (exit 1) if any variant's flat
        # answers/sec drops >30% vs the committed same-mode numbers
        # (override the tolerance with BENCH_TOLERANCE=0.4)
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.anyk.base import make_enumerator  # noqa: E402
from repro.data.generators import uniform_database  # noqa: E402
from repro.dp.builder import build_tdp_for_query  # noqa: E402
from repro.dp.flat import compile_tdp  # noqa: E402
from repro.experiments.runner import percentile  # noqa: E402
from repro.query.builders import path_query, star_query  # noqa: E402
from repro.ranking.dioid import TROPICAL, LexicographicDioid  # noqa: E402

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
CHECK = os.environ.get("BENCH_CHECK", "") not in ("", "0")
TOLERANCE = float(os.environ.get("BENCH_TOLERANCE", "0.30"))
MODE = "smoke" if SMOKE else "full"
JSON_PATH = os.path.join(ROOT, "BENCH_hotpath.json")

VARIANTS = ["recursive", "take2", "lazy", "eager", "all"]
REPEATS = 3 if SMOKE else 5
#: Prefix length compared bit-exactly between the two cores per cell.
VERIFY_PREFIX = 200


def lex_lift(dioid: LexicographicDioid):
    """Lift scalar weights into per-relation lexicographic unit vectors."""
    def lift(atom, _values, raw_weight):
        position = int(atom.relation_name.lstrip("R")) - 1
        return dioid.unit_vector(position % dioid.dimensions, raw_weight)

    return lift


def workload_cells():
    """(cell name, tdp factory, k) triples — all seeds fixed."""
    if SMOKE:
        # Sized so one cell runs in seconds but per-run noise stays
        # well under the gate tolerance (sub-ms runs flap too much).
        specs = [
            ("4-path[tropical]", "path", 4, 1_000, 500, TROPICAL),
            ("4-star[tropical]", "star", 4, 800, 400, TROPICAL),
            ("4-path[lexicographic]", "path", 4, 500, 200, None),
        ]
    else:
        specs = [
            ("4-path[tropical]", "path", 4, 10_000, 500, TROPICAL),
            ("4-path-topk5000[tropical]", "path", 4, 10_000, 5_000, TROPICAL),
            ("4-path-full[tropical]", "path", 4, 800, None, TROPICAL),
            ("4-star[tropical]", "star", 4, 5_000, 500, TROPICAL),
            ("4-path[lexicographic]", "path", 4, 1_000, 300, None),
        ]
    for name, shape, size, n, k, dioid in specs:
        yield name, shape, size, n, k, dioid


def build_cell(shape: str, size: int, n: int, dioid):
    database = uniform_database(size, n, domain_size=max(2, n // 4), seed=93)
    query = path_query(size) if shape == "path" else star_query(size)
    lift = None
    if dioid is None:  # lexicographic fallback-parity cell
        dioid = LexicographicDioid(size)
        lift = lex_lift(dioid)
    t0 = time.perf_counter()
    tdp = build_tdp_for_query(database, query, dioid=dioid, lift=lift)
    build_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    compiled = compile_tdp(tdp)
    compile_seconds = time.perf_counter() - t0
    return tdp, compiled, build_seconds, compile_seconds


def run_once(tdp, algorithm: str, flat, k: int | None):
    """One warm enumeration run; returns (produced, ttf, ttl, delays)."""
    gc.collect()
    clock = time.perf_counter
    start = clock()
    enumerator = make_enumerator(tdp, algorithm, flat=flat)
    delays = []
    push_delay = delays.append
    previous = start
    produced = 0
    for _result in enumerator:
        now = clock()
        push_delay(now - previous)
        previous = now
        produced += 1
        if k is not None and produced >= k:
            break
    if not produced:
        raise RuntimeError(f"empty output for {algorithm}")
    return produced, delays[0], previous - start, delays


def measure_pair(tdp, algorithm: str, k: int | None) -> tuple[dict, dict]:
    """Median-of-``REPEATS`` metrics for (object, flat) on one variant.

    One untimed warm-up run per core, then the timed repeats strictly
    *interleaved* (object, flat, object, flat, ...) so slow CPU-state
    drift over a long benchmark session cancels out of the ratio
    instead of biasing whichever core ran last.
    """
    samples = {False: ([], [], [], []), None: ([], [], [], [])}
    produced = 0
    for flat in (False, None):
        run_once(tdp, algorithm, flat, k)  # warm-up, untimed
    for _ in range(REPEATS):
        for flat in (False, None):
            produced, ttf, ttl, delays = run_once(tdp, algorithm, flat, k)
            throughput, ttfs, ttls, pooled = samples[flat]
            throughput.append(produced / ttl)
            ttfs.append(ttf)
            ttls.append(ttl)
            pooled.extend(delays)

    def summarise(flat) -> dict:
        # Best-of-N (pytest-benchmark's convention: min time / max
        # rate): the fastest observed run reflects the code's true
        # cost, everything slower is scheduler/container noise.
        throughput, ttfs, ttls, pooled = samples[flat]
        return {
            "produced": produced,
            "answers_per_sec": round(max(throughput), 1),
            "answers_per_sec_median": round(statistics.median(throughput), 1),
            "ttf_ms": round(min(ttfs) * 1e3, 4),
            "ttl_ms": round(min(ttls) * 1e3, 3),
            "delay_p50_us": round(percentile(pooled, 50) * 1e6, 3),
            "delay_p99_us": round(percentile(pooled, 99) * 1e6, 3),
        }

    return summarise(False), summarise(None)


def signature(tdp, algorithm: str, flat, k: int):
    results = []
    for result in make_enumerator(tdp, algorithm, flat=flat):
        results.append((result.weight, result.key, result.states))
        if len(results) >= k:
            break
    return results


def run_benchmark() -> dict:
    cells = {}
    for name, shape, size, n, k, dioid in workload_cells():
        tdp, compiled, build_s, compile_s = build_cell(shape, size, n, dioid)
        verify_k = min(VERIFY_PREFIX, k or VERIFY_PREFIX)
        cell = {
            "shape": shape,
            "n": n,
            "k": k,
            "dioid": "lexicographic" if dioid is None else repr(tdp.dioid),
            "compiled": compiled is not None,
            "build_ms": round(build_s * 1e3, 2),
            "compile_ms": round(compile_s * 1e3, 2),
            "variants": {},
        }
        print(f"== {name}  (n={n}, k={k or 'all'}, "
              f"build {cell['build_ms']} ms, compile {cell['compile_ms']} ms)")
        for algorithm in VARIANTS:
            # Bit-identical prefix gate before any timing is trusted.
            flat_sig = signature(tdp, algorithm, None, verify_k)
            object_sig = signature(tdp, algorithm, False, verify_k)
            assert flat_sig == object_sig, (
                f"flat/object divergence: {name} {algorithm}"
            )
            object_metrics, flat_metrics = measure_pair(tdp, algorithm, k)
            speedup = round(
                flat_metrics["answers_per_sec"]
                / object_metrics["answers_per_sec"],
                2,
            )
            ttf_ratio = round(
                flat_metrics["ttf_ms"] / object_metrics["ttf_ms"], 3
            ) if object_metrics["ttf_ms"] else None
            cell["variants"][algorithm] = {
                "object": object_metrics,
                "flat": flat_metrics,
                "speedup_answers_per_sec": speedup,
                "ttf_ratio_flat_vs_object": ttf_ratio,
            }
            print(
                f"  {algorithm:>10}: object {object_metrics['answers_per_sec']:>10.0f}/s"
                f"  flat {flat_metrics['answers_per_sec']:>10.0f}/s"
                f"  speedup {speedup:>5.2f}x"
                f"  ttf {object_metrics['ttf_ms']:.2f}->"
                f"{flat_metrics['ttf_ms']:.2f} ms"
                f"  delay p99 {object_metrics['delay_p99_us']:.0f}->"
                f"{flat_metrics['delay_p99_us']:.0f} us"
            )
        cells[name] = cell
    return {
        "python": sys.version.split()[0],
        "repeats": REPEATS,
        "cells": cells,
    }


def run_coldstart() -> dict:
    """Warm-start-by-mmap vs cold rebuild on the 4-path SQLite workload.

    Cold = fresh backend + engine with persistence off: prepare, bind
    (T-DP build + flat compile), first answer.  Warm = fresh backend +
    engine over an already-written ``<db>.core``: the bind maps the
    compiled arrays and skips the build entirely.  Both repeat with a
    brand-new engine each time (best-of), so neither side benefits from
    in-process caches — this is the cross-process serving-boot path.
    """
    import shutil
    import tempfile

    from repro.data.backend import SQLiteBackend
    from repro.engine import Engine

    n = 8_000 if SMOKE else 20_000
    size = 4
    tmp = tempfile.mkdtemp(prefix="bench_coldstart_")
    path = os.path.join(tmp, "coldstart.db")
    try:
        database = uniform_database(size, n, domain_size=max(2, n // 4), seed=93)
        backend = SQLiteBackend(path)
        for relation in database.relations.values():
            backend.ingest(relation)
        backend.close()
        query = path_query(size)

        def first_answer(core_cache: str) -> float:
            gc.collect()
            start = time.perf_counter()
            engine = Engine.from_backend(
                SQLiteBackend(path), core_cache=core_cache
            )
            prepared = engine.prepare(query, algorithm="take2")
            result = prepared.first()
            elapsed = time.perf_counter() - start
            assert result is not None
            engine.close()
            return elapsed

        cold = [first_answer("off") for _ in range(REPEATS)]
        # Write the core once, then time warm binds against it.
        write_engine = Engine.from_backend(SQLiteBackend(path))
        write_engine.prepare(query, algorithm="take2").bind()
        assert write_engine.stats.core_writes == 1
        write_engine.close()
        warm = [first_answer("auto") for _ in range(REPEATS)]
        # The timed warm runs must actually have hit the core file.
        check = Engine.from_backend(SQLiteBackend(path))
        check.prepare(query, algorithm="take2").bind()
        assert check.stats.core_hits == 1
        core_bytes = os.path.getsize(path + ".core")
        check.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    cold_ms = round(min(cold) * 1e3, 3)
    warm_ms = round(min(warm) * 1e3, 3)
    speedup = round(cold_ms / warm_ms, 2) if warm_ms else None
    print(
        f"== coldstart 4-path sqlite (n={n}): rebuild TTF {cold_ms} ms, "
        f"mmap warm TTF {warm_ms} ms, {speedup}x"
    )
    return {
        "shape": "path",
        "n": n,
        "core_file_bytes": core_bytes,
        "rebuild_ttf_ms": cold_ms,
        "mmap_warm_ttf_ms": warm_ms,
        "speedup_ttf": speedup,
    }


def coldstart_gate(coldstart: dict) -> list[str]:
    """Warm-start TTF must stay >=5x below the cold-rebuild TTF."""
    cold = coldstart["rebuild_ttf_ms"]
    warm = coldstart["mmap_warm_ttf_ms"]
    if warm * 5.0 > cold:
        return [
            f"coldstart: mmap warm TTF {warm} ms is not >=5x below the "
            f"rebuild TTF {cold} ms ({coldstart['speedup_ttf']}x)"
        ]
    return []


def regression_gate(previous: dict, current: dict) -> list[str]:
    """Flat answers/sec must not regress > TOLERANCE vs committed numbers.

    A variant fails only when *both* signals regress beyond tolerance:

    * absolute flat ``answers_per_sec`` vs the committed baseline, and
    * the flat/object speedup ratio vs the committed ratio.

    The ratio is measured against the object core *in the same run*, so
    it is machine-neutral: a CI runner that is simply slower than the
    machine that recorded the baseline depresses both cores equally and
    keeps the ratio intact, while a genuine flat-core regression drags
    the absolute number *and* the ratio down together.
    """
    failures = []
    old_cells = previous.get("modes", {}).get(MODE, {}).get("cells", {})
    for cell_name, cell in current["cells"].items():
        old_cell = old_cells.get(cell_name)
        if not old_cell:
            continue
        for variant, data in cell["variants"].items():
            old = old_cell.get("variants", {}).get(variant)
            if not old:
                continue
            baseline = old["flat"]["answers_per_sec"]
            now = data["flat"]["answers_per_sec"]
            absolute_regressed = now < baseline * (1.0 - TOLERANCE)
            old_ratio = old.get("speedup_answers_per_sec") or 0.0
            new_ratio = data.get("speedup_answers_per_sec") or 0.0
            ratio_regressed = new_ratio < old_ratio * (1.0 - TOLERANCE)
            if absolute_regressed and ratio_regressed:
                failures.append(
                    f"{cell_name}/{variant}: flat {now:.0f}/s vs committed "
                    f"{baseline:.0f}/s (-{(1 - now / baseline) * 100:.0f}%) "
                    f"and speedup {new_ratio:.2f}x vs committed "
                    f"{old_ratio:.2f}x (tolerance {TOLERANCE * 100:.0f}%)"
                )
    return failures


def main() -> int:
    previous = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            previous = json.load(handle)

    current = run_benchmark()
    # Top-level in the mode dict (NOT under cells: the regression gate
    # iterates cell["variants"], which coldstart rows do not have).
    current["coldstart"] = run_coldstart()

    failures = []
    if CHECK:
        failures = regression_gate(previous, current)
        failures += coldstart_gate(current["coldstart"])

    merged = {"benchmark": "hotpath", "modes": previous.get("modes", {})}
    merged["modes"][MODE] = current
    with open(JSON_PATH, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {JSON_PATH} ({MODE} mode)")

    headline = current["cells"].get("4-path[tropical]", {}).get("variants", {})
    for variant in ("recursive", "take2"):
        if variant in headline:
            print(
                f"headline 4-path {variant}: "
                f"{headline[variant]['speedup_answers_per_sec']}x"
            )

    if failures:
        print("\nPERF REGRESSION GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    if CHECK:
        print("perf regression gate passed "
              f"(tolerance {TOLERANCE * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
